"""The unified experiment record schema and its versioned JSONL format.

Every classification the library performs — a sweep job, a census row, a
benchmark run — produces one :class:`RunRecord`: a compact, JSON-able
summary of a single :func:`~repro.consensus.solvability.check_consensus`
call.  Earlier revisions carried two divergent shapes (``SweepRecord`` for
the sweep engine, ``CensusRow`` for the census); this module is the single
schema both now share, so any JSONL stream — local sweep, manifest shard,
census artifact — feeds the same :mod:`repro.analysis` report layer.

JSONL format
------------
Version 2 files start with a header line ``{"schema": "repro.run-record/2"}``
followed by one record object per line.  :func:`read_jsonl` also accepts the
headerless version-1 files written before the header existed (PR-2-era
sweeps), defaulting the fields that did not exist then, so archived
artifacts keep loading.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Iterator, Literal, overload

from repro.schemas import RUN_RECORD

__all__ = [
    "SCHEMA",
    "RunRecord",
    "JsonlCorruption",
    "certificate_summary",
    "write_jsonl",
    "read_jsonl",
]

#: Schema tag written on the header line of version-2 JSONL files (the
#: canonical definition lives in :mod:`repro.schemas`).
SCHEMA = RUN_RECORD


def certificate_summary(result) -> str:
    """Short description of a solvability result's certificate.

    SOLVABLE results name their decision table or broadcaster, IMPOSSIBLE
    results their witness kind.  UNDECIDED results report the deepest depth
    the iterative deepening actually explored (``undecided@6``) — or
    ``undecided@-`` when not even depth 0 was analyzable (e.g. the node
    budget was exhausted building the first layer) — so sweep records show
    how far the search got rather than a bare ``"-"``.
    """
    if result.decision_table is not None:
        return f"decision-table@{result.certified_depth}"
    if result.broadcaster is not None:
        return f"broadcaster p{result.broadcaster.process}"
    if result.impossibility is not None:
        return result.impossibility.kind
    if result.history:
        return f"undecided@{result.history[-1].depth}"
    return "undecided@-"


class RunRecord:
    """Compact, JSON-able outcome of one solvability check.

    The first twelve fields are the version-1 ``SweepRecord`` layout; the
    remaining ones were added by the schema unification:

    ``family`` / ``seed``
        The adversary-spec family and sampling seed (None for records of
        live adversaries without a spec).
    ``oracle`` / ``cgp``
        Cross-validation verdicts attached by the census (None elsewhere).
    ``spec``
        The full serialized :class:`~repro.specs.AdversarySpec` dict, when
        the job carried one — enough to rebuild and re-run the adversary
        from the record alone.
    """

    __slots__ = (
        "index",
        "adversary",
        "n",
        "alphabet",
        "max_depth",
        "status",
        "certified_depth",
        "certificate",
        "elapsed_s",
        "views_interned",
        "shard",
        "tags",
        "family",
        "seed",
        "oracle",
        "cgp",
        "spec",
    )

    #: Fields present in version-1 (headerless) files; everything after
    #: them defaults to None when reading old artifacts.
    _V1_FIELDS = (
        "index",
        "adversary",
        "n",
        "alphabet",
        "max_depth",
        "status",
        "certified_depth",
        "certificate",
        "elapsed_s",
        "views_interned",
        "shard",
    )

    def __init__(
        self,
        index: int,
        adversary: str,
        n: int,
        alphabet: int,
        max_depth: int,
        status: str,
        certified_depth: int | None,
        certificate: str,
        elapsed_s: float,
        views_interned: int,
        shard: int,
        tags: dict[str, Any] | None = None,
        family: str | None = None,
        seed: int | None = None,
        oracle: bool | None = None,
        cgp: bool | None = None,
        spec: dict[str, Any] | None = None,
    ) -> None:
        self.index = index
        self.adversary = adversary
        self.n = n
        self.alphabet = alphabet
        self.max_depth = max_depth
        self.status = status
        self.certified_depth = certified_depth
        self.certificate = certificate
        self.elapsed_s = elapsed_s
        self.views_interned = views_interned
        self.shard = shard
        self.tags = {} if tags is None else tags
        self.family = family
        self.seed = seed
        self.oracle = oracle
        self.cgp = cgp
        self.spec = spec

    @property
    def solvable(self) -> bool | None:
        """Checker verdict (None when undecided)."""
        if self.status == "undecided":
            return None
        return self.status == "solvable"

    @property
    def family_label(self) -> str:
        """Best-effort family name: the spec family, a family tag, or '-'."""
        if self.family:
            return self.family
        tag = self.tags.get("family")
        return tag if isinstance(tag, str) and tag else "-"

    def to_dict(self) -> dict[str, Any]:
        return {key: getattr(self, key) for key in self.__slots__}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunRecord":
        # Version-1 fields stay required — a KeyError points at the bad
        # line rather than yielding half-None records that misread
        # downstream.  Everything newer defaults.
        kwargs = {key: data[key] for key in cls._V1_FIELDS}
        for key in cls.__slots__:
            if key not in cls._V1_FIELDS:
                kwargs[key] = data.get(key)
        return cls(**kwargs)

    def __repr__(self) -> str:
        return (
            f"RunRecord(#{self.index}, {self.adversary}, "
            f"{self.status.upper()}, certificate={self.certificate!r})"
        )


def write_jsonl(records: Iterable[RunRecord], path: str | Path) -> None:
    """Write a version-2 JSONL file: header line, then one record per line.

    Parent directories are created.  Keys are sorted and floats are emitted
    by ``json.dumps`` defaults, so two runs producing equal record dicts
    produce byte-identical files.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps({"schema": SCHEMA}, sort_keys=True) + "\n")
        for record in records:
            handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")


class JsonlCorruption:
    """Report of a recoverable defect found while reading a JSONL file.

    Produced by ``read_jsonl(..., recover=True)`` when the *final* line of
    the file does not parse — the signature a process killed mid-append
    leaves behind.  The fleet merge path treats any non-``None`` report as
    "this shard output is incomplete": the readable prefix is still
    returned, but the attempt is retried rather than merged.
    """

    __slots__ = ("path", "line_number", "reason", "fragment")

    def __init__(
        self, path: str, line_number: int, reason: str, fragment: str
    ) -> None:
        self.path = path
        #: 1-based number of the offending (dropped) line.
        self.line_number = line_number
        self.reason = reason
        #: Leading bytes of the dropped line, for the report (bounded).
        self.fragment = fragment

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "line_number": self.line_number,
            "reason": self.reason,
            "fragment": self.fragment,
        }

    def __repr__(self) -> str:
        return (
            f"JsonlCorruption({self.path}:{self.line_number}: {self.reason})"
        )


def _parse_record_lines(
    path: Path, lines: list[str], tolerate_torn_tail: bool
) -> tuple[list[RunRecord], JsonlCorruption | None]:
    """Shared v1/v2 parsing over materialized lines.

    With ``tolerate_torn_tail`` a parse failure on the *last* non-empty
    line is reported instead of raised (mid-write kill signature); a
    failure on any earlier line always raises — the rest of the file
    cannot be trusted after unexplained corruption in the middle.
    """
    numbered = [
        (number, line.strip())
        for number, line in enumerate(lines, start=1)
        if line.strip()
    ]
    records: list[RunRecord] = []
    for position, (number, line) in enumerate(numbered):
        last = position == len(numbered) - 1
        try:
            data = json.loads(line)
            if position == 0:
                schema = data.get("schema") if isinstance(data, dict) else None
                if schema is not None:
                    if schema != SCHEMA:
                        raise ValueError(
                            f"unsupported record schema {schema!r} "
                            f"(this reader understands {SCHEMA!r} and "
                            "headerless v1 files)"
                        )
                    continue
            records.append(RunRecord.from_dict(data))
        except (json.JSONDecodeError, KeyError) as exc:
            if tolerate_torn_tail and last:
                reason = (
                    "truncated trailing line (mid-write kill?)"
                    if isinstance(exc, json.JSONDecodeError)
                    else f"trailing record missing field {exc}"
                )
                return records, JsonlCorruption(
                    path=str(path),
                    line_number=number,
                    reason=reason,
                    fragment=line[:120],
                )
            raise
    return records, None


@overload
def read_jsonl(path: str | Path) -> Iterator[RunRecord]: ...


@overload
def read_jsonl(
    path: str | Path, recover: Literal[True]
) -> tuple[list[RunRecord], JsonlCorruption | None]: ...


def read_jsonl(
    path: str | Path, recover: bool = False
) -> Iterator[RunRecord] | tuple[list[RunRecord], JsonlCorruption | None]:
    """Read the records of a sweep JSONL file, any schema version.

    Accepts both version-2 files (leading ``{"schema": ...}`` header) and
    the headerless version-1 files of earlier revisions; unknown newer
    schema tags raise rather than misparse.

    By default returns a lazy iterator and raises
    :class:`json.JSONDecodeError` on any malformed line.  With
    ``recover=True`` it instead returns an eager
    ``(records, corruption)`` pair: a torn *final* line — what a process
    killed mid-append leaves behind — is skipped and described by a
    :class:`JsonlCorruption` report (``corruption is None`` for a clean
    file).  Corruption anywhere but the tail still raises: a damaged
    middle means the file cannot be trusted at all.  The fleet merge path
    reads every shard output this way, so worker death during a write
    downgrades to a retriable validation failure instead of an exception.
    """
    path = Path(path)
    if recover:
        with path.open("r", encoding="utf-8") as handle:
            lines = handle.readlines()
        return _parse_record_lines(path, lines, tolerate_torn_tail=True)
    return _iter_jsonl(path)


def _iter_jsonl(path: Path) -> Iterator[RunRecord]:
    with path.open("r", encoding="utf-8") as handle:
        first = True
        for line in handle:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            if first:
                first = False
                schema = data.get("schema")
                if schema is not None:
                    if schema != SCHEMA:
                        raise ValueError(
                            f"unsupported record schema {schema!r} "
                            f"(this reader understands {SCHEMA!r} and "
                            "headerless v1 files)"
                        )
                    continue
            yield RunRecord.from_dict(data)
