"""The stable public experiment API: sessions, specs, backends, records.

This module is the one import an experiment script needs.  It groups the
library's workflow around four ideas:

* :class:`~repro.specs.AdversarySpec` — a *serializable* description of a
  message adversary (family name + JSON params + optional seed) that any
  worker can rebuild; the unit sweep manifests are made of.
* :class:`~repro.consensus.solvability.CheckOptions` — the checker's
  tuning knobs as one value object, instead of a pile of kwargs.
* :class:`Session` — owns per-``n`` view interners plus default options,
  so consecutive checks share view tables and memoized level extensions
  the way a sweep shard does; ``session.check(...)`` accepts specs or
  live adversaries, ``session.sweep(...)`` fans a family out through any
  :class:`~repro.backends.SweepBackend` — including the crash-tolerant
  :class:`~repro.fleet.FleetBackend`.
* :class:`~repro.records.RunRecord` — the single versioned result schema
  every sweep, census, and benchmark writes, with :mod:`repro.analysis`
  reports on top.

Quickstart
----------
>>> from repro.api import AdversarySpec, CheckOptions, Session
>>> session = Session(CheckOptions(max_depth=6))
>>> spec = AdversarySpec("oblivious", {"n": 2, "graphs": [2, 4]})
>>> session.check(spec).status.name
'SOLVABLE'
>>> [r.status for r in session.sweep([spec])]
['solvable']

The compatibility wrappers (:func:`repro.consensus.check_consensus` with
keywords, ``repro.sweep.SweepRecord``, headerless JSONL reading) remain in
place; see README "Public API" for the old → new migration table.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.adversaries.base import MessageAdversary
from repro.analysis import (
    SweepReport,
    json_report_jsonl,
    render_report,
    report_jsonl,
    summarize,
)
from repro.backends import (
    ManifestBackend,
    ProcessBackend,
    SerialBackend,
    SweepBackend,
    SweepJob,
    jobs_for,
    load_manifest,
    retry_jobs,
    run_manifest,
    write_manifest,
)
from repro.consensus.solvability import (
    CheckOptions,
    SolvabilityResult,
    check_consensus,
    check_consensus_with_options,
)
from repro.consensus.spec import ConsensusSpec
from repro.core.views import ViewInterner
from repro.errors import AdversaryError
from repro.fleet import FleetBackend
from repro.records import (
    RunRecord,
    certificate_summary,
    read_jsonl,
    write_jsonl,
)
from repro.specs import (
    AdversarySpec,
    build_adversary,
    families,
    random_rooted_specs,
    register_family,
)
from repro.store.backend import CachedBackend
from repro.store.cache import ResultStore
from repro.sweep import run_sweep

__all__ = [
    "AdversarySpec",
    "CheckOptions",
    "Session",
    "RunRecord",
    "SweepJob",
    "SweepBackend",
    "SerialBackend",
    "ProcessBackend",
    "ManifestBackend",
    "FleetBackend",
    "CachedBackend",
    "ResultStore",
    "SweepReport",
    "build_adversary",
    "certificate_summary",
    "check_consensus",
    "check_consensus_with_options",
    "families",
    "jobs_for",
    "json_report_jsonl",
    "load_manifest",
    "random_rooted_specs",
    "read_jsonl",
    "register_family",
    "render_report",
    "report_jsonl",
    "retry_jobs",
    "run_manifest",
    "run_sweep",
    "summarize",
    "write_jsonl",
    "write_manifest",
]


class Session:
    """A reusable checking context: per-``n`` view interners + options.

    Views depend only on inputs and in-neighborhoods, never on the
    adversary, so every check the session runs for the same process count
    shares one :class:`~repro.core.views.ViewInterner` — including its
    memoized ``(level, graph)`` extension cache.  Checking a family
    through one session therefore costs what one sweep shard costs,
    instead of rebuilding view tables per call.

    Parameters
    ----------
    options:
        Default :class:`CheckOptions` for every check (individual calls
        may override).
    memo_extensions:
        Default for the interner-sharing memo when the per-call options
        leave it ``None``; the session shares interners by design, so the
        default here is ``True``.
    store:
        Optional content-addressed result store
        (:class:`~repro.store.cache.ResultStore`, or a path that opens
        one).  With a store, :meth:`check_record` and :meth:`sweep`
        serve previously-computed verdicts as O(1) lookups — no checker
        work, no interner growth — and write every newly computed
        cacheable verdict back.  :meth:`check` always computes: its
        :class:`SolvabilityResult` carries live certificate objects a
        stored record cannot rebuild.
    """

    def __init__(
        self,
        options: CheckOptions | None = None,
        memo_extensions: bool = True,
        store: ResultStore | str | Path | None = None,
    ) -> None:
        self.options = options or CheckOptions()
        if self.options.memo_extensions is None:
            self.options = self.options.replace(memo_extensions=memo_extensions)
        self.store: ResultStore | None
        if store is None or isinstance(store, ResultStore):
            self.store = store
        else:
            self.store = ResultStore(store)
        self._interners: dict[int, ViewInterner] = {}

    def interner(self, n: int) -> ViewInterner:
        """The session's shared view interner for ``n`` processes.

        Created with the session options' ``layer_backend`` and
        ``extension_workers``, so one switch configures the whole-layer
        kernel — and its sharded multiprocess path — for every check the
        session runs.
        """
        interner = self._interners.get(n)
        if interner is None:
            interner = self._interners[n] = ViewInterner(
                n,
                layer_backend=self.options.layer_backend,
                plan_cache_size=self.options.plan_cache_size,
                extension_workers=self.options.extension_workers,
            )
        return interner

    @staticmethod
    def _resolve(target: AdversarySpec | MessageAdversary) -> MessageAdversary:
        if isinstance(target, AdversarySpec):
            return target.build()
        return target

    def check(
        self,
        target: AdversarySpec | MessageAdversary,
        options: CheckOptions | None = None,
        spec: ConsensusSpec | None = None,
    ) -> SolvabilityResult:
        """Check one adversary (or spec) with the session's shared tables."""
        adversary = self._resolve(target)
        return check_consensus_with_options(
            adversary,
            options or self.options,
            spec=spec,
            interner=self.interner(adversary.n),
        )

    def check_record(
        self,
        target: AdversarySpec | MessageAdversary,
        options: CheckOptions | None = None,
        tags: dict[str, Any] | None = None,
    ) -> RunRecord:
        """Check one adversary to a :class:`RunRecord`, via the store.

        The record-granular sibling of :meth:`check`: with a session
        ``store``, an already-cached (spec, options) pair is answered
        without any checker work — the session interners are not even
        consulted, which the cache tests assert through
        :meth:`stats`.  Misses run through :meth:`check` (sharing the
        session's interners as usual) and are written back, so the
        second identical call is a hit.  Timing fields are always zero:
        a record that may be served from cache must not depend on when
        it was computed.  Adversaries without a canonical spec are
        checked but never cached.
        """
        effective = options or self.options
        adversary_spec: AdversarySpec | None
        if isinstance(target, AdversarySpec):
            adversary_spec = target
        else:
            try:
                adversary_spec = AdversarySpec.from_adversary(target)
            except AdversaryError:
                adversary_spec = None
        if self.store is not None and adversary_spec is not None:
            cached = self.store.get(adversary_spec, effective)
            if cached is not None:
                data = cached.to_dict()
                data["tags"] = {} if tags is None else dict(tags)
                return RunRecord.from_dict(data)
        resolved = (
            adversary_spec.build()
            if isinstance(target, AdversarySpec) and adversary_spec is not None
            else target
        )
        assert not isinstance(resolved, AdversarySpec)  # resolved above
        result = self.check(resolved, options=effective)
        record = RunRecord(
            index=0,
            adversary=resolved.name,
            n=resolved.n,
            alphabet=len(resolved.alphabet()),
            max_depth=effective.max_depth,
            status=result.status.value,
            certified_depth=result.certified_depth,
            certificate=certificate_summary(result),
            elapsed_s=0.0,
            views_interned=0,
            shard=0,
            tags={} if tags is None else dict(tags),
            family=adversary_spec.family if adversary_spec is not None else None,
            seed=adversary_spec.seed if adversary_spec is not None else None,
            spec=adversary_spec.to_dict() if adversary_spec is not None else None,
        )
        if self.store is not None and adversary_spec is not None:
            self.store.put(adversary_spec, effective, record)
        return record

    def sweep(
        self,
        targets: Iterable[AdversarySpec | MessageAdversary] | Sequence[SweepJob],
        backend: SweepBackend | None = None,
        workers: int = 1,
        jsonl_path: str | Path | None = None,
        tags: dict[str, Any] | None = None,
        options: CheckOptions | None = None,
        store: ResultStore | str | Path | None = None,
    ) -> list[RunRecord]:
        """Classify a family of specs/adversaries on a sweep backend.

        ``targets`` may be ready-made :class:`SweepJob` lists or plain
        iterables of specs/adversaries (indexed in order, with the
        effective options' ``max_depth`` as each job's depth budget).
        Backend selection matches :func:`repro.sweep.run_sweep`; shards
        use their own interners — process boundaries cannot share the
        session's tables.  The session's ``store`` (or the per-call
        ``store`` override) turns repeat sweeps of equal specs into pure
        cache reads — see :func:`repro.sweep.run_sweep`.
        """
        effective = options or self.options
        targets = list(targets)
        if targets and all(isinstance(item, SweepJob) for item in targets):
            jobs = targets
        else:
            jobs = jobs_for(targets, max_depth=effective.max_depth, tags=tags)
        return run_sweep(
            jobs,
            workers=workers,
            jsonl_path=jsonl_path,
            backend=backend,
            options=effective,
            store=store if store is not None else self.store,
        )

    def stats(self) -> dict[int, object]:
        """Per-``n`` view-table statistics of the session's interners."""
        return {n: interner.stats() for n, interner in sorted(self._interners.items())}

    def __repr__(self) -> str:
        sizes = ", ".join(
            f"n={n}:{len(interner)} views"
            for n, interner in sorted(self._interners.items())
        )
        return f"Session({self.options!r}{'; ' + sizes if sizes else ''})"
