"""ASCII renderers for terminal-friendly figures.

These produce the text versions of the paper's figures: process-time graphs
with highlighted views (Figure 2), component/decision-set tables
(Figures 4/5), and distance matrices (Figure 3).
"""

from __future__ import annotations

from repro.core.digraph import Digraph
from repro.core.graphword import GraphWord
from repro.core.ptg import PTGPrefix
from repro.topology.components import ComponentAnalysis

__all__ = [
    "render_digraph",
    "render_word",
    "render_ptg",
    "render_component_table",
    "render_distance_matrix",
]


def render_digraph(graph: Digraph) -> str:
    """One-line description of a communication graph."""
    if graph.n == 2:
        return graph.name
    edges = ", ".join(f"{u}->{v}" for u, v in sorted(graph.edges))
    return f"[{edges}]" if edges else "[no edges]"


def render_word(word: GraphWord) -> str:
    """Space-separated round graphs of a word."""
    return " ".join(render_digraph(g) for g in word) if len(word) else "(empty)"


def render_ptg(prefix: PTGPrefix, highlight_process: int | None = None) -> str:
    """A layered drawing of a process-time graph (Figure 2 style).

    Each line is one time level; nodes in the highlighted process's causal
    past are marked with ``*``.
    """
    highlight_nodes: set = set()
    if highlight_process is not None:
        nodes, _ = prefix.cone(highlight_process)
        highlight_nodes = nodes

    width = 14
    lines = []
    level0 = []
    for p in range(prefix.n):
        marker = "*" if (p, 0) in highlight_nodes else " "
        level0.append(f"({p},0,x={prefix.inputs[p]!r}){marker}".ljust(width))
    lines.append("t=0  " + "".join(level0))
    for t in range(1, prefix.depth + 1):
        level = []
        for p in range(prefix.n):
            marker = "*" if (p, t) in highlight_nodes else " "
            level.append(f"({p},{t}){marker}".ljust(width))
        edges = sorted(
            (u, v) for (u, v) in prefix.graphs[t - 1].edges
        )
        edge_text = ", ".join(f"{u}->{v}" for u, v in edges) or "no edges"
        lines.append(f"t={t}  " + "".join(level) + f"   round graph: {edge_text}")
    if highlight_process is not None:
        lines.append(
            f"(* = causal past of process {highlight_process} at time {prefix.depth})"
        )
    return "\n".join(lines)


def render_component_table(analysis: ComponentAnalysis) -> str:
    """A table of the layer's components and their consensus data."""
    header = (
        f"{'comp':>4}  {'size':>5}  {'valences':>10}  {'broadcasters':>13}  example"
    )
    lines = [f"depth {analysis.depth}: {len(analysis.components)} component(s)", header]
    for component in analysis.components:
        example = component.representative
        word = render_word(example.prefix.word)
        lines.append(
            f"{component.id:>4}  {len(component):>5}  "
            f"{str(sorted(component.valences, key=repr)):>10}  "
            f"{str(sorted(component.broadcasters)):>13}  "
            f"x={example.inputs!r} [{word}]"
        )
    return "\n".join(lines)


def render_distance_matrix(matrix: dict, title: str = "set distances") -> str:
    """A labelled list of pairwise set distances."""
    lines = [title]
    for (a, b), value in sorted(matrix.items(), key=lambda kv: repr(kv[0])):
        lines.append(f"  d({a}, {b}) = {value}")
    return "\n".join(lines)


def render_bivalence_sparkline(history: list[int]) -> str:
    """A one-line sparkline of bivalent-component counts per depth.

    ``#`` marks depths with surviving bivalent components, ``.`` marks
    separated depths — e.g. ``#####`` for the impossible lossy link and
    ``#....`` for the solvable one.
    """
    cells = "".join("#" if count else "." for count in history)
    return f"bivalence by depth [0..{len(history) - 1}]: {cells}  {history}"


def render_census(rows) -> str:
    """A table of :class:`~repro.consensus.census.CensusRow` results."""
    header = (
        f"{'adversary':32s} {'checker':11s} {'certificate':28s} "
        f"{'oracle':8s} {'CGP':8s}"
    )
    lines = [header, "-" * len(header)]

    def verdict(value) -> str:
        if value is None:
            return "-"
        return "SOLV" if value else "IMP"

    for row in rows:
        lines.append(
            f"{row.adversary.name:32s} {row.status.name:11s} "
            f"{row.certificate:28s} {verdict(row.oracle):8s} "
            f"{verdict(row.cgp):8s}"
            + ("" if row.cgp_agrees in (True, None) else "  <-- CGP disagrees")
        )
    return "\n".join(lines)
