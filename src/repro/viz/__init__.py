"""ASCII rendering of graphs, process-time graphs, and analyses."""

from repro.viz.ascii import (
    render_bivalence_sparkline,
    render_census,
    render_component_table,
    render_digraph,
    render_distance_matrix,
    render_ptg,
    render_word,
)

__all__ = [
    "render_bivalence_sparkline",
    "render_census",
    "render_component_table",
    "render_digraph",
    "render_distance_matrix",
    "render_ptg",
    "render_word",
]
