"""General ω-regular message adversaries from explicit Büchi tables.

:class:`SafetyAdversary` covers the compact case; this class is its
non-compact sibling: users describe an arbitrary ω-regular adversary by a
nondeterministic transition table plus a set of Büchi-accepting states,
without subclassing :class:`~repro.adversaries.base.MessageAdversary`.

Example — "infinitely many ↔ rounds" over the lossy link alphabet::

    table = {
        "idle": {to: ["idle"], fro: ["idle"], both: ["seen"]},
        "seen": {to: ["idle"], fro: ["idle"], both: ["seen"]},
    }
    adversary = BuchiAdversary(2, ["idle"], table, accepting=["seen"])

Every derived query (prefix admissibility with liveness pruning, lasso
acceptance, enumeration, the compactness analysis, the solvability
checker's certificates) works unchanged on top of the base class.
"""

from __future__ import annotations

from typing import Mapping

from repro.adversaries.base import MessageAdversary, State
from repro.core.digraph import Digraph
from repro.errors import AdversaryError

__all__ = ["BuchiAdversary"]


class BuchiAdversary(MessageAdversary):
    """An ω-regular adversary given by an explicit table + acceptance set.

    Parameters
    ----------
    n:
        Number of processes.
    initial:
        Iterable of initial states.
    table:
        ``{state: {graph: iterable of successor states}}``.
    accepting:
        The Büchi acceptance set: an infinite sequence is admissible iff
        some run visits these states infinitely often.
    """

    def __init__(
        self,
        n: int,
        initial,
        table: Mapping[State, Mapping[Digraph, object]],
        accepting,
        name: str | None = None,
    ) -> None:
        super().__init__(n, name or "BuchiAdversary")
        self._initial = frozenset(initial)
        if not self._initial:
            raise AdversaryError("a Büchi adversary needs an initial state")
        normalized: dict[State, dict[Digraph, frozenset]] = {}
        letters: set[Digraph] = set()
        for state, row in table.items():
            normalized[state] = {}
            for graph, successors in row.items():
                if graph.n != n:
                    raise AdversaryError("alphabet graph has wrong n")
                successor_set = frozenset(successors)
                if successor_set:
                    normalized[state][graph] = successor_set
                    letters.add(graph)
        for state in self._initial:
            normalized.setdefault(state, {})
        self._table = normalized
        self._accepting = frozenset(accepting)
        unknown = self._accepting - set(self._table)
        if unknown:
            raise AdversaryError(f"accepting states missing from table: {unknown}")
        self._alphabet = tuple(sorted(letters))

    def alphabet(self) -> tuple[Digraph, ...]:
        return self._alphabet

    def initial_states(self) -> frozenset:
        return self._initial

    def transitions(self, state) -> Mapping[Digraph, frozenset]:
        try:
            return self._table[state]
        except KeyError:
            raise AdversaryError(f"unknown state {state!r}") from None

    def accepting_states(self) -> frozenset:
        return self._accepting

    def is_limit_closed(self) -> bool:
        # Sufficient condition only: if every reachable live state is
        # accepting, the language is a safety property.  Genuine Büchi
        # conditions are conservatively classified as non-compact; use
        # repro.adversaries.compactness.find_limit_violation for witnesses.
        return self._accepting >= self.all_states()
