"""Oblivious message adversaries (Section 6.2; [8, 21]).

An *oblivious* adversary is determined by a set ``D`` of communication
graphs: the admissible sequences are exactly ``D^ω``.  Oblivious adversaries
are limit-closed, hence compact in the paper's sense, and are the setting of
the Coulouma–Godard–Peters characterization [8] and of the classic
Santoro–Widmayer lossy-link results [21].
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.adversaries.base import MessageAdversary
from repro.core.digraph import Digraph
from repro.errors import AdversaryError

__all__ = ["ObliviousAdversary"]

_STATE = "oblivious"


class ObliviousAdversary(MessageAdversary):
    """The adversary whose admissible sequences are ``D^ω``.

    Parameters
    ----------
    n:
        Number of processes.
    graphs:
        The nonempty set ``D`` of communication graphs the adversary may
        pick from in every round, independently of the past.

    Examples
    --------
    >>> from repro.core.digraph import arrow
    >>> adversary = ObliviousAdversary(2, [arrow("->"), arrow("<-")])
    >>> adversary.count_words(3)
    8
    """

    def __init__(
        self, n: int, graphs: Iterable[Digraph], name: str | None = None
    ) -> None:
        graph_set = frozenset(graphs)
        if not graph_set:
            raise AdversaryError("an oblivious adversary needs at least one graph")
        for g in graph_set:
            if g.n != n:
                raise AdversaryError(
                    f"graph on {g.n} nodes in an adversary for n={n}"
                )
        if name is None:
            if n == 2:
                inner = ",".join(g.name for g in sorted(graph_set))
                name = f"Oblivious{{{inner}}}"
            else:
                name = f"Oblivious(n={n}, |D|={len(graph_set)})"
        super().__init__(n, name)
        self.graphs = graph_set
        self._sorted = tuple(sorted(graph_set))
        self._transitions = {g: frozenset({_STATE}) for g in self._sorted}

    def alphabet(self) -> tuple[Digraph, ...]:
        return self._sorted

    def initial_states(self) -> frozenset:
        return frozenset({_STATE})

    def transitions(self, state) -> Mapping[Digraph, frozenset]:
        if state != _STATE:
            raise AdversaryError(f"unknown state {state!r}")
        return self._transitions

    def is_limit_closed(self) -> bool:
        return True

    def __contains__(self, graph: Digraph) -> bool:
        return graph in self.graphs

    def restricted(self, graphs: Iterable[Digraph]) -> "ObliviousAdversary":
        """The oblivious adversary over ``D ∩ graphs``."""
        return ObliviousAdversary(self.n, self.graphs & frozenset(graphs))

    def extended_with(self, graphs: Iterable[Digraph]) -> "ObliviousAdversary":
        """The oblivious adversary over ``D ∪ graphs``."""
        return ObliviousAdversary(self.n, self.graphs | frozenset(graphs))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ObliviousAdversary):
            return NotImplemented
        return self.n == other.n and self.graphs == other.graphs

    def __hash__(self) -> int:
        return hash((self.n, self.graphs))
