"""Explicit safety (compact) adversaries given by a finite automaton.

Compact message adversaries — those that are limit-closed, cf. Section 6.2 —
are exactly the safety properties among the ω-regular adversaries.  The
:class:`SafetyAdversary` wraps an explicit nondeterministic transition table
in which *every* state is accepting, so an infinite sequence is admissible
iff all of its finite prefixes are.

This strictly generalizes :class:`~repro.adversaries.oblivious.
ObliviousAdversary` (whose automaton has one state) while remaining compact,
e.g. "round-alternating" adversaries or adversaries with bounded-memory
constraints on consecutive graphs.
"""

from __future__ import annotations

from typing import Mapping

from repro.adversaries.base import MessageAdversary, State
from repro.core.digraph import Digraph
from repro.errors import AdversaryError

__all__ = ["SafetyAdversary"]


class SafetyAdversary(MessageAdversary):
    """A compact adversary given by an explicit automaton.

    Parameters
    ----------
    n:
        Number of processes.
    initial:
        Iterable of initial states.
    table:
        ``{state: {graph: iterable of successor states}}``.  States may be
        any hashable values.  Every state is accepting (safety).

    Examples
    --------
    An adversary alternating between ``->`` and ``<-`` deterministically:

    >>> from repro.core.digraph import arrow
    >>> table = {
    ...     "a": {arrow("->"): ["b"]},
    ...     "b": {arrow("<-"): ["a"]},
    ... }
    >>> adversary = SafetyAdversary(2, ["a"], table)
    >>> adversary.count_words(4)
    1
    """

    def __init__(
        self,
        n: int,
        initial,
        table: Mapping[State, Mapping[Digraph, object]],
        name: str | None = None,
    ) -> None:
        super().__init__(n, name or "SafetyAdversary")
        self._initial = frozenset(initial)
        if not self._initial:
            raise AdversaryError("a safety adversary needs an initial state")
        normalized: dict[State, dict[Digraph, frozenset]] = {}
        letters: set[Digraph] = set()
        for state, row in table.items():
            normalized[state] = {}
            for graph, successors in row.items():
                if graph.n != n:
                    raise AdversaryError("alphabet graph has wrong n")
                succ = frozenset(successors)
                if succ:
                    normalized[state][graph] = succ
                    letters.add(graph)
        self._table = normalized
        self._alphabet = tuple(sorted(letters))
        for state in self._initial:
            if state not in self._table:
                self._table[state] = {}

    def alphabet(self) -> tuple[Digraph, ...]:
        return self._alphabet

    def initial_states(self) -> frozenset:
        return self._initial

    def transitions(self, state) -> Mapping[Digraph, frozenset]:
        try:
            return self._table[state]
        except KeyError:
            raise AdversaryError(f"unknown state {state!r}") from None

    def is_limit_closed(self) -> bool:
        return True
