"""The message-adversary abstraction.

A *message adversary* (Section 2) is a set of infinite sequences of
communication graphs.  Finitely representable adversaries — which cover every
example in the paper — are modeled as (nondeterministic) ω-automata over the
alphabet of communication graphs:

* the *safety* part is the automaton structure: a graph word is an admissible
  prefix iff some run of the automaton reads it;
* the *liveness* part is a Büchi acceptance condition: an infinite sequence
  is admissible iff some run visits accepting states infinitely often.

Compact (limit-closed) adversaries in the paper's sense are exactly those
whose admissible sequences form a safety property; they are represented by
automata in which every state is accepting and every reachable state is live
(:class:`repro.adversaries.safety.SafetyAdversary`,
:class:`repro.adversaries.oblivious.ObliviousAdversary`).  Non-compact
adversaries, like the eventually stabilizing families of Section 6.3, use
genuine Büchi acceptance.

Subclasses implement four methods (:meth:`MessageAdversary.alphabet`,
:meth:`~MessageAdversary.initial_states`,
:meth:`~MessageAdversary.transitions`,
:meth:`~MessageAdversary.accepting_states`); everything else — prefix
admissibility, enumeration, sampling, lasso (ultimately periodic word)
acceptance, liveness analysis — is derived here.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Hashable, Iterable, Iterator, Mapping

from repro.core.digraph import Digraph
from repro.core.graphword import GraphWord
from repro.errors import AdversaryError, InadmissibleWordError

__all__ = ["MessageAdversary", "State"]

#: Automaton states may be any hashable value.
State = Hashable


class MessageAdversary(ABC):
    """Base class of all message adversaries.

    The class implements the derived queries shared by every finitely
    represented adversary; subclasses provide the automaton.
    """

    def __init__(self, n: int, name: str | None = None) -> None:
        if n <= 0:
            raise AdversaryError("an adversary needs n >= 1 processes")
        self.n = n
        self.name = name or type(self).__name__
        self._live_cache: frozenset | None = None
        self._state_cache: frozenset | None = None
        self._ext_cache: dict[frozenset, tuple] = {}
        self._ext_graphs_cache: dict[frozenset, tuple] = {}

    # ------------------------------------------------------------------ #
    # Automaton interface (to be provided by subclasses)
    # ------------------------------------------------------------------ #

    @abstractmethod
    def alphabet(self) -> tuple[Digraph, ...]:
        """All communication graphs that may ever occur (sorted)."""

    @abstractmethod
    def initial_states(self) -> frozenset:
        """The automaton's initial states."""

    @abstractmethod
    def transitions(self, state: State) -> Mapping[Digraph, frozenset]:
        """Letter-indexed successor sets of ``state``.

        Only letters with a nonempty successor set need to be present.
        """

    def accepting_states(self) -> frozenset:
        """Büchi acceptance set; defaults to "every state" (pure safety)."""
        return self.all_states()

    def is_limit_closed(self) -> bool:
        """Whether the adversary is compact (a safety property).

        The default implementation answers ``True`` exactly when every
        reachable state is accepting, which is a *sufficient* condition for
        limit-closedness of the represented language.  Subclasses with
        genuine liveness return ``False``.
        """
        return self.accepting_states() >= self.all_states()

    # ------------------------------------------------------------------ #
    # Derived state-space queries
    # ------------------------------------------------------------------ #

    def all_states(self) -> frozenset:
        """All states reachable from the initial states."""
        if self._state_cache is None:
            seen: set = set(self.initial_states())
            stack = list(seen)
            while stack:
                state = stack.pop()
                for successors in self.transitions(state).values():
                    for nxt in successors:
                        if nxt not in seen:
                            seen.add(nxt)
                            stack.append(nxt)
            self._state_cache = frozenset(seen)
        return self._state_cache

    def live_states(self) -> frozenset:
        """States from which some infinite *accepting* run exists.

        A state is live iff it reaches a cycle through an accepting state.
        Prefixes whose reachable state set contains a live state are exactly
        the prefixes of admissible infinite sequences.
        """
        if self._live_cache is not None:
            return self._live_cache
        states = self.all_states()
        accepting = self.accepting_states() & states
        # Successor adjacency ignoring letters.
        succ: dict = {
            s: sorted(
                {nxt for nexts in self.transitions(s).values() for nxt in nexts},
                key=repr,
            )
            for s in states
        }
        # A state lies on an accepting cycle iff it is accepting and can
        # reach itself.  Compute states that can reach an accepting cycle.
        on_cycle = {
            s for s in accepting if self._reaches(succ, s, target=s, strict=True)
        }
        live = set(on_cycle)
        changed = True
        while changed:
            changed = False
            for s in states:
                if s not in live and any(nxt in live for nxt in succ[s]):
                    live.add(s)
                    changed = True
        self._live_cache = frozenset(live)
        return self._live_cache

    @staticmethod
    def _reaches(succ: Mapping, start, target, strict: bool) -> bool:
        seen: set = set()
        stack = list(succ[start]) if strict else [start]
        while stack:
            s = stack.pop()
            if s == target:
                return True
            if s in seen:
                continue
            seen.add(s)
            stack.extend(succ[s])
        return False

    # ------------------------------------------------------------------ #
    # Prefix-level queries
    # ------------------------------------------------------------------ #

    def step(self, states: frozenset, graph: Digraph) -> frozenset:
        """The set of states reachable from ``states`` by reading ``graph``."""
        result: set = set()
        for state in states:
            result.update(self.transitions(state).get(graph, frozenset()))
        return frozenset(result)

    def run_prefix(self, word: Iterable[Digraph]) -> frozenset:
        """Reachable state set after reading ``word`` (empty if inadmissible)."""
        states = self.initial_states()
        for graph in word:
            states = self.step(states, graph)
            if not states:
                return frozenset()
        return states

    def admits_prefix(self, word: Iterable[Digraph]) -> bool:
        """Whether ``word`` is the prefix of some admissible sequence.

        This checks both the safety part (some run reads the word) and the
        liveness part (some reached state is live).
        """
        states = self.run_prefix(word)
        return bool(states & self.live_states())

    def admissible_extensions(
        self, states: frozenset
    ) -> tuple[tuple[Digraph, frozenset], ...]:
        """Graphs extending an admissible prefix, with their new state sets.

        Only extensions that remain prefixes of admissible infinite
        sequences (i.e. keep a live state reachable) are returned.  Results
        are cached per state set (the automaton is static), which makes the
        per-prefix cost of layer construction a single dict lookup; the
        tuple return type keeps the shared cache immutable for callers.
        """
        states = frozenset(states)
        cached = self._ext_cache.get(states)
        if cached is not None:
            return cached
        live = self.live_states()
        result = []
        for graph in self.alphabet():
            nxt = self.step(states, graph) & live
            if nxt:
                result.append((graph, nxt))
        result = tuple(result)
        self._ext_cache[states] = result
        return result

    def extension_alphabet(self, states: frozenset) -> tuple[Digraph, ...]:
        """The graphs of :meth:`admissible_extensions`, cached as a tuple."""
        states = frozenset(states)
        graphs = self._ext_graphs_cache.get(states)
        if graphs is None:
            graphs = tuple(g for g, _ in self.admissible_extensions(states))
            self._ext_graphs_cache[states] = graphs
        return graphs

    # ------------------------------------------------------------------ #
    # Word enumeration / sampling
    # ------------------------------------------------------------------ #

    def iter_words(self, t: int) -> Iterator[GraphWord]:
        """All admissible words of length ``t``, in deterministic order."""
        initial = frozenset(self.initial_states() & self.live_states())

        def recurse(word: tuple, states: frozenset) -> Iterator[GraphWord]:
            if len(word) == t:
                yield GraphWord(word, n=self.n)
                return
            for graph, nxt in self.admissible_extensions(states):
                yield from recurse(word + (graph,), nxt)

        if initial:
            yield from recurse((), initial)

    def count_words(self, t: int) -> int:
        """Number of admissible words of length ``t`` (via dynamic program)."""
        counts: dict[frozenset, int] = {}
        initial = frozenset(self.initial_states() & self.live_states())
        if not initial:
            return 0
        counts[initial] = 1
        for _ in range(t):
            nxt_counts: dict[frozenset, int] = {}
            for states, count in counts.items():
                for _, nxt in self.admissible_extensions(states):
                    nxt_counts[nxt] = nxt_counts.get(nxt, 0) + count
            counts = nxt_counts
        return sum(counts.values())

    def sample_word(self, rng: random.Random, t: int) -> GraphWord:
        """A uniformly branch-random admissible word of length ``t``."""
        states = frozenset(self.initial_states() & self.live_states())
        if not states:
            raise InadmissibleWordError(f"{self.name} admits no sequences")
        word: list[Digraph] = []
        for _ in range(t):
            options = self.admissible_extensions(states)
            if not options:
                raise InadmissibleWordError(
                    f"{self.name}: admissible prefix with no admissible extension"
                )
            graph, states = rng.choice(options)
            word.append(graph)
        return GraphWord(word, n=self.n)

    # ------------------------------------------------------------------ #
    # Lasso (ultimately periodic sequence) acceptance
    # ------------------------------------------------------------------ #

    def admits_lasso(self, stem: GraphWord, cycle: GraphWord) -> bool:
        """Whether the ultimately periodic sequence ``stem · cycle^ω`` is admissible.

        Uses the standard product construction: a run is accepting iff in
        the graph over (state, cycle position) nodes some cycle through an
        accepting state is reachable from the states after the stem.
        """
        if len(cycle) == 0:
            raise AdversaryError("lasso cycle must be nonempty")
        start_states = self.run_prefix(stem)
        if not start_states:
            return False
        period = len(cycle)
        accepting = self.accepting_states()

        # Build reachable subgraph over (state, pos).
        edges: dict[tuple, set[tuple]] = {}
        stack = [(s, 0) for s in start_states]
        seen = set(stack)
        while stack:
            state, pos = stack.pop()
            nxt_states = self.transitions(state).get(cycle[pos], frozenset())
            nxt_pos = (pos + 1) % period
            targets = {(s, nxt_pos) for s in nxt_states}
            edges[(state, pos)] = targets
            for node in targets:
                if node not in seen:
                    seen.add(node)
                    stack.append(node)

        # A lasso is accepted iff some accepting node lies on a cycle of
        # this graph (every cycle has length a multiple of the period, so
        # positions wrap consistently).
        for node in seen:
            state, _ = node
            if state in accepting and self._node_on_cycle(edges, node):
                return True
        return False

    @staticmethod
    def _node_on_cycle(edges: Mapping[tuple, set], node: tuple) -> bool:
        seen: set = set()
        stack = list(edges.get(node, ()))
        while stack:
            current = stack.pop()
            if current == node:
                return True
            if current in seen:
                continue
            seen.add(current)
            stack.extend(edges.get(current, ()))
        return False

    # ------------------------------------------------------------------ #
    # Misc
    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n={self.n}, name={self.name!r})"
