"""Named two-process (lossy link) adversaries from the literature.

The two-process scenario is the recurring example of the paper:

* ``lossy_link_full()`` — the Santoro–Widmayer adversary over {←, ↔, →},
  for which consensus is **impossible** [21] (Section 6.1);
* ``lossy_link_no_hub()`` — the reduced set {←, →} of Coulouma–Godard–
  Peters [8], for which consensus is **solvable**;
* ``directed_only(direction)`` — one-graph adversaries, trivially solvable;
* ``lossy_link_with_silence()`` — includes the empty graph, impossible;
* ``eventually_one_direction()`` — the non-compact Figure 5 example:
  {←, →} transiently, eventually → forever.
"""

from __future__ import annotations

from repro.adversaries.oblivious import ObliviousAdversary
from repro.adversaries.stabilizing import EventuallyForeverAdversary
from repro.core.digraph import arrow

__all__ = [
    "lossy_link_full",
    "lossy_link_no_hub",
    "lossy_link_with_silence",
    "directed_only",
    "one_directional_and_both",
    "eventually_one_direction",
]


def lossy_link_full() -> ObliviousAdversary:
    """The impossible lossy link: D = {←, ↔, →} ([21], Section 6.1)."""
    return ObliviousAdversary(
        2, [arrow("<-"), arrow("<->"), arrow("->")], name="LossyLink{<-,<->,->}"
    )


def lossy_link_no_hub() -> ObliviousAdversary:
    """The solvable reduced lossy link: D = {←, →} ([8])."""
    return ObliviousAdversary(2, [arrow("<-"), arrow("->")], name="LossyLink{<-,->}")


def lossy_link_with_silence() -> ObliviousAdversary:
    """D = {←, →, ∅}: the empty graph makes consensus impossible."""
    return ObliviousAdversary(
        2, [arrow("<-"), arrow("->"), arrow("none")], name="LossyLink{<-,->,none}"
    )


def directed_only(direction: str = "->") -> ObliviousAdversary:
    """The singleton adversary {→} (or {←}); consensus trivially solvable."""
    return ObliviousAdversary(2, [arrow(direction)], name=f"Only{{{direction}}}")


def one_directional_and_both(direction: str = "->") -> ObliviousAdversary:
    """D = {→, ↔} (or {←, ↔}): solvable, the receiver always hears."""
    return ObliviousAdversary(
        2, [arrow(direction), arrow("<->")], name=f"Oblivious{{{direction},<->}}"
    )


def eventually_one_direction(direction: str = "->") -> EventuallyForeverAdversary:
    """Transiently {←, →}, eventually ``direction`` forever (Figure 5).

    Non-compact: the limits where the transient phase never ends are
    excluded.  Consensus is solvable by Theorem 6.7 (components are
    broadcastable by the eventual sender) even though the decision sets
    have distance zero.
    """
    return EventuallyForeverAdversary(
        2,
        [arrow("<-"), arrow("->")],
        [arrow(direction)],
        name=f"Eventually{{{direction}}}",
    )
