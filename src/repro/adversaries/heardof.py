"""Heard-Of model bridge (Charron-Bost & Schiper [7]).

The paper's related work notes that benign communication-failure models can
be expressed as oblivious message adversaries.  The *Heard-Of* (HO) model
describes a round by the collection of heard-of sets ``HO(p) ⊆ [n]`` —
which is exactly the in-neighborhood description of a communication graph.
This module translates classic HO *communication predicates* into oblivious
adversaries over the corresponding graph sets:

* ``nonempty_kernel_adversary`` — rounds whose kernel (processes heard by
  everyone) is nonempty, the predicate behind many HO algorithms;
* ``no_split_adversary`` — any two processes hear some common process
  (``HO(p) ∩ HO(q) ≠ ∅``), the classic "no-split" predicate;
* ``min_degree_adversary`` — every process hears at least ``k`` processes;
* ``rooted_adversary`` — every round graph has a unique root component,
  the premise of the VSSC line of work [6, 23].

All of them are *per-round* (oblivious) predicates, hence compact
adversaries the paper's Theorem 6.6 machinery applies to.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.adversaries.generators import all_digraphs
from repro.adversaries.oblivious import ObliviousAdversary
from repro.core.digraph import Digraph
from repro.errors import AdversaryError

__all__ = [
    "kernel_of",
    "has_nonempty_kernel",
    "is_no_split",
    "graphs_satisfying",
    "nonempty_kernel_adversary",
    "no_split_adversary",
    "min_degree_adversary",
    "rooted_adversary",
]


def kernel_of(graph: Digraph) -> frozenset[int]:
    """The kernel of a round graph: processes heard by *every* process.

    In HO terms: ``K = ∩_p HO(p)``.  Self-loops are implicit, so a process
    is always in its own heard-of set.
    """
    kernel = set(range(graph.n))
    for p in range(graph.n):
        kernel &= graph.in_neighbors(p)
    return frozenset(kernel)


def has_nonempty_kernel(graph: Digraph) -> bool:
    """Whether some process is heard by everyone this round."""
    return bool(kernel_of(graph))


def is_no_split(graph: Digraph) -> bool:
    """The no-split predicate: any two heard-of sets intersect."""
    n = graph.n
    for p in range(n):
        for q in range(p + 1, n):
            if not (graph.in_neighbors(p) & graph.in_neighbors(q)):
                return False
    return True


def graphs_satisfying(
    n: int, predicate: Callable[[Digraph], bool]
) -> Iterator[Digraph]:
    """All digraphs on ``n`` nodes satisfying a per-round predicate."""
    for g in all_digraphs(n):
        if predicate(g):
            yield g


def _predicate_adversary(
    n: int, predicate: Callable[[Digraph], bool], name: str
) -> ObliviousAdversary:
    graphs = list(graphs_satisfying(n, predicate))
    if not graphs:
        raise AdversaryError(f"no graph on {n} nodes satisfies {name}")
    return ObliviousAdversary(n, graphs, name=name)


def nonempty_kernel_adversary(n: int) -> ObliviousAdversary:
    """Rounds with a nonempty kernel (someone is heard by all)."""
    return _predicate_adversary(
        n, has_nonempty_kernel, f"HO-nonempty-kernel(n={n})"
    )


def no_split_adversary(n: int) -> ObliviousAdversary:
    """Rounds where any two processes hear a common process."""
    return _predicate_adversary(n, is_no_split, f"HO-no-split(n={n})")


def min_degree_adversary(n: int, k: int) -> ObliviousAdversary:
    """Rounds where every process hears at least ``k`` processes.

    Degrees count the implicit self-loop, so ``k = 1`` allows every graph
    and ``k = n`` forces the complete graph.
    """
    if not 1 <= k <= n:
        raise AdversaryError(f"need 1 <= k <= n, got k={k}")
    return _predicate_adversary(
        n,
        lambda g: all(len(g.in_neighbors(p)) >= k for p in range(n)),
        f"HO-min-degree(n={n}, k={k})",
    )


def rooted_adversary(n: int) -> ObliviousAdversary:
    """Rounds whose graph has a unique root component ([6, 23] premise)."""
    return _predicate_adversary(
        n, lambda g: g.is_rooted, f"HO-rooted(n={n})"
    )
