"""Non-compact, eventually stabilizing message adversaries (Section 6.3).

Two families are provided, both with genuine Büchi liveness (so they are
*not* limit-closed and hence non-compact in the paper's sense):

* :class:`EventuallyForeverAdversary` — sequences over a base set ``B`` of
  graphs that eventually stay inside a set ``E`` forever (``B^* E^ω``).
  With ``B = {←, →}`` and ``E = {→}`` this is the two-process example behind
  Figure 5: decision sets come arbitrarily close (distance 0) but the
  connecting "unfair" limit sequences are excluded.

* :class:`StabilizingAdversary` — a simplified vertex-stable source
  component (VSSC) adversary in the spirit of [6, 23]: all graphs are taken
  from a given set, and the adversary guarantees *some* window of ``window``
  consecutive rounds whose graphs all have the same (unique) root component.
  After the window, behaviour is unconstrained again.  Solvability depends
  on the window length exactly as in [23]: long-enough windows let the root
  members broadcast; too-short windows leave non-broadcastable components.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.adversaries.base import MessageAdversary
from repro.core.digraph import Digraph
from repro.errors import AdversaryError

__all__ = ["EventuallyForeverAdversary", "StabilizingAdversary"]


class EventuallyForeverAdversary(MessageAdversary):
    """Sequences from ``base`` that are eventually in ``eventual`` forever.

    Parameters
    ----------
    n:
        Number of processes.
    base:
        Graphs allowed before stabilization (the transient alphabet).
    eventual:
        Graphs allowed after stabilization.  Need not be a subset of
        ``base``; the full alphabet is the union.

    Examples
    --------
    >>> from repro.core.digraph import arrow
    >>> adversary = EventuallyForeverAdversary(
    ...     2, [arrow("->"), arrow("<-")], [arrow("->")]
    ... )
    >>> adversary.is_limit_closed()
    False
    """

    #: Transient automaton state: still reading base graphs.
    TRANSIENT = "transient"
    #: Stabilized automaton state: committed to the eventual set.
    STABLE = "stable"

    def __init__(
        self,
        n: int,
        base: Iterable[Digraph],
        eventual: Iterable[Digraph],
        name: str | None = None,
    ) -> None:
        base_set = frozenset(base)
        eventual_set = frozenset(eventual)
        if not eventual_set:
            raise AdversaryError("the eventual graph set must be nonempty")
        for g in base_set | eventual_set:
            if g.n != n:
                raise AdversaryError("alphabet graph has wrong n")
        if name is None and n == 2:
            b = ",".join(g.name for g in sorted(base_set))
            e = ",".join(g.name for g in sorted(eventual_set))
            name = f"Eventually{{{e}}}After{{{b}}}"
        super().__init__(n, name or "EventuallyForeverAdversary")
        self.base = base_set
        self.eventual = eventual_set
        self._alphabet = tuple(sorted(base_set | eventual_set))
        transient_row: dict[Digraph, frozenset] = {}
        for g in base_set:
            successors = {self.TRANSIENT}
            if g in eventual_set:
                successors.add(self.STABLE)
            transient_row[g] = frozenset(successors)
        for g in eventual_set - base_set:
            # Graphs only allowed after stabilization: taking one commits.
            transient_row[g] = frozenset({self.STABLE})
        self._table = {
            self.TRANSIENT: transient_row,
            self.STABLE: {g: frozenset({self.STABLE}) for g in eventual_set},
        }

    def alphabet(self) -> tuple[Digraph, ...]:
        return self._alphabet

    def initial_states(self) -> frozenset:
        return frozenset({self.TRANSIENT})

    def transitions(self, state) -> Mapping[Digraph, frozenset]:
        try:
            return self._table[state]
        except KeyError:
            raise AdversaryError(f"unknown state {state!r}") from None

    def accepting_states(self) -> frozenset:
        return frozenset({self.STABLE})

    def is_limit_closed(self) -> bool:
        # The language is base^* eventual^ω; unless base ⊆ eventual (when it
        # degenerates to a safety property) limits of admissible sequences
        # that never stabilize are excluded.
        return self.base <= self.eventual


class StabilizingAdversary(MessageAdversary):
    """Rooted graphs with a guaranteed stable-root window (VSSC-style, [23]).

    The adversary draws graphs from ``graphs`` (all of which must be rooted
    unless ``require_rooted=False``) and guarantees that in every admissible
    sequence there is some interval of ``window`` consecutive rounds whose
    graphs all have the *same* root component.  Before and after that
    interval the sequence is unconstrained (within ``graphs``).

    This is the simplified form of the ``(D+1)``-vertex-stable root
    component adversaries of [6, 23]: the root member set is what must stay
    stable, while the rest of the graph may keep changing.

    Parameters
    ----------
    n:
        Number of processes.
    graphs:
        The allowed communication graphs.
    window:
        Required length of the stable-root interval (``>= 1``).
    require_rooted:
        If true (default), reject alphabet graphs without a unique root
        component, matching the setting of [23].
    """

    #: Satisfied absorbing state: the stability window has occurred.
    SATISFIED = "satisfied"
    #: Initial state: no window in progress.
    SEARCHING = "searching"

    def __init__(
        self,
        n: int,
        graphs: Iterable[Digraph],
        window: int,
        require_rooted: bool = True,
        name: str | None = None,
    ) -> None:
        graph_set = frozenset(graphs)
        if not graph_set:
            raise AdversaryError("a stabilizing adversary needs graphs")
        if window < 1:
            raise AdversaryError("window must be >= 1")
        for g in graph_set:
            if g.n != n:
                raise AdversaryError("alphabet graph has wrong n")
            if require_rooted and not g.is_rooted:
                raise AdversaryError(
                    f"graph {g!r} is not rooted; pass require_rooted=False to allow"
                )
        super().__init__(
            n, name or f"Stabilizing(window={window}, |D|={len(graph_set)})"
        )
        self.graphs = graph_set
        self.window = window
        self._alphabet = tuple(sorted(graph_set))
        self._table = self._build_table()

    @staticmethod
    def _stable_root(graph: Digraph) -> frozenset[int] | None:
        """The unique root component of ``graph`` (None if not rooted)."""
        if graph.is_rooted:
            return graph.root_components[0]
        return None

    def _build_table(self) -> dict:
        table: dict = {}
        window = self.window

        def progress_states(graph: Digraph) -> frozenset:
            """Successor states after reading ``graph`` in SEARCHING."""
            successors = {self.SEARCHING}
            root = self._stable_root(graph)
            if root is not None:
                successors.add(
                    self.SATISFIED if window == 1 else ("window", root, 1)
                )
            return frozenset(successors)

        searching_row = {g: progress_states(g) for g in self._alphabet}
        table[self.SEARCHING] = searching_row

        # Window-in-progress states.
        pending = [
            state
            for row in searching_row.values()
            for state in row
            if isinstance(state, tuple)
        ]
        seen = set(pending)
        while pending:
            state = pending.pop()
            _, root, count = state
            row: dict[Digraph, frozenset] = {}
            for g in self._alphabet:
                successors = {self.SEARCHING}
                g_root = self._stable_root(g)
                if g_root is not None:
                    # Either extend the current window...
                    if g_root == root:
                        nxt = (
                            self.SATISFIED
                            if count + 1 >= self.window
                            else ("window", root, count + 1)
                        )
                        successors.add(nxt)
                    # ...or restart a fresh window at this round.
                    successors.add(
                        self.SATISFIED
                        if self.window == 1
                        else ("window", g_root, 1)
                    )
                row[g] = frozenset(successors)
                for nxt in row[g]:
                    if isinstance(nxt, tuple) and nxt not in seen:
                        seen.add(nxt)
                        pending.append(nxt)
            table[state] = row

        table[self.SATISFIED] = {
            g: frozenset({self.SATISFIED}) for g in self._alphabet
        }
        return table

    def alphabet(self) -> tuple[Digraph, ...]:
        return self._alphabet

    def initial_states(self) -> frozenset:
        return frozenset({self.SEARCHING})

    def transitions(self, state) -> Mapping[Digraph, frozenset]:
        try:
            return self._table[state]
        except KeyError:
            raise AdversaryError(f"unknown state {state!r}") from None

    def accepting_states(self) -> frozenset:
        return frozenset({self.SATISFIED})

    def is_limit_closed(self) -> bool:
        # With a one-round window (and rooted alphabet graphs) every
        # sequence is admissible, so the language is a safety property.
        # The same happens when all alphabet graphs share one root
        # component: any window-length prefix is already stable.
        if self.window == 1 and all(g.is_rooted for g in self.graphs):
            return True
        roots = {self._stable_root(g) for g in self.graphs}
        return len(roots) == 1 and None not in roots
