"""Message adversaries: oblivious, safety-automaton, and stabilizing families.

The subpackage models message adversaries (sets of infinite communication
graph sequences, Section 2 of the paper) as ω-automata over the alphabet of
communication graphs.  Compact adversaries are safety automata; non-compact
adversaries carry a Büchi acceptance condition.
"""

from repro.adversaries.base import MessageAdversary, State
from repro.adversaries.buchi import BuchiAdversary
from repro.adversaries.combinators import (
    IntersectionAdversary,
    PrefixedAdversary,
    UnionAdversary,
)
from repro.adversaries.compactness import (
    LimitViolation,
    find_limit_violation,
    limit_closure,
)
from repro.adversaries.generators import (
    all_digraphs,
    all_possible_edges,
    all_rooted_digraphs,
    out_star_set,
    random_oblivious_adversary,
    random_rooted_digraph,
    random_rooted_family,
    santoro_widmayer_family,
    two_process_oblivious_family,
)
from repro.adversaries.heardof import (
    graphs_satisfying,
    has_nonempty_kernel,
    is_no_split,
    kernel_of,
    min_degree_adversary,
    no_split_adversary,
    nonempty_kernel_adversary,
    rooted_adversary,
)
from repro.adversaries.lossylink import (
    directed_only,
    eventually_one_direction,
    lossy_link_full,
    lossy_link_no_hub,
    lossy_link_with_silence,
    one_directional_and_both,
)
from repro.adversaries.oblivious import ObliviousAdversary
from repro.adversaries.safety import SafetyAdversary
from repro.adversaries.stabilizing import (
    EventuallyForeverAdversary,
    StabilizingAdversary,
)

__all__ = [
    "BuchiAdversary",
    "EventuallyForeverAdversary",
    "IntersectionAdversary",
    "LimitViolation",
    "MessageAdversary",
    "ObliviousAdversary",
    "PrefixedAdversary",
    "SafetyAdversary",
    "StabilizingAdversary",
    "State",
    "UnionAdversary",
    "all_digraphs",
    "all_possible_edges",
    "all_rooted_digraphs",
    "directed_only",
    "eventually_one_direction",
    "find_limit_violation",
    "graphs_satisfying",
    "has_nonempty_kernel",
    "is_no_split",
    "kernel_of",
    "limit_closure",
    "min_degree_adversary",
    "no_split_adversary",
    "nonempty_kernel_adversary",
    "rooted_adversary",
    "lossy_link_full",
    "lossy_link_no_hub",
    "lossy_link_with_silence",
    "one_directional_and_both",
    "out_star_set",
    "random_oblivious_adversary",
    "random_rooted_digraph",
    "random_rooted_family",
    "santoro_widmayer_family",
    "two_process_oblivious_family",
]
