"""Compactness (limit-closure) analysis of message adversaries.

Section 6.2/6.3 of the paper split the characterization by whether the
adversary is *limit-closed*: every convergent sequence of admissible
sequences has its limit admissible.  For ω-automaton adversaries:

* :func:`limit_closure` builds the closure — the safety adversary with the
  same transition structure but trivial acceptance.  Its admissible
  sequences are exactly the limits of the original adversary's prefixes.
* :func:`find_limit_violation` searches for a *witness of non-compactness*:
  an ultimately periodic sequence ``u · v^ω`` all of whose prefixes are
  admissible but which is itself not admissible (it fails the liveness
  condition).  For the eventually-stabilizing families these witnesses are
  precisely the excluded "unfair" limits of Figure 5.
"""

from __future__ import annotations

from typing import Iterator

from repro.adversaries.base import MessageAdversary
from repro.adversaries.safety import SafetyAdversary
from repro.core.graphword import GraphWord

__all__ = ["limit_closure", "find_limit_violation", "LimitViolation"]


class LimitViolation:
    """A lasso witnessing non-compactness: admissible prefixes, excluded limit."""

    __slots__ = ("stem", "cycle")

    def __init__(self, stem: GraphWord, cycle: GraphWord) -> None:
        self.stem = stem
        self.cycle = cycle

    def __repr__(self) -> str:
        return f"LimitViolation(stem={self.stem!r}, cycle={self.cycle!r})"


def limit_closure(adversary: MessageAdversary) -> SafetyAdversary:
    """The topological closure of ``adversary`` as a safety adversary.

    The closure keeps the transition structure (restricted to states that
    admit *some* infinite run, accepting or not) and drops the acceptance
    condition.  Its ω-language is the set of all sequence limits of the
    original adversary's admissible prefixes.
    """
    live = adversary.live_states()
    table: dict = {}
    for state in adversary.all_states() & live:
        row: dict = {}
        for graph, successors in adversary.transitions(state).items():
            kept = frozenset(successors) & live
            if kept:
                row[graph] = kept
        table[state] = row
    closure = SafetyAdversary(
        adversary.n,
        adversary.initial_states() & live,
        table,
        name=f"Closure({adversary.name})",
    )
    return closure


def _lassos(
    adversary: MessageAdversary, max_stem: int, max_cycle: int
) -> Iterator[tuple[GraphWord, GraphWord]]:
    alphabet = adversary.alphabet()

    def words(length: int) -> Iterator[tuple]:
        if length == 0:
            yield ()
            return
        for shorter in words(length - 1):
            for g in alphabet:
                yield shorter + (g,)

    for stem_len in range(max_stem + 1):
        for stem in words(stem_len):
            for cycle_len in range(1, max_cycle + 1):
                for cycle in words(cycle_len):
                    yield (
                        GraphWord(stem, n=adversary.n),
                        GraphWord(cycle, n=adversary.n),
                    )


def find_limit_violation(
    adversary: MessageAdversary, max_stem: int = 2, max_cycle: int = 2
) -> LimitViolation | None:
    """Search for an ultimately periodic excluded limit.

    Returns a :class:`LimitViolation` whose lasso has all prefixes
    admissible for ``adversary`` (it is admissible for the closure) yet is
    not itself admissible, or ``None`` when no witness exists within the
    stem/cycle bounds.  A non-``None`` result proves the adversary is not
    limit-closed; ``None`` is inconclusive in general (but for the built-in
    families small bounds suffice).
    """
    closure = limit_closure(adversary)
    for stem, cycle in _lassos(adversary, max_stem, max_cycle):
        if not closure.admits_lasso(stem, cycle):
            continue
        if not adversary.admits_lasso(stem, cycle):
            return LimitViolation(stem, cycle)
    return None
