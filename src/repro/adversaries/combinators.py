"""Adversary combinators: union, intersection, prefix constraints.

These make the adversary algebra closed under the operations the paper's
constructions use informally: restricting attention to sequences with a
given prefix (the sub-adversary "after" a history), taking unions of
scenario families, and intersecting safety constraints with liveness
promises.

The Büchi intersection uses the standard two-flag counter construction so
that acceptance of *both* operands is required infinitely often.
"""

from __future__ import annotations

from typing import Mapping

from repro.adversaries.base import MessageAdversary
from repro.core.digraph import Digraph
from repro.core.graphword import GraphWord
from repro.errors import AdversaryError

__all__ = ["UnionAdversary", "IntersectionAdversary", "PrefixedAdversary"]


class UnionAdversary(MessageAdversary):
    """The adversary admitting any sequence admissible for some operand."""

    def __init__(self, *operands: MessageAdversary, name: str | None = None) -> None:
        if not operands:
            raise AdversaryError("a union needs at least one operand")
        n = operands[0].n
        for adversary in operands:
            if adversary.n != n:
                raise AdversaryError("union operands must share n")
        super().__init__(
            n, name or "Union(" + ", ".join(a.name for a in operands) + ")"
        )
        self.operands = tuple(operands)
        self._alphabet = tuple(
            sorted({g for a in operands for g in a.alphabet()})
        )

    def alphabet(self) -> tuple[Digraph, ...]:
        return self._alphabet

    def initial_states(self) -> frozenset:
        return frozenset(
            (i, s) for i, a in enumerate(self.operands) for s in a.initial_states()
        )

    def transitions(self, state) -> Mapping[Digraph, frozenset]:
        i, inner = state
        table = self.operands[i].transitions(inner)
        return {g: frozenset((i, s) for s in succ) for g, succ in table.items()}

    def accepting_states(self) -> frozenset:
        return frozenset(
            (i, s)
            for i, a in enumerate(self.operands)
            for s in a.accepting_states()
        )

    def is_limit_closed(self) -> bool:
        # A finite union of closed sets is closed.
        return all(a.is_limit_closed() for a in self.operands)


class IntersectionAdversary(MessageAdversary):
    """The adversary admitting sequences admissible for *both* operands.

    States are ``(s1, s2, flag)`` where ``flag`` tracks whose acceptance is
    currently owed; a combined state is accepting when the second operand
    pays its debt, which happens infinitely often iff both operands accept
    infinitely often.
    """

    def __init__(
        self, left: MessageAdversary, right: MessageAdversary, name: str | None = None
    ) -> None:
        if left.n != right.n:
            raise AdversaryError("intersection operands must share n")
        super().__init__(left.n, name or f"Intersection({left.name}, {right.name})")
        self.left = left
        self.right = right
        self._alphabet = tuple(
            sorted(set(left.alphabet()) & set(right.alphabet()))
        )

    def alphabet(self) -> tuple[Digraph, ...]:
        return self._alphabet

    def initial_states(self) -> frozenset:
        return frozenset(
            (s1, s2, 0)
            for s1 in self.left.initial_states()
            for s2 in self.right.initial_states()
        )

    def transitions(self, state) -> Mapping[Digraph, frozenset]:
        s1, s2, flag = state
        # Standard flag update (source-based): while the flag is 0 we wait
        # for the left operand to accept, then owe the right operand one
        # acceptance before resetting.
        if flag == 0:
            nxt_flag = 1 if s1 in self.left.accepting_states() else 0
        else:
            nxt_flag = 0 if s2 in self.right.accepting_states() else 1
        row1 = self.left.transitions(s1)
        row2 = self.right.transitions(s2)
        result: dict[Digraph, frozenset] = {}
        for g in self._alphabet:
            succ1 = row1.get(g, frozenset())
            succ2 = row2.get(g, frozenset())
            if not succ1 or not succ2:
                continue
            result[g] = frozenset(
                (t1, t2, nxt_flag) for t1 in succ1 for t2 in succ2
            )
        return result

    def accepting_states(self) -> frozenset:
        # Accepting = flag-0 states whose left component accepts; visiting
        # them infinitely often forces infinitely many 0 -> 1 -> 0 flag
        # round-trips, hence acceptance of both operands infinitely often.
        left_acc = self.left.accepting_states()
        return frozenset(
            (s1, s2, flag)
            for (s1, s2, flag) in self.all_states()
            if flag == 0 and s1 in left_acc
        )

    def is_limit_closed(self) -> bool:
        # Intersection of closed sets is closed; otherwise unknown, report
        # conservatively.
        return self.left.is_limit_closed() and self.right.is_limit_closed()


class PrefixedAdversary(MessageAdversary):
    """Sequences that start with ``prefix`` and continue per ``suffix_adversary``.

    This is the sub-adversary "after a given history", used to study the
    connected component / decision-set structure around one prefix.
    """

    def __init__(
        self,
        prefix: GraphWord,
        suffix_adversary: MessageAdversary,
        name: str | None = None,
    ) -> None:
        if prefix.n != suffix_adversary.n:
            raise AdversaryError("prefix and suffix adversary must share n")
        super().__init__(
            suffix_adversary.n,
            name or f"Prefixed(len={len(prefix)}, {suffix_adversary.name})",
        )
        self.prefix = prefix
        self.suffix_adversary = suffix_adversary
        self._alphabet = tuple(
            sorted(set(prefix.graphs) | set(suffix_adversary.alphabet()))
        )

    def alphabet(self) -> tuple[Digraph, ...]:
        return self._alphabet

    def initial_states(self) -> frozenset:
        if len(self.prefix) == 0:
            return frozenset(
                ("suffix", s) for s in self.suffix_adversary.initial_states()
            )
        return frozenset({("prefix", 0)})

    def transitions(self, state) -> Mapping[Digraph, frozenset]:
        kind, payload = state
        if kind == "prefix":
            position = payload
            expected = self.prefix[position]
            if position + 1 < len(self.prefix):
                return {expected: frozenset({("prefix", position + 1)})}
            return {
                expected: frozenset(
                    ("suffix", s) for s in self.suffix_adversary.initial_states()
                )
            }
        row = self.suffix_adversary.transitions(payload)
        return {
            g: frozenset(("suffix", s) for s in succ) for g, succ in row.items()
        }

    def accepting_states(self) -> frozenset:
        suffix_acc = self.suffix_adversary.accepting_states()
        return frozenset(
            state
            for state in self.all_states()
            if state[0] == "suffix" and state[1] in suffix_acc
        )

    def is_limit_closed(self) -> bool:
        return self.suffix_adversary.is_limit_closed()
