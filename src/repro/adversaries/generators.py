"""Generators for communication-graph families and standard adversaries.

These feed the census tooling and the benchmark harnesses: enumerating every
digraph (or every rooted digraph) on small ``n``, the Santoro–Widmayer
bounded-loss families [21, 22], out-star collections, and random rooted
graphs.
"""

from __future__ import annotations

import random
from itertools import combinations
from typing import Iterator

from repro.adversaries.oblivious import ObliviousAdversary
from repro.core.digraph import Digraph
from repro.errors import AdversaryError

__all__ = [
    "all_digraphs",
    "all_rooted_digraphs",
    "all_possible_edges",
    "santoro_widmayer_family",
    "out_star_set",
    "random_rooted_digraph",
    "random_oblivious_adversary",
    "two_process_oblivious_family",
    "random_rooted_family",
]


def all_possible_edges(n: int) -> tuple[tuple[int, int], ...]:
    """All ``n(n-1)`` directed non-self edges, in deterministic order."""
    return tuple((u, v) for u in range(n) for v in range(n) if u != v)


def all_digraphs(n: int) -> Iterator[Digraph]:
    """All ``2^{n(n-1)}`` digraphs on ``n`` nodes (deterministic order).

    Intended for small ``n`` (the count is 2 for n=1, 4 for n=2, 64 for
    n=3, 4096 for n=4); raises for ``n > 4`` to avoid accidental blowups.

    Graphs are built directly from their packed bitmask keys, so the
    enumeration does per-graph O(1) work beyond interning.
    """
    if n > 4:
        raise AdversaryError(f"refusing to enumerate 2^{n * (n - 1)} digraphs")
    bit_positions = tuple(1 << (u * n + v) for u, v in all_possible_edges(n))
    from_key = Digraph._from_key
    for mask in range(1 << len(bit_positions)):
        key = 0
        rest = mask
        while rest:
            low = rest & -rest
            key |= bit_positions[low.bit_length() - 1]
            rest ^= low
        yield from_key(n, key)


def all_rooted_digraphs(n: int) -> Iterator[Digraph]:
    """All digraphs on ``n`` nodes with a unique root component."""
    for g in all_digraphs(n):
        if g.is_rooted:
            yield g


def santoro_widmayer_family(n: int, losses: int) -> ObliviousAdversary:
    """The Santoro–Widmayer oblivious adversary: up to ``losses`` lost messages.

    In every round the adversary starts from the complete graph and may
    suppress up to ``losses`` of the ``n(n-1)`` messages.  [21] proves
    consensus impossible when ``losses >= n - 1``; [22] sharpens the
    solvable/unsolvable frontier for structured loss patterns.
    """
    if losses < 0:
        raise AdversaryError("losses must be nonnegative")
    edges = all_possible_edges(n)
    losses = min(losses, len(edges))
    full_key = 0
    for u, v in edges:
        full_key |= 1 << (u * n + v)
    from_key = Digraph._from_key
    graphs = []
    for k in range(losses + 1):
        for missing in combinations(edges, k):
            key = full_key
            for u, v in missing:
                key &= ~(1 << (u * n + v))
            graphs.append(from_key(n, key))
    return ObliviousAdversary(
        n, graphs, name=f"SantoroWidmayer(n={n}, losses={losses})"
    )


def out_star_set(n: int) -> tuple[Digraph, ...]:
    """The ``n`` out-stars: in each graph one process reaches everyone."""
    return tuple(Digraph.star_out(n, center) for center in range(n))


def _random_graph(rng: random.Random, n: int, p: float) -> Digraph:
    """A random digraph with independent edge probability ``p`` (bitmask)."""
    key = 0
    random_value = rng.random
    for u, v in all_possible_edges(n):
        if random_value() < p:
            key |= 1 << (u * n + v)
    return Digraph._from_key(n, key)


def random_rooted_digraph(rng: random.Random, n: int, p: float = 0.4) -> Digraph:
    """A random digraph conditioned (by rejection) on having a unique root."""
    for _ in range(10_000):
        g = _random_graph(rng, n, p)
        if g.is_rooted:
            return g
    raise AdversaryError("rejection sampling failed to find a rooted digraph")


def two_process_oblivious_family() -> tuple[ObliviousAdversary, ...]:
    """All 15 nonempty two-process oblivious adversaries, in canonical order.

    The subsets of ``{→, ←, ↔, ∅}`` ordered by size then by the enumeration
    order of :func:`itertools.combinations` — the fixed row order of the
    census and of the sweep CLI's ``two-process`` family.
    """
    graphs = [
        Digraph.from_arrow("->"),
        Digraph.from_arrow("<-"),
        Digraph.from_arrow("<->"),
        Digraph.from_arrow("none"),
    ]
    return tuple(
        ObliviousAdversary(2, subset)
        for size in range(1, len(graphs) + 1)
        for subset in combinations(graphs, size)
    )


def random_rooted_family(
    rng: random.Random,
    n: int,
    samples: int,
    sizes: tuple[int, ...] = (1, 2, 3),
    p: float = 0.4,
) -> tuple[ObliviousAdversary, ...]:
    """``samples`` random rooted oblivious adversaries on ``n`` processes.

    All randomness is drawn from the explicit ``rng``; the family is fully
    determined by the seed, so sweep shards can be regenerated and compared
    across runs.
    """
    sizes = tuple(sizes)
    return tuple(
        random_oblivious_adversary(
            rng, n, size=rng.choice(sizes), rooted_only=True, p=p
        )
        for _ in range(samples)
    )


def random_oblivious_adversary(
    rng: random.Random, n: int, size: int, rooted_only: bool = False, p: float = 0.4
) -> ObliviousAdversary:
    """A random oblivious adversary with ``size`` distinct graphs."""
    chosen: set[Digraph] = set()
    attempts = 0
    while len(chosen) < size:
        attempts += 1
        if attempts > 100_000:
            raise AdversaryError("could not sample enough distinct graphs")
        if rooted_only:
            chosen.add(random_rooted_digraph(rng, n, p))
        else:
            chosen.add(_random_graph(rng, n, p))
    return ObliviousAdversary(n, chosen)
