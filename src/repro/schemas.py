"""The single registry of versioned ``repro.*/N`` document schemas.

Every serialized artifact the library writes — run-record JSONL streams,
sweep-shard manifests, structured reports — carries a versioned schema
tag of the form ``repro.<document>/<version>``.  Those tags are load-
bearing: readers dispatch on them, CI asserts them, and remote fleet
runners rely on them to refuse artifacts they do not understand.  This
module is the *only* place the literal strings may appear (rule R5 of
``repro-lint`` enforces this): producers and consumers import the
constants, so bumping a version is a one-line change that the whole tree
picks up, and two modules can never disagree about a tag's spelling.

>>> parse_schema(RUN_RECORD)
('repro.run-record', 2)
>>> schema_version(SWEEP_MANIFEST)
1
"""

from __future__ import annotations

import re

__all__ = [
    "RUN_RECORD",
    "SWEEP_MANIFEST",
    "SWEEP_REPORT",
    "LINT_REPORT",
    "FLEET_STATE",
    "RESULT_STORE",
    "SERVICE_PROTOCOL",
    "SCHEMAS",
    "parse_schema",
    "schema_name",
    "schema_version",
]

#: Versioned JSONL stream of :class:`~repro.records.RunRecord` objects
#: (header line ``{"schema": RUN_RECORD}``, one record object per line).
RUN_RECORD = "repro.run-record/2"

#: Self-contained sweep shard manifests executed by independent
#: ``repro-consensus sweep --manifest`` subprocesses.
SWEEP_MANIFEST = "repro.sweep-manifest/1"

#: The machine-readable ``repro-consensus report --json`` document.
SWEEP_REPORT = "repro.sweep-report/1"

#: The machine-readable ``repro-lint --json`` findings document.
LINT_REPORT = "repro.lint-report/1"

#: Every state document of the fault-tolerant fleet runner
#: (:mod:`repro.fleet`): the run config, shard leases, done markers, the
#: merge journal, the poison list, and status snapshots all carry this
#: tag plus a ``kind`` discriminator, so a fleet directory is
#: self-describing and workers refuse state they do not understand.
FLEET_STATE = "repro.fleet-state/1"

#: Object documents of the content-addressed result store
#: (:mod:`repro.store`): one cached, timing-normalized
#: :class:`~repro.records.RunRecord` per canonical (spec, options,
#: record-schema, kernel-epoch) cache key.  ``cache verify`` and the
#: store's stale counters dispatch on this tag.
RESULT_STORE = "repro.result-store/1"

#: The newline-delimited JSON protocol of the asyncio consensus-query
#: service (``repro-consensus serve``): the server's hello line carries
#: this tag and clients refuse servers they do not understand.
SERVICE_PROTOCOL = "repro.service-protocol/1"

#: Every schema the library currently reads or writes, by document name.
SCHEMAS: dict[str, str] = {
    "repro.run-record": RUN_RECORD,
    "repro.sweep-manifest": SWEEP_MANIFEST,
    "repro.sweep-report": SWEEP_REPORT,
    "repro.lint-report": LINT_REPORT,
    "repro.fleet-state": FLEET_STATE,
    "repro.result-store": RESULT_STORE,
    "repro.service-protocol": SERVICE_PROTOCOL,
}

_SCHEMA_RE = re.compile(r"^(repro\.[a-z0-9-]+)/([0-9]+)$")


def parse_schema(tag: str) -> tuple[str, int]:
    """Split a ``repro.<document>/<version>`` tag into its two parts.

    Raises :class:`ValueError` for anything that is not a well-formed
    schema tag — malformed tags in artifacts should fail loudly at the
    parse site, not propagate as unversioned strings.
    """
    match = _SCHEMA_RE.match(tag)
    if match is None:
        raise ValueError(f"not a repro schema tag: {tag!r}")
    return match.group(1), int(match.group(2))


def schema_name(tag: str) -> str:
    """The document name of a schema tag (``repro.run-record``)."""
    return parse_schema(tag)[0]


def schema_version(tag: str) -> int:
    """The integer version of a schema tag."""
    return parse_schema(tag)[1]
