"""Shared-memory sharded map phase for the whole-layer extension kernel.

The vectorized layer kernel in :mod:`repro.core.views` factors into a map
phase — per in-neighborhood, gather each parent level's in-list columns,
sort the row, and dedup — and a reduce phase that interns the distinct
rows and allocates views.  Only the map phase scales with the layer size;
the reduce phase works at unique-row granularity, which at deep layers is
orders of magnitude smaller.  This module runs the map phase sharded
across worker processes:

* the parent layer's flat int64 view-id column goes into one
  ``multiprocessing.shared_memory`` buffer (a single memcpy — the column
  is already flat, so nothing is pickled);
* each worker dedups its row range per in-neighborhood, writes its local
  inverse column into a shared output buffer, and returns only its small
  distinct-row matrices;
* the parent re-uniques the union of the per-shard distinct rows.

The merge is *canonical*: :func:`repro.core.views._unique_rows` returns
distinct rows in lexicographic order, an order that depends only on the
row set — never on the packing bit width or the shard boundaries.  The
union of per-shard dedups is exactly the layer's row set, so the merged
``(uniq, inv)`` pairs are bit-identical to what the serial kernel would
have computed, and the reduce phase then performs *the same interner
mutations in the same order*.  Any worker count (including mixing counts
across layers) yields the same interner state and the same output
columns as the serial numpy kernel.

Workers never see the interner: they are stateless functions of the
shared parent column, served by one persistent process pool that is
reused across layers and torn down at interpreter exit.
"""

from __future__ import annotations

import atexit
import multiprocessing
import multiprocessing.pool
from typing import Any, Sequence

try:  # pragma: no cover - absent only on exotic platforms
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover
    _shm = None

__all__ = ["shared_memory_available", "map_layer_shards", "shutdown_pool"]

#: Lazily probed: ``None`` until the first availability check, then the
#: cached verdict.  Creating one tiny segment is the only reliable probe
#: (the import can succeed on platforms where ``/dev/shm`` is unusable).
_SHM_OK: bool | None = None

_POOL: multiprocessing.pool.Pool | None = None
_POOL_WORKERS = 0


def _close_segment(shm: Any) -> None:
    """Detach one attached segment; a live exported buffer is tolerated.

    ``close()`` raises ``BufferError`` while a numpy view of the buffer is
    still alive; on error paths the view may be unreachable-but-uncollected,
    and leaving the mapping to process teardown beats masking the original
    exception.
    """
    try:
        shm.close()
    except BufferError:  # pragma: no cover - error-path cleanup only
        pass


def _release_segment(shm: Any) -> None:
    """Close *and* unlink one owned segment, tolerating partial failure.

    The unlink must happen even when the close fails — it operates on the
    segment name, not the local mapping, and it is what returns the
    ``/dev/shm`` space.  Each step swallows its own errors so that one
    segment's failure can never skip another segment's release.
    """
    _close_segment(shm)
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already released
        pass


def shared_memory_available() -> bool:
    """Whether shared-memory segments can actually be created here."""
    global _SHM_OK
    if _SHM_OK is None:
        if _shm is None:
            _SHM_OK = False
        else:
            try:
                probe = _shm.SharedMemory(create=True, size=8)
                try:
                    _SHM_OK = True
                finally:
                    _release_segment(probe)
            except OSError:
                _SHM_OK = False
    return _SHM_OK


def _get_pool(workers: int) -> multiprocessing.pool.Pool:
    """The persistent worker pool, recreated only when the size changes."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None and _POOL_WORKERS == workers:
        return _POOL
    shutdown_pool()
    if "fork" in multiprocessing.get_all_start_methods():
        # Forked workers inherit loaded modules, so dispatch latency is
        # dominated by the map work itself, not interpreter start-up.
        ctx = multiprocessing.get_context("fork")
    else:  # pragma: no cover - Windows/macOS spawn path
        ctx = multiprocessing.get_context()
    _POOL = ctx.Pool(workers)
    _POOL_WORKERS = workers
    return _POOL


def shutdown_pool() -> None:
    """Terminate the persistent pool (idempotent; re-dispatch recreates)."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.terminate()
        _POOL.join()
        _POOL = None
        _POOL_WORKERS = 0


atexit.register(shutdown_pool)


def _map_shard(
    task: tuple[str, str, int, int, Sequence[Sequence[int]], int, int],
) -> list[tuple[int, int, bytes]]:
    """Pool entry: dedup one row range of the shared parent column.

    Reads rows ``start:end`` of the ``(count, n)`` int64 matrix in the
    input segment, runs the per-in-neighborhood candidate dedup on them,
    writes each local inverse column into the output segment (row ``si``,
    columns ``start:end``), and returns only the distinct-row matrices —
    the one part whose size the parent cannot predict.
    """
    in_name, out_name, count, n, inlists, start, end = task
    import numpy as np

    from repro.core.views import _candidate_uniq_inv

    # Attaching re-registers the segments with the resource tracker, but
    # pool children share the parent's tracker process, so the register
    # is a set-level no-op and the parent's unlink stays the single
    # cleanup point.  Each attach gets its own try/finally so a failure
    # attaching (or detaching) one segment never leaks the other.
    shm_in = _shm.SharedMemory(name=in_name)
    try:
        shm_out = _shm.SharedMemory(name=out_name)
        try:
            matrix = np.ndarray((count, n), dtype=np.int64, buffer=shm_in.buf)
            out = np.ndarray(
                (len(inlists), count), dtype=np.int64, buffer=shm_out.buf
            )
            chunk = matrix[start:end]
            payload = []
            for si, in_list in enumerate(inlists):
                uniq, inv = _candidate_uniq_inv(np, chunk, in_list)
                out[si, start:end] = inv
                payload.append((uniq.shape[0], uniq.shape[1], uniq.tobytes()))
            del matrix, out, chunk
            return payload
        finally:
            _close_segment(shm_out)
    finally:
        _close_segment(shm_in)


def map_layer_shards(
    level_matrix: Any, inlists: Sequence[Sequence[int]], workers: int
) -> list[tuple[Any, Any]]:
    """Sharded candidate dedup of one layer: ``[(uniq, inv)]`` per in-list.

    ``level_matrix`` is the C-contiguous ``(count, n)`` int64 parent
    matrix; the result is bit-identical to running
    :func:`repro.core.views._candidate_uniq_inv` serially per in-list.
    Raises on shared-memory or pool failure — the caller falls back to
    the serial kernel, whose inputs this function never mutates.
    """
    import numpy as np

    from repro.core.views import _unique_rows

    count, n = level_matrix.shape
    workers = max(1, min(workers, count))
    bounds = [count * s // workers for s in range(workers + 1)]
    # Each segment is created directly above its own try/finally: creating
    # the output segment used to sit *before* the input segment's
    # protecting try, so an allocation failure there (or any exception
    # past the first close()) leaked segments until process teardown.
    shm_in = _shm.SharedMemory(create=True, size=level_matrix.nbytes)
    try:
        shm_out = _shm.SharedMemory(
            create=True, size=8 * count * len(inlists)
        )
        try:
            stage = np.ndarray((count, n), dtype=np.int64, buffer=shm_in.buf)
            stage[:] = level_matrix
            del stage
            tasks = [
                (
                    shm_in.name,
                    shm_out.name,
                    count,
                    n,
                    inlists,
                    bounds[s],
                    bounds[s + 1],
                )
                for s in range(workers)
            ]
            payloads = _get_pool(workers).map(_map_shard, tasks)
            out = np.ndarray(
                (len(inlists), count), dtype=np.int64, buffer=shm_out.buf
            )
            results = []
            for si in range(len(inlists)):
                parts = [
                    np.frombuffer(raw, dtype=np.int64).reshape(u, k)
                    for (u, k, raw) in (payload[si] for payload in payloads)
                ]
                uniq, global_inv = _unique_rows(np, np.vstack(parts))
                inv = np.empty(count, dtype=np.int64)
                offset = 0
                for s in range(workers):
                    shard_map = global_inv[offset : offset + len(parts[s])]
                    local = out[si, bounds[s] : bounds[s + 1]]
                    inv[bounds[s] : bounds[s + 1]] = shard_map[local]
                    offset += len(parts[s])
                results.append((uniq, inv))
            del out
            return results
        finally:
            _release_segment(shm_out)
    finally:
        _release_segment(shm_in)
