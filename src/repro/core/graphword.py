"""Finite words of communication graphs and their heard-of dynamics.

A *graph word* is a finite prefix ``(G_1, ..., G_t)`` of a communication
graph sequence.  The class precomputes the *heard-of dynamics*: for every
round ``t`` and process ``q`` the set of processes ``p`` whose round-0 input
has causally reached ``q`` by the end of round ``t``.  This is the
reachability information underlying *broadcastability* (Definition 5.8 of the
paper): process ``p`` has broadcast by round ``t`` iff every ``q`` has heard
of ``p`` by ``t``.

Heard-of sets are stored as bitmasks (int), which keeps the per-round update
an ``O(n * deg)`` bit-or loop and makes component-level broadcast checks a
single ``&`` fold.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.core.digraph import Digraph
from repro.errors import InvalidGraphError

__all__ = ["GraphWord", "heard_of_step", "full_mask"]


def full_mask(n: int) -> int:
    """The bitmask with all ``n`` process bits set."""
    return (1 << n) - 1


def heard_of_step(graph: Digraph, heard: Sequence[int]) -> tuple[int, ...]:
    """One synchronous round of heard-of propagation.

    ``heard[q]`` is the bitmask of processes whose input ``q`` knows at the
    start of the round; the result is the corresponding vector after messages
    are delivered along ``graph`` (self-loops implicit).
    """
    result = []
    for in_list in graph.in_neighbor_lists:
        mask = 0
        for r in in_list:
            mask |= heard[r]
        result.append(mask)
    return tuple(result)


class GraphWord:
    """An immutable finite sequence of communication graphs on ``n`` nodes.

    Supports concatenation, slicing, and incremental extension; heard-of
    masks are computed lazily and cached.

    Examples
    --------
    >>> from repro.core.digraph import arrow
    >>> w = GraphWord([arrow("->"), arrow("<-")])
    >>> w.broadcast_complete_round(0)
    1
    """

    __slots__ = ("n", "_graphs", "_heard", "_hash")

    def __init__(self, graphs: Iterable[Digraph], n: int | None = None) -> None:
        gs = tuple(graphs)
        if gs:
            n = gs[0].n
        elif n is None:
            raise InvalidGraphError("an empty GraphWord needs an explicit n")
        for g in gs:
            if g.n != n:
                raise InvalidGraphError("all graphs in a word must have the same n")
        object.__setattr__(self, "n", n)
        object.__setattr__(self, "_graphs", gs)
        object.__setattr__(self, "_heard", None)
        object.__setattr__(self, "_hash", hash((n, gs)))

    # ------------------------------------------------------------------ #
    # Sequence protocol
    # ------------------------------------------------------------------ #

    @property
    def graphs(self) -> tuple[Digraph, ...]:
        """The underlying tuple of graphs ``(G_1, ..., G_t)``."""
        return self._graphs

    def __len__(self) -> int:
        return len(self._graphs)

    def __iter__(self) -> Iterator[Digraph]:
        return iter(self._graphs)

    def __getitem__(self, item):
        if isinstance(item, slice):
            return GraphWord(self._graphs[item], n=self.n)
        return self._graphs[item]

    def round_graph(self, t: int) -> Digraph:
        """The communication graph of round ``t`` (1-based, as in the paper)."""
        if not 1 <= t <= len(self._graphs):
            raise InvalidGraphError(f"round {t} outside word of length {len(self)}")
        return self._graphs[t - 1]

    def extended(self, graph: Digraph) -> "GraphWord":
        """The word with one more round appended."""
        if graph.n != self.n:
            raise InvalidGraphError("appended graph has wrong n")
        return GraphWord(self._graphs + (graph,))

    def concat(self, other: "GraphWord") -> "GraphWord":
        """Concatenation of two words."""
        if other.n != self.n:
            raise InvalidGraphError("concatenated words must have the same n")
        return GraphWord(self._graphs + other._graphs)

    def repeat(self, k: int) -> "GraphWord":
        """The word repeated ``k`` times."""
        if k <= 0:
            raise InvalidGraphError("repeat count must be positive")
        return GraphWord(self._graphs * k)

    # ------------------------------------------------------------------ #
    # Heard-of dynamics
    # ------------------------------------------------------------------ #

    def _heard_history(self) -> tuple[tuple[int, ...], ...]:
        cached = self._heard
        if cached is None:
            history = [tuple(1 << p for p in range(self.n))]
            for g in self._graphs:
                history.append(heard_of_step(g, history[-1]))
            cached = tuple(history)
            object.__setattr__(self, "_heard", cached)
        return cached

    def heard_masks(self, t: int | None = None) -> tuple[int, ...]:
        """Per-process bitmasks of heard processes at the end of round ``t``.

        ``t`` defaults to the full word length; ``t = 0`` is the initial
        state where each process has heard only itself.
        """
        history = self._heard_history()
        if t is None:
            t = len(self._graphs)
        return history[t]

    def has_heard(self, q: int, p: int, t: int | None = None) -> bool:
        """Whether ``q`` knows ``p``'s input by the end of round ``t``."""
        return bool(self.heard_masks(t)[q] >> p & 1)

    def broadcasters_by(self, t: int | None = None) -> frozenset[int]:
        """Processes heard by *every* process by the end of round ``t``."""
        masks = self.heard_masks(t)
        common = full_mask(self.n)
        for mask in masks:
            common &= mask
        return frozenset(p for p in range(self.n) if common >> p & 1)

    def broadcast_complete_round(self, p: int) -> int | None:
        """First round by which every process has heard ``p`` (None if never)."""
        history = self._heard_history()
        for t, masks in enumerate(history):
            if all(mask >> p & 1 for mask in masks):
                return t
        return None

    def first_broadcast_round(self) -> int | None:
        """First round by which *some* process has been heard by everyone."""
        history = self._heard_history()
        for t, masks in enumerate(history):
            common = full_mask(self.n)
            for mask in masks:
                common &= mask
            if common:
                return t
        return None

    # ------------------------------------------------------------------ #
    # Dunder protocol
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GraphWord):
            return NotImplemented
        return self.n == other.n and self._graphs == other._graphs

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if self.n == 2:
            return f"GraphWord[{' '.join(g.name for g in self._graphs)}]"
        return f"GraphWord(n={self.n}, t={len(self)})"

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("GraphWord is immutable")
