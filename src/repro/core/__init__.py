"""Core substrate: communication graphs, process-time graphs, views, distances.

This subpackage contains the model layer of the reproduction (Sections 2-4 of
the paper): immutable communication graphs, graph words with heard-of
dynamics, input assignments, interned full-information views, process-time
graph prefixes, and the paper's three families of distance functions.
"""

from repro.core.digraph import ARROW_NAMES_N2, Digraph, arrow
from repro.core.distances import (
    d_max,
    d_min,
    d_p,
    d_view,
    diameter,
    distance_value,
    divergence_time,
    equality_profile,
    set_distance,
)
from repro.core.graphword import GraphWord, full_mask, heard_of_step
from repro.core.inputs import (
    all_assignments,
    binary_domain,
    unanimity_value,
    unanimous,
    validate_assignment,
)
from repro.core.ptg import PTGPrefix
from repro.core.views import LayerTable, ViewInterner, ViewStats

__all__ = [
    "ARROW_NAMES_N2",
    "Digraph",
    "GraphWord",
    "LayerTable",
    "PTGPrefix",
    "ViewInterner",
    "ViewStats",
    "all_assignments",
    "arrow",
    "binary_domain",
    "d_max",
    "d_min",
    "d_p",
    "d_view",
    "diameter",
    "distance_value",
    "divergence_time",
    "equality_profile",
    "full_mask",
    "heard_of_step",
    "set_distance",
    "unanimity_value",
    "unanimous",
    "validate_assignment",
]
