"""Distance functions of Section 4: ``d_P``, ``d_min`` and ``d_max``.

All functions operate on :class:`~repro.core.ptg.PTGPrefix` objects sharing a
view interner.  For finite prefixes the convention is:

* :func:`divergence_time` returns the first round ``t`` (within the common
  depth) at which the relevant views differ, or ``None`` when the prefixes
  are indistinguishable through their common depth;
* the numeric distances return ``2^{-t}`` in the first case and ``0.0`` in
  the second.  ``0.0`` therefore means "indistinguishable as far as the
  finite prefixes can tell" — exactly the semantics needed by the ball
  computations of Definition 6.2, where balls of radius ``2^{-t}`` are taken
  around depth-``t`` prefixes.

The functions mirror the paper's definitions:

* ``d_P(α, β) = 2^{-inf{t >= 0 : V_P(α^t) != V_P(β^t)}}`` (Section 4.1),
  where the ``P``-view is the tuple of the views of the processes in ``P``;
* ``d_min(α, β) = min_{p} d_{p}(α, β)`` (Section 4.2), a pseudo-semi-metric;
* ``d_max = d_{[n]}`` coincides with the common-prefix metric (Theorem 4.3).

Because views are nested (each view contains its predecessor), the set of
processes that cannot yet distinguish two prefixes shrinks monotonically with
``t``; :func:`equality_profile` exposes that decreasing "Eq-set" trajectory,
which the limit machinery of :mod:`repro.topology.limits` builds on.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Sequence

from repro.core.ptg import PTGPrefix
from repro.errors import AnalysisError

__all__ = [
    "divergence_time",
    "d_view",
    "d_p",
    "d_min",
    "d_max",
    "distance_value",
    "equality_profile",
    "set_distance",
    "diameter",
]


def _check_compatible(a: PTGPrefix, b: PTGPrefix) -> None:
    if a.interner is not b.interner:
        raise AnalysisError("prefixes must share a ViewInterner to be compared")


def distance_value(t: int | None) -> float:
    """Convert a divergence time to the distance ``2^{-t}`` (``0.0`` if None)."""
    if t is None:
        return 0.0
    if t <= 0:
        return 1.0
    try:
        return math.ldexp(1.0, -t)
    except OverflowError:  # pragma: no cover - absurdly deep prefixes
        return 0.0


def divergence_time(
    a: PTGPrefix, b: PTGPrefix, processes: Iterable[int] | None = None
) -> int | None:
    """First time the ``P``-views of the two prefixes differ.

    ``processes`` defaults to all processes (giving the common-prefix
    divergence of ``d_max``).  Returns ``None`` when no divergence occurs
    within the common depth.
    """
    _check_compatible(a, b)
    subset = tuple(range(a.n)) if processes is None else tuple(processes)
    if not subset:
        raise AnalysisError("the process set P of a P-view must be nonempty")
    horizon = min(a.depth, b.depth)
    for t in range(horizon + 1):
        va = a.views(t)
        vb = b.views(t)
        if any(va[p] != vb[p] for p in subset):
            return t
    return None


def d_view(a: PTGPrefix, b: PTGPrefix, processes: Iterable[int] | None = None) -> float:
    """The pseudo-metric ``d_P`` evaluated on two prefixes."""
    return distance_value(divergence_time(a, b, processes))


def d_p(a: PTGPrefix, b: PTGPrefix, p: int) -> float:
    """The single-process pseudo-metric ``d_{p}``."""
    return d_view(a, b, (p,))


def d_max(a: PTGPrefix, b: PTGPrefix) -> float:
    """The common-prefix metric ``d_max = d_{[n]}`` (Theorem 4.3)."""
    return d_view(a, b, None)


def d_min(a: PTGPrefix, b: PTGPrefix) -> float:
    """The minimum pseudo-semi-metric ``d_min = min_p d_{p}`` (Section 4.2)."""
    _check_compatible(a, b)
    return min(d_p(a, b, p) for p in range(a.n))


def equality_profile(a: PTGPrefix, b: PTGPrefix) -> list[frozenset[int]]:
    """The decreasing trajectory of Eq-sets ``{p : V_p(α^t) = V_p(β^t)}``.

    Entry ``t`` lists the processes that cannot distinguish the prefixes
    through time ``t``.  The sets are monotonically decreasing because views
    are nested; ``d_min = 2^{-(first t with empty set)}``.
    """
    _check_compatible(a, b)
    horizon = min(a.depth, b.depth)
    profile = []
    alive = frozenset(range(a.n))
    for t in range(horizon + 1):
        va = a.views(t)
        vb = b.views(t)
        alive = frozenset(p for p in alive if va[p] == vb[p])
        profile.append(alive)
    return profile


def set_distance(
    left: Sequence[PTGPrefix],
    right: Sequence[PTGPrefix],
    dist: Callable[[PTGPrefix, PTGPrefix], float] = d_min,
) -> float:
    """``inf { dist(a, b) : a ∈ left, b ∈ right }`` (Definition 5.12)."""
    if not left or not right:
        raise AnalysisError("set distance needs nonempty sets")
    return min(dist(a, b) for a in left for b in right)


def diameter(
    members: Sequence[PTGPrefix],
    dist: Callable[[PTGPrefix, PTGPrefix], float] = d_min,
) -> float:
    """``sup { dist(a, b) : a, b ∈ members }`` (Definition 5.7)."""
    if not members:
        raise AnalysisError("diameter needs a nonempty set")
    worst = 0.0
    for i, a in enumerate(members):
        for b in members[i + 1 :]:
            worst = max(worst, dist(a, b))
    return worst
