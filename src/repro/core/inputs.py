"""Input assignments and input domains.

Consensus (Definition 5.1) starts from an *input assignment*
``x = (x_0, ..., x_{n-1})`` drawn from a finite input domain ``V_I``.  The
paper's spaces of process-time graphs are indexed by both the graph sequence
and the input assignment, so the library treats assignments as first-class
(hashable tuples) and provides the enumeration helpers the prefix-space
machinery needs.
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, Sequence

from repro.errors import InvalidInputError

__all__ = [
    "InputAssignment",
    "all_assignments",
    "unanimous",
    "unanimity_value",
    "binary_domain",
    "validate_assignment",
]

#: An input assignment is simply a tuple of input values, one per process.
InputAssignment = tuple

#: The default binary input domain used throughout the paper's examples.
binary_domain: tuple[int, ...] = (0, 1)


def validate_assignment(x: Sequence, n: int, domain: Iterable) -> tuple:
    """Return ``x`` as a tuple, checking size and domain membership."""
    xs = tuple(x)
    if len(xs) != n:
        raise InvalidInputError(f"assignment {xs!r} has length {len(xs)}, expected {n}")
    domain_set = set(domain)
    for value in xs:
        if value not in domain_set:
            raise InvalidInputError(f"input value {value!r} outside domain {sorted(map(repr, domain_set))}")
    return xs


def all_assignments(n: int, domain: Iterable = binary_domain) -> tuple[tuple, ...]:
    """All ``|domain|^n`` input assignments, in deterministic order."""
    values = tuple(domain)
    if not values:
        raise InvalidInputError("input domain must be nonempty")
    return tuple(product(values, repeat=n))


def unanimous(n: int, value) -> tuple:
    """The assignment where every process starts with ``value``."""
    return (value,) * n


def unanimity_value(x: Sequence):
    """The common value of a unanimous assignment, or ``None`` if mixed.

    Unanimous assignments are exactly the ``v``-valent starting points
    ``z_v`` of Section 5.1.
    """
    xs = tuple(x)
    if not xs:
        raise InvalidInputError("empty assignment has no unanimity value")
    first = xs[0]
    return first if all(v == first for v in xs) else None
