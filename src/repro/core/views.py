"""Interned full-information views (local causal pasts).

The paper reasons about the *view* ``V_{p}(PT^t)`` of a process ``p`` in a
process-time graph: the causal past of the node ``(p, t)``, i.e. the subgraph
of all process-time nodes with a path to ``(p, t)`` (Section 4, Figure 2).

For full-information protocols the causal past admits an equivalent recursive
representation, which is what this module implements:

* at time 0, the view of ``p`` is the leaf ``(p, x_p)``;
* at time ``t >= 1``, the view of ``p`` is ``(p, {view(q, t-1) : q ∈
  In_{G_t}(p)})`` where the in-neighborhood includes ``p`` itself.

Because every sub-view records its owner, the recursive representation and
the causal-past subgraph determine each other (a fact the test suite checks
by brute force).  Views are *hash-consed* through :class:`ViewInterner`:
structurally equal views receive the same integer id, so the view-equality
tests that underlie every distance function in the paper become integer
comparisons.

The interner also maintains, per view, the bitmask of processes whose
*initial* node ``(q, 0, x_q)`` occurs in the causal past, together with the
observed input values.  This is precisely the information needed to decide
broadcastability (Definition 5.8): ``p`` has broadcast in a prefix iff the
bit of ``p`` is set in every process's view mask.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import AnalysisError

__all__ = ["ViewInterner", "ViewStats"]


class ViewStats:
    """A small report on the contents of a :class:`ViewInterner`."""

    __slots__ = ("total", "leaves", "max_depth")

    def __init__(self, total: int, leaves: int, max_depth: int) -> None:
        self.total = total
        self.leaves = leaves
        self.max_depth = max_depth

    def __repr__(self) -> str:
        return (
            f"ViewStats(total={self.total}, leaves={self.leaves}, "
            f"max_depth={self.max_depth})"
        )


class ViewInterner:
    """Hash-consing store for full-information views of an ``n``-process system.

    All prefixes participating in one analysis must share one interner; view
    ids are only comparable within the interner that produced them.

    Examples
    --------
    >>> interner = ViewInterner(2)
    >>> a = interner.leaf(0, 1)
    >>> b = interner.leaf(0, 1)
    >>> a == b
    True
    """

    __slots__ = (
        "n",
        "_table",
        "_pid",
        "_depth",
        "_payload",
        "_origin_mask",
        "_origin_values",
        "_leaf_count",
    )

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise AnalysisError("a view interner needs n >= 1 processes")
        self.n = n
        self._table: dict = {}
        self._pid: list[int] = []
        self._depth: list[int] = []
        self._payload: list = []
        self._origin_mask: list[int] = []
        self._origin_values: list[tuple] = []
        self._leaf_count = 0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def leaf(self, p: int, value) -> int:
        """Intern the time-0 view ``(p, value)`` and return its id."""
        self._check_pid(p)
        key = (p, value)
        vid = self._table.get(key)
        if vid is None:
            vid = self._store(
                key,
                pid=p,
                depth=0,
                payload=value,
                origin_mask=1 << p,
                origin_values=((p, value),),
            )
            self._leaf_count += 1
        return vid

    def node(self, p: int, children: Iterable[int]) -> int:
        """Intern the view of ``p`` whose in-neighborhood saw ``children``.

        ``children`` are the ids of the previous-round views of ``p``'s
        in-neighbors (including ``p`` itself); they must all have the same
        depth.
        """
        self._check_pid(p)
        kids = frozenset(children)
        if not kids:
            raise AnalysisError("a non-leaf view needs at least its own previous view")
        key = (p, kids)
        vid = self._table.get(key)
        if vid is not None:
            return vid
        depths = {self._depth[c] for c in kids}
        if len(depths) != 1:
            raise AnalysisError(f"children of a view must share a depth, got {sorted(depths)}")
        mask = 0
        values: dict[int, object] = {}
        for c in kids:
            mask |= self._origin_mask[c]
            for q, value in self._origin_values[c]:
                previous = values.setdefault(q, value)
                if previous != value:
                    raise AnalysisError(
                        f"inconsistent input values for process {q}: {previous!r} vs {value!r}"
                    )
        return self._store(
            key,
            pid=p,
            depth=depths.pop() + 1,
            payload=kids,
            origin_mask=mask,
            origin_values=tuple(sorted(values.items(), key=lambda kv: kv[0])),
        )

    def _store(self, key, *, pid, depth, payload, origin_mask, origin_values) -> int:
        vid = len(self._pid)
        self._table[key] = vid
        self._pid.append(pid)
        self._depth.append(depth)
        self._payload.append(payload)
        self._origin_mask.append(origin_mask)
        self._origin_values.append(origin_values)
        return vid

    def _check_pid(self, p: int) -> None:
        if not 0 <= p < self.n:
            raise AnalysisError(f"process id {p} outside 0..{self.n - 1}")

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    def pid(self, vid: int) -> int:
        """The process that owns view ``vid``."""
        return self._pid[vid]

    def depth(self, vid: int) -> int:
        """The time (round number) at which view ``vid`` is taken."""
        return self._depth[vid]

    def is_leaf(self, vid: int) -> bool:
        """Whether ``vid`` is a time-0 view."""
        return self._depth[vid] == 0

    def leaf_value(self, vid: int):
        """The input value of a time-0 view."""
        if not self.is_leaf(vid):
            raise AnalysisError(f"view {vid} is not a leaf")
        return self._payload[vid]

    def children(self, vid: int) -> frozenset[int]:
        """The previous-round views visible in ``vid`` (empty for leaves)."""
        if self.is_leaf(vid):
            return frozenset()
        return self._payload[vid]

    def origin_mask(self, vid: int) -> int:
        """Bitmask of processes whose initial node lies in the causal past."""
        return self._origin_mask[vid]

    def origins(self, vid: int) -> tuple:
        """Sorted tuple of ``(q, x_q)`` pairs visible in the causal past."""
        return self._origin_values[vid]

    def knows_input_of(self, vid: int, q: int) -> bool:
        """Whether the causal past of ``vid`` contains ``(q, 0, x_q)``."""
        return bool(self._origin_mask[vid] >> q & 1)

    def input_of(self, vid: int, q: int):
        """The input value of ``q`` as recorded in the causal past of ``vid``."""
        for owner, value in self._origin_values[vid]:
            if owner == q:
                return value
        raise AnalysisError(f"view {vid} has not heard of process {q}")

    def stats(self) -> ViewStats:
        """Summary statistics of the interner's contents."""
        max_depth = max(self._depth, default=0)
        return ViewStats(len(self._pid), self._leaf_count, max_depth)

    def __len__(self) -> int:
        return len(self._pid)

    # ------------------------------------------------------------------ #
    # Causal-cone reconstruction (used by viz and by the test suite)
    # ------------------------------------------------------------------ #

    def cone(self, vid: int) -> tuple[set, set]:
        """The causal past of ``vid`` as explicit process-time nodes/edges.

        Returns ``(nodes, edges)`` where nodes are ``(q, s)`` pairs (``s`` the
        time coordinate, with ``s = 0`` nodes standing for ``(q, 0, x_q)``)
        and edges are ``((q, s), (r, s + 1))`` pairs.  The apex is
        ``(pid(vid), depth(vid))``.
        """
        nodes: set = set()
        edges: set = set()
        seen: set[int] = set()
        stack = [vid]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            p, d = self._pid[current], self._depth[current]
            nodes.add((p, d))
            for child in self.children(current):
                edges.add(((self._pid[child], d - 1), (p, d)))
                stack.append(child)
        return nodes, edges
