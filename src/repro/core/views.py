"""Interned full-information views (local causal pasts).

The paper reasons about the *view* ``V_{p}(PT^t)`` of a process ``p`` in a
process-time graph: the causal past of the node ``(p, t)``, i.e. the subgraph
of all process-time nodes with a path to ``(p, t)`` (Section 4, Figure 2).

For full-information protocols the causal past admits an equivalent recursive
representation, which is what this module implements:

* at time 0, the view of ``p`` is the leaf ``(p, x_p)``;
* at time ``t >= 1``, the view of ``p`` is ``(p, {view(q, t-1) : q ∈
  In_{G_t}(p)})`` where the in-neighborhood includes ``p`` itself.

Because every sub-view records its owner, the recursive representation and
the causal-past subgraph determine each other (a fact the test suite checks
by brute force).  Views are *hash-consed* through :class:`ViewInterner`:
structurally equal views receive the same integer id, so the view-equality
tests that underlie every distance function in the paper become integer
comparisons.

The interner also maintains, per view, the bitmask of processes whose
*initial* node ``(q, 0, x_q)`` occurs in the causal past, together with the
observed input values.  This is precisely the information needed to decide
broadcastability (Definition 5.8): ``p`` has broadcast in a prefix iff the
bit of ``p`` is set in every process's view mask.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.digraph import Digraph
from repro.errors import AnalysisError

__all__ = ["ViewInterner", "ViewStats"]


class ViewStats:
    """A small report on the contents of a :class:`ViewInterner`."""

    __slots__ = ("total", "leaves", "max_depth")

    def __init__(self, total: int, leaves: int, max_depth: int) -> None:
        self.total = total
        self.leaves = leaves
        self.max_depth = max_depth

    def __repr__(self) -> str:
        return (
            f"ViewStats(total={self.total}, leaves={self.leaves}, "
            f"max_depth={self.max_depth})"
        )


class ViewInterner:
    """Hash-consing store for full-information views of an ``n``-process system.

    All prefixes participating in one analysis must share one interner; view
    ids are only comparable within the interner that produced them.

    Examples
    --------
    >>> interner = ViewInterner(2)
    >>> a = interner.leaf(0, 1)
    >>> b = interner.leaf(0, 1)
    >>> a == b
    True
    """

    __slots__ = (
        "n",
        "_table",
        "_pid",
        "_depth",
        "_payload",
        "_origin_mask",
        "_origin_values",
        "_leaf_count",
        "_level_cache",
    )

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise AnalysisError("a view interner needs n >= 1 processes")
        self.n = n
        self._table: dict = {}
        self._pid: list[int] = []
        self._depth: list[int] = []
        self._payload: list = []
        self._origin_mask: list[int] = []
        self._origin_values: list = []
        self._leaf_count = 0
        # (level tuple, graph) -> next level tuple; the prefix-space hot path.
        self._level_cache: dict = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def leaf(self, p: int, value) -> int:
        """Intern the time-0 view ``(p, value)`` and return its id."""
        self._check_pid(p)
        key = (p, value)
        vid = self._table.get(key)
        if vid is None:
            vid = self._store(
                key,
                pid=p,
                depth=0,
                payload=value,
                origin_mask=1 << p,
                origin_values=((p, value),),
            )
            self._leaf_count += 1
        return vid

    def node(self, p: int, children: Iterable[int]) -> int:
        """Intern the view of ``p`` whose in-neighborhood saw ``children``.

        ``children`` are the ids of the previous-round views of ``p``'s
        in-neighbors (including ``p`` itself); they must all have the same
        depth.
        """
        self._check_pid(p)
        kids = tuple(sorted(set(children)))
        if not kids:
            raise AnalysisError("a non-leaf view needs at least its own previous view")
        # Non-leaf keys are tagged with ``~p`` so they can never collide
        # with a leaf key ``(p, value)`` whatever the input values are.
        key = (~p, kids)
        vid = self._table.get(key)
        if vid is not None:
            return vid
        depths = {self._depth[c] for c in kids}
        if len(depths) != 1:
            raise AnalysisError(f"children of a view must share a depth, got {sorted(depths)}")
        mask = 0
        values: dict[int, object] = {}
        for c in kids:
            mask |= self._origin_mask[c]
            for q, value in self.origins(c):
                previous = values.setdefault(q, value)
                if previous != value:
                    raise AnalysisError(
                        f"inconsistent input values for process {q}: {previous!r} vs {value!r}"
                    )
        return self._store(
            key,
            pid=p,
            depth=depths.pop() + 1,
            payload=kids,
            origin_mask=mask,
            origin_values=tuple(sorted(values.items(), key=lambda kv: kv[0])),
        )

    def leaf_level(self, inputs: Sequence) -> tuple[int, ...]:
        """Intern the whole time-0 level ``(leaf(0, x_0), ..., leaf(n-1, x_{n-1}))``."""
        if len(inputs) != self.n:
            raise AnalysisError(
                f"assignment of length {len(inputs)} for n={self.n} interner"
            )
        table = self._table
        pids = self._pid
        level = []
        for p, value in enumerate(inputs):
            key = (p, value)
            vid = table.get(key)
            if vid is None:
                vid = len(pids)
                table[key] = vid
                pids.append(p)
                self._depth.append(0)
                self._payload.append(value)
                self._origin_mask.append(1 << p)
                self._origin_values.append(((p, value),))
                self._leaf_count += 1
            level.append(vid)
        return tuple(level)

    def extend_level(self, level: tuple[int, ...], graph: Digraph) -> tuple[int, ...]:
        """One synchronous round: the views of all processes after ``graph``.

        ``level`` must be the full view-id tuple of one prefix at some time
        ``t`` (so the children of each new view are mutually consistent by
        construction); the result is the level at time ``t + 1``.  Results
        are memoized per ``(level, graph)``, and origin *values* of the new
        views are materialized lazily (only :meth:`origins` and
        :meth:`input_of` force them) — the prefix-space hot path needs only
        the origin masks.
        """
        memo_key = (level, graph)
        cached = self._level_cache.get(memo_key)
        if cached is not None:
            return cached
        result = self.extend_level_multi(level, (graph,))[0]
        self._level_cache[memo_key] = result
        return result

    def extend_level_multi(
        self, level: tuple[int, ...], graphs: Sequence[Digraph]
    ) -> list[tuple[int, ...]]:
        """Extend one level by every graph of an alphabet in a single pass.

        Equivalent to ``[self.extend_level(level, g) for g in graphs]`` but
        shares the per-``(p, in-neighborhood)`` work across graphs: alphabets
        typically repeat in-rows (e.g. every graph in which ``p`` hears
        everyone produces the same view of ``p``), so each distinct row is
        interned once.  This is the inner loop of prefix-space layer
        construction.
        """
        table = self._table
        table_get = table.get
        pids = self._pid
        depths = self._depth
        payloads = self._payload
        masks = self._origin_mask
        values = self._origin_values
        depth = depths[level[0]] + 1
        n = self.n
        sorted_level: tuple[int, ...] | None = None
        row_cache: dict = {}
        row_get = row_cache.get
        results = []
        for graph in graphs:
            out = []
            for p, in_list in enumerate(graph.in_neighbor_lists):
                row_key = (p, in_list)
                vid = row_get(row_key)
                if vid is None:
                    size = len(in_list)
                    if size == 2:
                        a = level[in_list[0]]
                        b = level[in_list[1]]
                        kids = (a, b) if a < b else (b, a)
                    elif size == 1:
                        kids = (level[in_list[0]],)
                    elif size == n:
                        # Dense row: every graph in which p hears everyone
                        # shares the sorted full level.
                        if sorted_level is None:
                            sorted_level = tuple(sorted(level))
                        kids = sorted_level
                    else:
                        kids = tuple(sorted([level[q] for q in in_list]))
                    key = (~p, kids)
                    vid = table_get(key)
                    if vid is None:
                        mask = 0
                        for c in kids:
                            mask |= masks[c]
                        vid = len(pids)
                        table[key] = vid
                        pids.append(p)
                        depths.append(depth)
                        payloads.append(kids)
                        masks.append(mask)
                        values.append(None)
                    row_cache[row_key] = vid
                out.append(vid)
            results.append(tuple(out))
        return results

    def _store(self, key, *, pid, depth, payload, origin_mask, origin_values) -> int:
        vid = len(self._pid)
        self._table[key] = vid
        self._pid.append(pid)
        self._depth.append(depth)
        self._payload.append(payload)
        self._origin_mask.append(origin_mask)
        self._origin_values.append(origin_values)
        return vid

    def _check_pid(self, p: int) -> None:
        if not 0 <= p < self.n:
            raise AnalysisError(f"process id {p} outside 0..{self.n - 1}")

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    def pid(self, vid: int) -> int:
        """The process that owns view ``vid``."""
        return self._pid[vid]

    def depth(self, vid: int) -> int:
        """The time (round number) at which view ``vid`` is taken."""
        return self._depth[vid]

    def is_leaf(self, vid: int) -> bool:
        """Whether ``vid`` is a time-0 view."""
        return self._depth[vid] == 0

    def leaf_value(self, vid: int):
        """The input value of a time-0 view."""
        if not self.is_leaf(vid):
            raise AnalysisError(f"view {vid} is not a leaf")
        return self._payload[vid]

    def children(self, vid: int) -> frozenset[int]:
        """The previous-round views visible in ``vid`` (empty for leaves)."""
        if self.is_leaf(vid):
            return frozenset()
        return frozenset(self._payload[vid])

    def origin_mask(self, vid: int) -> int:
        """Bitmask of processes whose initial node lies in the causal past."""
        return self._origin_mask[vid]

    def origins(self, vid: int) -> tuple:
        """Sorted tuple of ``(q, x_q)`` pairs visible in the causal past."""
        cached = self._origin_values[vid]
        if cached is None:
            cached = self._force_origins(vid)
        return cached

    def _force_origins(self, vid: int) -> tuple:
        """Materialize lazily-deferred origin values (fast-path views only).

        Views created through :meth:`extend_level` defer the value merge;
        their children are mutually consistent by construction, so a plain
        union suffices.
        """
        values = self._origin_values
        merged: dict[int, object] = {}
        stack = [vid]
        seen = {vid}
        pending: list[int] = []
        while stack:
            current = stack.pop()
            if values[current] is None:
                pending.append(current)
                for child in self._payload[current]:
                    if child not in seen:
                        seen.add(child)
                        stack.append(child)
            else:
                merged.update(values[current])
        # Fill in post-order so deeper views are cached too.
        for current in reversed(pending):
            mask = self._origin_mask[current]
            entry = tuple(
                (q, merged[q]) for q in range(self.n) if mask >> q & 1
            )
            values[current] = entry
        return values[vid]

    def knows_input_of(self, vid: int, q: int) -> bool:
        """Whether the causal past of ``vid`` contains ``(q, 0, x_q)``."""
        return bool(self._origin_mask[vid] >> q & 1)

    def input_of(self, vid: int, q: int):
        """The input value of ``q`` as recorded in the causal past of ``vid``."""
        for owner, value in self.origins(vid):
            if owner == q:
                return value
        raise AnalysisError(f"view {vid} has not heard of process {q}")

    def stats(self) -> ViewStats:
        """Summary statistics of the interner's contents."""
        max_depth = max(self._depth, default=0)
        return ViewStats(len(self._pid), self._leaf_count, max_depth)

    def __len__(self) -> int:
        return len(self._pid)

    # ------------------------------------------------------------------ #
    # Causal-cone reconstruction (used by viz and by the test suite)
    # ------------------------------------------------------------------ #

    def cone(self, vid: int) -> tuple[set, set]:
        """The causal past of ``vid`` as explicit process-time nodes/edges.

        Returns ``(nodes, edges)`` where nodes are ``(q, s)`` pairs (``s`` the
        time coordinate, with ``s = 0`` nodes standing for ``(q, 0, x_q)``)
        and edges are ``((q, s), (r, s + 1))`` pairs.  The apex is
        ``(pid(vid), depth(vid))``.
        """
        nodes: set = set()
        edges: set = set()
        seen: set[int] = set()
        stack = [vid]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            p, d = self._pid[current], self._depth[current]
            nodes.add((p, d))
            for child in self.children(current):
                edges.add(((self._pid[child], d - 1), (p, d)))
                stack.append(child)
        return nodes, edges
