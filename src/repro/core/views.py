"""Interned full-information views (local causal pasts).

The paper reasons about the *view* ``V_{p}(PT^t)`` of a process ``p`` in a
process-time graph: the causal past of the node ``(p, t)``, i.e. the subgraph
of all process-time nodes with a path to ``(p, t)`` (Section 4, Figure 2).

For full-information protocols the causal past admits an equivalent recursive
representation, which is what this module implements:

* at time 0, the view of ``p`` is the leaf ``(p, x_p)``;
* at time ``t >= 1``, the view of ``p`` is ``(p, {view(q, t-1) : q ∈
  In_{G_t}(p)})`` where the in-neighborhood includes ``p`` itself.

Because every sub-view records its owner, the recursive representation and
the causal-past subgraph determine each other (a fact the test suite checks
by brute force).  Views are *hash-consed* through :class:`ViewInterner`:
structurally equal views receive the same integer id, so the view-equality
tests that underlie every distance function in the paper become integer
comparisons.

Array-backed view tables
------------------------
The interner is columnar: per view id, parallel ``array`` columns hold the
owner (``_pid``), the depth (``_depth``), the origin bitmask
(``_origin_mask``), and a *row id* (``_row``) that indexes one of two side
tables — the leaf payload list for time-0 views, or the interned *child-row
arena* for later views.  Child rows (sorted view-id sets) live flat in the
arena (``_row_data`` + ``_row_starts`` offsets): no per-row Python tuple is
ever stored.  Row interning goes through a packed-key open-addressing table
(``_row_slots``): a 64-bit mix of the child ids is the probe key, collisions
resolve by comparing against the arena, and the per-row hash is kept
(``_row_hashes``) so table growth rehashes without touching row contents.
Because row ids are allocated consecutively, the node lookup key
``row_id * n + p`` stays dense and the node "table" remains a flat slot
array indexed directly.  The ``(level, graph)`` extension cache of the
memoized hot path is likewise keyed by compact integers: levels and graphs
get small ids, the memo key is ``level_id << 32 | graph_id``.

The interner also maintains, per view, the bitmask of processes whose
*initial* node ``(q, 0, x_q)`` occurs in the causal past, together with the
observed input values.  This is precisely the information needed to decide
broadcastability (Definition 5.8): ``p`` has broadcast in a prefix iff the
bit of ``p`` is set in every process's view mask.

The whole-layer extension kernel
--------------------------------
:meth:`ViewInterner.extend_layer_table` interns the successors of an
*entire* prefix-space layer in one call and returns them *columnar*: one
:class:`LayerTable` per graph — a flat view-id column, the exchange format
the prefix space, the component analysis, and the decision-table builder
all consume directly, so a layer never expands into per-child Python
tuples on the hot path.  The kernel deduplicates parent levels, then works
per distinct *in-neighborhood* of the alphabet (child rows depend on the
in-list only, never on the owner): it builds every candidate child row of
the layer, deduplicates rows across all parents at once, interns each
distinct row a single time through the open-addressing row table, and
allocates new views at unique-row granularity.  Two backends implement the
batch:

* ``"numpy"`` — the layer column becomes one int64 matrix; candidate rows
  are gathered/sorted/uniqued as packed key columns (``np.unique``-based
  bulk interning: row hashes for the open-addressing probe are computed
  vectorized over the distinct rows), and view slots resolve through
  vectorized gathers over the interner's buffer-backed columns.  Selected
  by default when numpy imports (set ``REPRO_PURE_PYTHON=1`` to veto at
  import time).
* ``"python"`` — the same batched structure in pure Python, so
  ``dependencies = []`` stays true and the kernel is always available.

:meth:`ViewInterner.extend_layer` remains as the tuple-returning
compatibility wrapper (and the memoized path, whose ``(level, graph)``
cache is keyed by level tuples).  Both backends produce structurally
identical views over the same shared row arena, so they may be mixed
freely with the per-parent :meth:`ViewInterner.extend_level_multi` path on
one interner; only the view-id *numbering* may differ between backends.
"""

from __future__ import annotations

import os
import sys
import warnings
from array import array
from typing import Iterable, Sequence

from repro.core.digraph import Digraph
from repro.errors import AnalysisError

try:  # Optional acceleration; REPRO_PURE_PYTHON=1 forces the fallback.
    if os.environ.get("REPRO_PURE_PYTHON"):
        _np = None
    else:
        import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

__all__ = [
    "LayerTable",
    "ViewInterner",
    "ViewStats",
    "LAYER_BACKENDS",
    "DEFAULT_LAYER_BACKEND",
    "DEFAULT_PLAN_CACHE_SIZE",
    "numpy_available",
    "numpy_module",
]

#: Origin masks are stored in a signed-64-bit array column when they fit;
#: interners on more processes fall back to a plain list column.
_MASK_ARRAY_MAX_N = 62

#: The layer-kernel backends an interner can run on.
LAYER_BACKENDS = ("numpy", "python")

#: Backend used when a :class:`ViewInterner` is built without an explicit
#: choice: ``"numpy"`` when numpy imported at module load, else ``"python"``.
DEFAULT_LAYER_BACKEND = "python" if _np is None else "numpy"

#: Default LRU capacity of the per-alphabet extension-plan cache.  Real
#: adversary families use a handful of alphabets, so the cap only matters
#: for long-lived sessions sweeping many distinct alphabets — exactly the
#: case that used to grow the cache without bound.
DEFAULT_PLAN_CACHE_SIZE = 128

#: Below this many (parent, pattern) cells the numpy batch is not worth its
#: fixed per-call overhead; tiny layers stay on the pure-Python kernel.
_NUMPY_MIN_CELLS = 192

#: Below this many cells even the batched Python kernel loses to the plain
#: per-parent loop (batch bookkeeping dominates microscopic layers).
_BATCH_MIN_CELLS = 48

#: Below this many (parent, pattern) cells the sharded multiprocess map
#: phase cannot amortize its fixed dispatch cost (shared-memory setup, one
#: pool round trip); smaller layers stay on the serial numpy kernel even
#: when ``extension_workers > 1``.  Tests monkeypatch this to force the
#: sharded path onto small layers.
_MP_MIN_CELLS = 65536

#: Environment cap on per-interner extension workers.  Process-pool sweep
#: workers set this to ``"1"`` so a ``workers x extension_workers``
#: oversubscription cannot happen by accident; users can set it to bound
#: fan-out globally.  Read at dispatch time, so it also applies to
#: interners constructed before the variable was set.
_WORKER_CAP_ENV = "REPRO_MAX_EXTENSION_WORKERS"

#: Multiplier/seed of the fallback 64-bit row mix (FNV offset basis
#: seeded, golden-ratio multiplier).  The same fold runs scalar in Python
#: and vectorized in numpy, so both kernels probe identical slots.
_ROW_HASH_SEED = 0xCBF29CE484222325
_ROW_HASH_MULT = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1

#: CPython's tuple-hash constants (xxHash-style, CPython >= 3.8).  When
#: the running interpreter's ``hash(tuple_of_ints)`` matches this scheme
#: (verified at import below), the scalar side uses the C-speed builtin
#: hash and the numpy kernel emulates it vectorized — ~7x cheaper per row
#: than the Python-level fold.  Int lanes hash to themselves below
#: ``2**61 - 1``, far above any reachable view id.
_XXPRIME_1 = 11400714785074694791
_XXPRIME_2 = 14029467366897019727
_XXPRIME_5 = 2870177450012600261
_XX_SUFFIX = _XXPRIME_5 ^ 3527539


def numpy_available() -> bool:
    """Whether the numpy layer-kernel backend can be selected."""
    return _np is not None


def numpy_module():
    """The numpy module honoring ``REPRO_PURE_PYTHON`` (None when vetoed).

    The columnar consumers of layer tables (component analysis, decision
    tables) share the interner's import gate through this accessor instead
    of re-importing numpy with their own policy.
    """
    return _np


def int64_column(column):
    """A flat column as a 1-D int64 numpy array (zero-copy where possible).

    ndarray passes through, ``array('q')`` becomes a buffer view, anything
    else copies.  The single normalizer behind :meth:`LayerTable.array`
    and the layer stores' parent/input column accessors.
    """
    if _np is None:
        raise AnalysisError("int64_column() requires numpy")
    if isinstance(column, _np.ndarray):
        return column
    if isinstance(column, array):
        return _np.frombuffer(column, dtype=_np.int64)
    return _np.array(column, dtype=_np.int64)


def plain_ids(ids) -> list:
    """A flat id column as a plain-int list (shared refs, dict-key safe).

    List indexing returns shared references, while array/ndarray element
    reads allocate a fresh int per access — and ndarray ints would wrap
    64-bit hash folds.  The columnar consumers (layer kernels, component
    analysis, decision maps) normalize through this one helper.
    """
    if isinstance(ids, list):
        return ids
    return ids.tolist() if hasattr(ids, "tolist") else list(ids)


def _emulated_tuple_hash(kids: Sequence[int]) -> int:
    """CPython's int-tuple hash, reimplemented (the numpy kernel's spec)."""
    acc = _XXPRIME_5
    for x in kids:
        acc = (acc + x * _XXPRIME_2) & _MASK64
        acc = ((acc << 31) | (acc >> 33)) & _MASK64
        acc = (acc * _XXPRIME_1) & _MASK64
    acc = (acc + (len(kids) ^ _XX_SUFFIX)) & _MASK64
    if acc == _MASK64:  # (Py_uhash_t)-1 is reserved
        acc = 1546275796
    return acc


#: Whether the interpreter's builtin tuple hash matches the emulation —
#: the scalar and vectorized kernels must probe identical slots, so a
#: mismatching interpreter (PyPy, a future CPython) falls back to the
#: shared Python-level fold on both sides.
_TUPLE_HASH_OK = all(
    (hash(probe) & _MASK64) == _emulated_tuple_hash(probe)
    for probe in ((0,), (1, 2, 3), (5, 2**40, 17, 3), tuple(range(9)))
)


def _fnv_row_hash(kids: Sequence[int]) -> int:
    """Fallback 64-bit packed probe key (order-sensitive multiply-fold)."""
    h = _ROW_HASH_SEED
    for c in kids:
        h = ((h ^ c) * _ROW_HASH_MULT) & _MASK64
    return h


def _builtin_row_hash(kids) -> int:
    """Probe key via the interpreter's C tuple hash (verified above)."""
    return hash(kids if type(kids) is tuple else tuple(kids)) & _MASK64


_row_hash = _builtin_row_hash if _TUPLE_HASH_OK else _fnv_row_hash


def _bulk_row_hashes(np, uniq, k: int):
    """Vectorized probe keys for a ``(count, k)`` int64 row matrix.

    Bit-identical to :func:`_row_hash` on every row (the xxHash emulation
    when the builtin tuple hash is in play, the fold otherwise), so rows
    interned by either kernel resolve through the same slots.
    """
    count = len(uniq)
    if _TUPLE_HASH_OK:
        acc = np.full(count, _XXPRIME_5, dtype=np.uint64)
        p2 = np.uint64(_XXPRIME_2)
        p1 = np.uint64(_XXPRIME_1)
        s31 = np.uint64(31)
        s33 = np.uint64(33)
        for c in range(k):
            acc = acc + uniq[:, c].astype(np.uint64) * p2
            acc = ((acc << s31) | (acc >> s33)) * p1
        acc = acc + np.uint64(k ^ _XX_SUFFIX)
        acc[acc == np.uint64(_MASK64)] = np.uint64(1546275796)
        return acc
    acc = np.full(count, _ROW_HASH_SEED, dtype=np.uint64)
    mult = np.uint64(_ROW_HASH_MULT)
    for c in range(k):
        acc = (acc ^ uniq[:, c].astype(np.uint64)) * mult
    return acc


def _unique_rows(np, cand):
    """Distinct rows of a row-sorted int64 matrix, plus the inverse map.

    Rows dedup through a packed int64 key column when the ids fit one
    word, and through ``np.unique(..., axis=0)`` otherwise.  Both paths
    return the distinct rows in *lexicographic* order — an order that
    depends only on the row set, never on the packing bit width or on how
    the input rows were partitioned.  That invariance is what lets the
    sharded map phase (:mod:`repro.core.parallel`) re-unique the union of
    per-shard dedups and recover exactly the serial kernel's output.
    """
    k = cand.shape[1]
    if k == 1:
        _, first_idx, inv = np.unique(
            cand[:, 0], return_index=True, return_inverse=True
        )
        return cand[first_idx], inv
    max_id = int(cand[:, -1].max())
    bits = max(1, max_id.bit_length())
    if k * bits <= 63:
        # Pack each sorted row into one int64 key: unique on 1-D ints is
        # far cheaper than row-wise unique.
        keys = cand[:, 0]
        for c in range(1, k):
            keys = (keys << bits) | cand[:, c]
        _, first_idx, inv = np.unique(
            keys, return_index=True, return_inverse=True
        )
        return cand[first_idx], inv
    return np.unique(cand, axis=0, return_inverse=True)


def _candidate_uniq_inv(np, level_matrix, in_list):
    """One in-neighborhood's candidate-row dedup over a layer matrix.

    Gathers the in-list columns of every parent level, sorts each row
    (child rows are *sets* of view ids), and dedups.  This is the
    embarrassingly parallel map phase of the layer kernel: it reads only
    the parent matrix, so shards of the row range can run it in worker
    processes and merge afterwards.
    """
    k = len(in_list)
    cand = level_matrix[:, in_list]
    if k > 1:
        cand = np.ascontiguousarray(cand)
        cand.sort(axis=1)
        return _unique_rows(np, cand)
    _, first_idx, inv = np.unique(
        cand[:, 0], return_index=True, return_inverse=True
    )
    return cand[first_idx], inv


class LayerTable(Sequence):
    """Columnar view-id levels of one layer: the array-native exchange format.

    A layer table is ``count`` levels of ``n`` view ids stored as one flat
    column (``ids``; row-major, so level ``i`` occupies
    ``ids[i*n : (i+1)*n]``).  The column is an ``array('q')``, a plain
    list, or an int64 numpy array — producers pick whatever they built,
    consumers normalize through :meth:`array` (numpy matrix) or plain
    indexing.  Tuple materialization is strictly on demand: indexing or
    iterating yields per-level tuples for the object-level APIs
    (:class:`~repro.topology.prefixspace.PrefixNode` wrappers, tests), but
    the hot analyses read the flat column and never build them.
    """

    __slots__ = ("n", "ids")

    def __init__(self, n: int, ids) -> None:
        self.n = n
        self.ids = ids

    @classmethod
    def from_levels(cls, n: int, levels: Iterable[Sequence[int]]) -> "LayerTable":
        """Pack an iterable of length-``n`` levels into one flat column."""
        flat = array("q")
        for level in levels:
            flat.extend(level)
        return cls(n, flat)

    def __len__(self) -> int:
        return len(self.ids) // self.n

    def __getitem__(self, item):
        n = self.n
        if isinstance(item, slice):
            return [self[i] for i in range(*item.indices(len(self)))]
        size = len(self)
        if item < 0:
            item += size
        if not 0 <= item < size:
            raise IndexError(item)
        base = item * n
        chunk = self.ids[base : base + n]
        if _np is not None and isinstance(chunk, _np.ndarray):
            chunk = chunk.tolist()  # plain ints: hashable keys, no wraparound
        return tuple(chunk)

    def __iter__(self):
        n = self.n
        ids = self.ids
        if _np is not None and isinstance(ids, _np.ndarray):
            ids = ids.tolist()
        for base in range(0, len(ids), n):
            yield tuple(ids[base : base + n])

    def __eq__(self, other) -> bool:
        if isinstance(other, LayerTable):
            return self.n == other.n and list(self.ids) == list(other.ids)
        if isinstance(other, (list, tuple)):
            return len(self) == len(other) and all(
                a == tuple(b) for a, b in zip(self, other)
            )
        return NotImplemented

    def __hash__(self):  # pragma: no cover - tables are not dict keys
        raise TypeError("LayerTable is unhashable; use tolist() levels")

    def array(self):
        """The ``(count, n)`` int64 numpy matrix over the flat column.

        Zero-copy for numpy-backed and ``array('q')``-backed columns
        (buffer view); requires numpy.
        """
        return int64_column(self.ids).reshape(-1, self.n)

    def tolist(self) -> list[tuple[int, ...]]:
        """Materialize the per-level tuples (compat/diagnostic path)."""
        return list(self)

    def __repr__(self) -> str:
        kind = type(self.ids).__name__
        return f"LayerTable(n={self.n}, count={len(self)}, ids={kind})"


class ViewStats:
    """A small report on the contents of a :class:`ViewInterner`.

    Beyond the view counts, the stats expose the table geometry that the
    benchmarks and the CLI use to watch interner pressure: ``rows`` is the
    number of distinct interned child sets, ``cached_extensions`` the number
    of memoized ``(level, graph)`` extensions, ``cached_plans`` the number
    of per-alphabet extension plans currently held (an LRU with
    ``plan_cache_size`` capacity), and ``approx_bytes`` an estimate of the
    resident size of all tables (columns, side tables, cache and plan keys;
    Python object headers of shared children are not counted).
    ``mp_fallbacks`` counts sharded extension dispatches that fell back to
    the serial kernel because the worker pool failed — nonzero means the
    run silently lost its parallelism (each fallback also raises a
    ``RuntimeWarning`` at the dispatch site).
    """

    __slots__ = (
        "total",
        "leaves",
        "max_depth",
        "rows",
        "cached_extensions",
        "cached_plans",
        "approx_bytes",
        "mp_fallbacks",
    )

    def __init__(
        self,
        total: int,
        leaves: int,
        max_depth: int,
        rows: int = 0,
        cached_extensions: int = 0,
        approx_bytes: int = 0,
        cached_plans: int = 0,
        mp_fallbacks: int = 0,
    ) -> None:
        self.total = total
        self.leaves = leaves
        self.max_depth = max_depth
        self.rows = rows
        self.cached_extensions = cached_extensions
        self.cached_plans = cached_plans
        self.approx_bytes = approx_bytes
        self.mp_fallbacks = mp_fallbacks

    def __repr__(self) -> str:
        return (
            f"ViewStats(total={self.total}, leaves={self.leaves}, "
            f"max_depth={self.max_depth}, rows={self.rows}, "
            f"cached_extensions={self.cached_extensions}, "
            f"cached_plans={self.cached_plans}, "
            f"approx_bytes={self.approx_bytes}, "
            f"mp_fallbacks={self.mp_fallbacks})"
        )


class ViewInterner:
    """Hash-consing store for full-information views of an ``n``-process system.

    All prefixes participating in one analysis must share one interner; view
    ids are only comparable within the interner that produced them.  Because
    views depend only on inputs and in-neighborhoods — never on the
    adversary that generated a prefix — one interner may also be shared
    *across* adversaries of the same ``n``, which is how the sweep engine
    reuses view tables between jobs of one shard.

    ``layer_backend`` selects the whole-layer extension kernel backend:
    ``"numpy"`` (vectorized; requires numpy), ``"python"`` (the batched
    pure-Python fallback), or ``None`` for the import-time default
    (:data:`DEFAULT_LAYER_BACKEND`).  The choice affects speed and view-id
    numbering only, never the interned structure.  ``plan_cache_size``
    bounds the per-alphabet extension-plan LRU (``None`` =
    :data:`DEFAULT_PLAN_CACHE_SIZE`; plans are pure functions of the
    alphabet, so eviction never changes results).

    Examples
    --------
    >>> interner = ViewInterner(2)
    >>> a = interner.leaf(0, 1)
    >>> b = interner.leaf(0, 1)
    >>> a == b
    True
    """

    __slots__ = (
        "n",
        "layer_backend",
        "plan_cache_size",
        "extension_workers",
        "_mp_dispatches",
        "_mp_fallbacks",
        "_pid",
        "_depth",
        "_row",
        "_origin_mask",
        "_origin_values",
        "_leaf_table",
        "_leaf_values",
        "_node_slots",
        "_empty_row",
        "_row_data",
        "_row_starts",
        "_row_hashes",
        "_row_slots",
        "_row_slot_mask",
        "_row_masks",
        "_leaf_count",
        "_level_table",
        "_graph_ids",
        "_ext_cache",
        "_plan_cache",
    )

    def __init__(
        self,
        n: int,
        layer_backend: str | None = None,
        plan_cache_size: int | None = None,
        extension_workers: int | None = None,
    ) -> None:
        if n <= 0:
            raise AnalysisError("a view interner needs n >= 1 processes")
        if layer_backend is None:
            layer_backend = DEFAULT_LAYER_BACKEND
        if layer_backend not in LAYER_BACKENDS:
            raise AnalysisError(
                f"unknown layer backend {layer_backend!r}; "
                f"choose from {LAYER_BACKENDS}"
            )
        if layer_backend == "numpy" and _np is None:
            raise AnalysisError(
                "layer backend 'numpy' requested but numpy is not importable "
                "(install numpy or pick the 'python' backend)"
            )
        if plan_cache_size is None:
            plan_cache_size = DEFAULT_PLAN_CACHE_SIZE
        if plan_cache_size < 1:
            raise AnalysisError("plan_cache_size must be >= 1")
        if extension_workers is None:
            extension_workers = 1
        if extension_workers < 1:
            raise AnalysisError("extension_workers must be >= 1")
        self.layer_backend = layer_backend
        self.plan_cache_size = plan_cache_size
        self.extension_workers = extension_workers
        self._mp_dispatches = 0
        self._mp_fallbacks = 0
        self.n = n
        # Parallel per-view columns.  Owners and depths are plain lists of
        # (interpreter-shared) small ints — same 8 bytes per slot as an
        # array, faster appends; row ids grow unbounded, so that column is
        # a machine-integer array, as are the origin masks while they fit.
        self._pid: list[int] = []
        self._depth: list[int] = []
        self._row = array("q")
        self._origin_mask = array("q") if n <= _MASK_ARRAY_MAX_N else []
        self._origin_values: list = []
        # Leaf side table: (p, value) -> vid, plus payload storage.
        self._leaf_table: dict = {}
        self._leaf_values: list = []
        # Node side tables.  Child rows live flat in an arena
        # (``_row_data`` + ``_row_starts`` offsets) and are interned through
        # a packed-key open-addressing table: ``_row_slots`` holds row ids,
        # probed at ``hash & mask`` with linear probing, ``_row_hashes``
        # keeps each row's 64-bit key so growth rehashes by gather.  The
        # dense slot column ``row_id * n + p -> vid`` (-1 = not yet
        # interned) stays a flat array indexed directly.
        self._node_slots = array("q")
        self._empty_row = array("q", [-1]) * n
        self._row_data = array("q")
        self._row_starts = array("q", [0])
        self._row_hashes = array("Q")
        self._row_slots = array("q", [-1]) * 64
        self._row_slot_mask = 63
        # Per-row origin-mask cache: a view's mask is the union of its
        # children's masks, which depends on the row only — never on the
        # owner — so views sharing a row skip the fold.  Machine-int array
        # while masks fit so the numpy kernel can gather it by buffer.
        self._row_masks = array("q") if n <= _MASK_ARRAY_MAX_N else []
        self._leaf_count = 0
        # (level, graph) extension memo, keyed ``level_id << 32 | graph_id``.
        self._level_table: dict[tuple[int, ...], int] = {}
        self._graph_ids: dict[Digraph, int] = {}
        self._ext_cache: dict[int, tuple[int, ...]] = {}
        # Per-alphabet extension plan LRU: distinct (p, in-neighborhood)
        # patterns in first-occurrence order + per-graph assembly layouts.
        self._plan_cache: dict[tuple, tuple] = {}

    # ------------------------------------------------------------------ #
    # The interned child-row arena
    # ------------------------------------------------------------------ #

    def _row_find(self, kids: Sequence[int], h: int) -> tuple[int, int]:
        """Probe the open-addressing table for a row.

        Returns ``(rid, slot)``: ``rid >= 0`` when the row is interned;
        otherwise ``rid == -1`` and ``slot`` is the insertion point (valid
        until the next insert or rehash).
        """
        slots = self._row_slots
        mask = self._row_slot_mask
        hashes = self._row_hashes
        starts = self._row_starts
        data = self._row_data
        k = len(kids)
        idx = h & mask
        while True:
            rid = slots[idx]
            if rid < 0:
                return -1, idx
            if hashes[rid] == h:
                s = starts[rid]
                if starts[rid + 1] - s == k:
                    for j in range(k):
                        if data[s + j] != kids[j]:
                            break
                    else:
                        return rid, idx
            idx = (idx + 1) & mask

    def _row_add_bare(self, kids: Sequence[int], h: int, slot: int) -> int:
        """Append a fresh row to the arena + probe table only.

        The caller is responsible for extending ``_node_slots`` and
        ``_row_masks`` (the numpy kernel does both in bulk).
        """
        rid = len(self._row_hashes)
        self._row_data.extend(kids)
        self._row_starts.append(len(self._row_data))
        self._row_hashes.append(h)
        self._row_slots[slot] = rid
        if (rid + 2) * 3 >= len(self._row_slots) * 2:
            self._row_rehash()
        return rid

    def _row_add(self, kids: Sequence[int], h: int, slot: int, mask_value: int) -> int:
        """Append a fresh row including its node slots and origin mask."""
        rid = self._row_add_bare(kids, h, slot)
        self._node_slots.extend(self._empty_row)
        self._row_masks.append(mask_value)
        return rid

    def _row_rehash(self, size: int | None = None) -> None:
        """Grow the probe table (4x by default) and re-place every row.

        Placement goes by the stored per-row hash — row contents are never
        re-read.  With numpy available and enough rows, placement runs as
        iterated last-write-wins scatter with collision retry instead of a
        per-row Python loop.
        """
        if size is None:
            size = len(self._row_slots) * 4
        mask = size - 1
        nrows = len(self._row_hashes)
        slots = array("q", [-1]) * size
        if _np is not None and nrows >= 4096:
            np = _np
            slots_np = np.frombuffer(slots, dtype=np.int64)
            hashes_np = np.frombuffer(self._row_hashes, dtype=np.uint64)
            idx = (hashes_np & np.uint64(mask)).astype(np.int64)
            pending = np.arange(nrows, dtype=np.int64)
            while len(pending):
                pi = idx[pending]
                slots_np[pi] = pending
                lost = slots_np[pi] != pending
                pending = pending[lost]
                if not len(pending):
                    break
                nxt = (idx[pending] + 1) & mask
                while True:
                    occupied = slots_np[nxt] >= 0
                    if not occupied.any():
                        break
                    nxt[occupied] = (nxt[occupied] + 1) & mask
                idx[pending] = nxt
            del slots_np
        else:
            hashes = self._row_hashes
            for rid in range(nrows):
                idx = hashes[rid] & mask
                while slots[idx] >= 0:
                    idx = (idx + 1) & mask
                slots[idx] = rid
        self._row_slots = slots
        self._row_slot_mask = mask

    def _intern_rows_numpy(self, np, uniq, hashes, k: int):
        """Bulk-intern distinct candidate rows, fully vectorized.

        ``uniq`` is the ``(count, k)`` int64 matrix of distinct sorted
        rows, ``hashes`` their 64-bit fold keys.  Probing gathers the
        open-addressing table through transient buffer windows (hash hits
        verify against the arena, mismatches advance their probe cursor),
        fresh rows append to the arena in one contiguous copy, and their
        slot placement resolves contention by iterated last-write-wins
        scatter.  Returns ``(rids, fresh_rows)``: the row id per input
        row, and the input positions that were freshly interned (their
        node slots/row masks are extended by the caller, as in the scalar
        path).
        """
        count = len(uniq)
        nrows = len(self._row_hashes)
        # Pre-grow for the all-fresh worst case: at most one rehash per
        # batch, and the probe below never observes a resize.
        size = len(self._row_slots)
        while (nrows + count + 2) * 3 >= size * 2:
            size *= 2
        if size != len(self._row_slots):
            self._row_rehash(size=size)
        slot_mask = self._row_slot_mask
        slots_np = np.frombuffer(self._row_slots, dtype=np.int64)
        row_hashes_np = np.frombuffer(self._row_hashes, dtype=np.uint64)
        starts_np = np.frombuffer(self._row_starts, dtype=np.int64)
        data_np = np.frombuffer(self._row_data, dtype=np.int64)
        idx = (hashes & np.uint64(slot_mask)).astype(np.int64)
        rids = np.full(count, -1, dtype=np.int64)
        found_slot = np.full(count, -1, dtype=np.int64)
        unresolved = np.arange(count, dtype=np.int64)
        while len(unresolved):
            cur_idx = idx[unresolved]
            cur = slots_np[cur_idx]
            empty = cur < 0
            if empty.any():
                found_slot[unresolved[empty]] = cur_idx[empty]
            occupied = unresolved[~empty]
            if not len(occupied):
                break
            occ_rids = cur[~empty]
            resolved = np.zeros(len(occupied), dtype=bool)
            hit_pos = np.flatnonzero(row_hashes_np[occ_rids] == hashes[occupied])
            if len(hit_pos):
                cand_rows = occupied[hit_pos]
                cand_rids = occ_rids[hit_pos]
                s = starts_np[cand_rids]
                length_ok = (starts_np[cand_rids + 1] - s) == k
                eq = np.zeros(len(hit_pos), dtype=bool)
                sub = np.flatnonzero(length_ok)
                if len(sub):
                    ss = s[sub]
                    sub_eq = np.ones(len(sub), dtype=bool)
                    for j in range(k):
                        sub_eq &= data_np[ss + j] == uniq[cand_rows[sub], j]
                    eq[sub] = sub_eq
                match_sel = hit_pos[eq]
                rids[occupied[match_sel]] = occ_rids[match_sel]
                resolved[match_sel] = True
            advance = occupied[~resolved]
            idx[advance] = (idx[advance] + 1) & slot_mask
            unresolved = advance
        del starts_np, data_np, row_hashes_np
        fresh_rows = np.flatnonzero(rids < 0)
        total_fresh = len(fresh_rows)
        if total_fresh:
            new_rids = np.arange(nrows, nrows + total_fresh, dtype=np.int64)
            rids[fresh_rows] = new_rids
            payload = np.ascontiguousarray(uniq[fresh_rows], dtype=np.int64)
            old_len = len(self._row_data)
            self._row_data.frombytes(payload.tobytes())
            self._row_starts.frombytes(
                np.arange(
                    old_len + k, old_len + k * total_fresh + 1, k, dtype=np.int64
                ).tobytes()
            )
            self._row_hashes.frombytes(hashes[fresh_rows].tobytes())
            # Slot placement: last-write-wins scatter with collision retry
            # (the table was pre-grown, so the load factor bound holds).
            place_idx = found_slot[fresh_rows]
            pending = np.arange(total_fresh, dtype=np.int64)
            while len(pending):
                pi = place_idx[pending]
                slots_np[pi] = new_rids[pending]
                lost = slots_np[pi] != new_rids[pending]
                pending = pending[lost]
                if not len(pending):
                    break
                nxt = (place_idx[pending] + 1) & slot_mask
                while True:
                    occupied = slots_np[nxt] >= 0
                    if not occupied.any():
                        break
                    nxt[occupied] = (nxt[occupied] + 1) & slot_mask
                place_idx[pending] = nxt
        del slots_np
        return rids, fresh_rows

    def _row_tuple(self, rid: int) -> tuple[int, ...]:
        """Materialize one interned row as a tuple (accessor path only)."""
        starts = self._row_starts
        return tuple(self._row_data[starts[rid] : starts[rid + 1]])

    @property
    def _row_count(self) -> int:
        return len(self._row_hashes)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def leaf(self, p: int, value) -> int:
        """Intern the time-0 view ``(p, value)`` and return its id."""
        self._check_pid(p)
        key = (p, value)
        vid = self._leaf_table.get(key)
        if vid is None:
            vid = len(self._pid)
            self._leaf_table[key] = vid
            self._pid.append(p)
            self._depth.append(0)
            self._row.append(len(self._leaf_values))
            self._leaf_values.append(value)
            self._origin_mask.append(1 << p)
            self._origin_values.append(((p, value),))
            self._leaf_count += 1
        return vid

    def node(self, p: int, children: Iterable[int]) -> int:
        """Intern the view of ``p`` whose in-neighborhood saw ``children``.

        ``children`` are the ids of the previous-round views of ``p``'s
        in-neighbors (including ``p`` itself); they must all have the same
        depth.
        """
        self._check_pid(p)
        kids = tuple(sorted(set(children)))
        if not kids:
            raise AnalysisError("a non-leaf view needs at least its own previous view")
        h = _row_hash(kids)
        rid, slot = self._row_find(kids, h)
        if rid >= 0:
            vid = self._node_slots[rid * self.n + p]
            if vid >= 0:
                return vid
        # Validate *before* interning the row, so a rejected call leaves no
        # phantom row behind in the tables (or the stats).
        depths = {self._depth[c] for c in kids}
        if len(depths) != 1:
            raise AnalysisError(f"children of a view must share a depth, got {sorted(depths)}")
        mask = 0
        values: dict[int, object] = {}
        for c in kids:
            mask |= self._origin_mask[c]
            for q, value in self.origins(c):
                previous = values.setdefault(q, value)
                if previous != value:
                    raise AnalysisError(
                        f"inconsistent input values for process {q}: {previous!r} vs {value!r}"
                    )
        if rid < 0:
            rid = self._row_add(kids, h, slot, mask)
        vid = len(self._pid)
        self._node_slots[rid * self.n + p] = vid
        self._pid.append(p)
        self._depth.append(depths.pop() + 1)
        self._row.append(rid)
        self._origin_mask.append(mask)
        self._origin_values.append(
            tuple(sorted(values.items(), key=lambda kv: kv[0]))
        )
        return vid

    def leaf_level(self, inputs: Sequence) -> tuple[int, ...]:
        """Intern the whole time-0 level ``(leaf(0, x_0), ..., leaf(n-1, x_{n-1}))``."""
        if len(inputs) != self.n:
            raise AnalysisError(
                f"assignment of length {len(inputs)} for n={self.n} interner"
            )
        leaf_table = self._leaf_table
        leaf_table_get = leaf_table.get
        pids = self._pid
        leaf_values = self._leaf_values
        level = []
        for p, value in enumerate(inputs):
            key = (p, value)
            vid = leaf_table_get(key)
            if vid is None:
                vid = len(pids)
                leaf_table[key] = vid
                pids.append(p)
                self._depth.append(0)
                self._row.append(len(leaf_values))
                leaf_values.append(value)
                self._origin_mask.append(1 << p)
                self._origin_values.append(((p, value),))
                self._leaf_count += 1
            level.append(vid)
        return tuple(level)

    def extend_level(self, level: tuple[int, ...], graph: Digraph) -> tuple[int, ...]:
        """One synchronous round: the views of all processes after ``graph``.

        ``level`` must be the full view-id tuple of one prefix at some time
        ``t`` (so the children of each new view are mutually consistent by
        construction); the result is the level at time ``t + 1``.  Results
        are memoized per ``(level, graph)`` in the compact-integer extension
        cache, and origin *values* of the new views are materialized lazily
        (only :meth:`origins` and :meth:`input_of` force them) — the
        prefix-space hot path needs only the origin masks.
        """
        return self.extend_level_multi(level, (graph,), memo=True)[0]

    def extend_level_multi(
        self,
        level: tuple[int, ...],
        graphs: Sequence[Digraph],
        memo: bool = False,
    ) -> list[tuple[int, ...]]:
        """Extend one level by every graph of an alphabet in a single pass.

        Equivalent to ``[self.extend_level(level, g) for g in graphs]`` but
        shares the per-``(p, in-neighborhood)`` work across graphs: alphabets
        typically repeat in-rows (e.g. every graph in which ``p`` hears
        everyone produces the same view of ``p``), so each distinct row is
        interned once.  This is the inner loop of prefix-space layer
        construction.

        With ``memo=True`` every ``(level, graph)`` result is stored in (and
        served from) the extension cache, so repeated extensions — across
        prefix spaces sharing this interner, as in the sweep engine — are a
        single dict lookup.  The cache grows by one entry per distinct
        extension; streaming/evicting spaces leave ``memo`` off to keep
        depth-10+ runs frontier-bounded.
        """
        if memo:
            level_table = self._level_table
            level_id = level_table.get(level)
            if level_id is None:
                level_id = len(level_table)
                level_table[level] = level_id
            graph_ids = self._graph_ids
            ext_cache = self._ext_cache
            base = level_id << 32
            results: list = []
            missing: list[tuple[int, Digraph, int]] = []
            for i, graph in enumerate(graphs):
                gid = graph_ids.get(graph)
                if gid is None:
                    gid = len(graph_ids)
                    graph_ids[graph] = gid
                key = base | gid
                cached = ext_cache.get(key)
                results.append(cached)
                if cached is None:
                    missing.append((i, graph, key))
            if not missing:
                return results
            fresh = self._extend_batch(level, [graph for _, graph, _ in missing])
            for (i, _, key), out in zip(missing, fresh):
                ext_cache[key] = out
                results[i] = out
            return results
        return self._extend_batch(level, graphs)

    def _alphabet_plan(self, graphs: Sequence[Digraph]) -> tuple:
        """The distinct ``(p, in-neighborhood)`` patterns of an alphabet.

        Alphabets repeat in-rows across their graphs (e.g. every graph in
        which ``p`` hears everyone shares a row); which rows coincide is a
        property of the *alphabet alone*, so the dedup is hoisted out of
        the per-parent hot loop and cached per graphs-tuple.  Returns
        ``(patterns, layouts, inlists, pats_of_inlist)``: the distinct
        patterns in first-occurrence order, per graph the pattern indices
        assembling its level, the distinct in-neighborhoods of the
        patterns, and per in-neighborhood the indices of the patterns it
        serves — the layer kernels share candidate-row work across owners
        through the last two.

        The cache is an LRU holding at most ``plan_cache_size`` entries,
        keyed by graphs-tuple — the adversary alphabets plus, on the memo
        path, their partial-miss subsets.  Real families use a handful of
        alphabets, so the working set fits the cap; eviction merely
        recomputes (plans are pure functions of the alphabet) and
        :class:`ViewStats` reports the live count as ``cached_plans``.
        """
        key = tuple(graphs)
        cache = self._plan_cache
        plan = cache.get(key)
        if plan is not None:
            if next(reversed(cache)) != key:
                # LRU touch: re-append as the most recently used entry.
                del cache[key]
                cache[key] = plan
            return plan
        patterns: list[tuple[int, tuple[int, ...]]] = []
        index_of: dict = {}
        layouts = []
        for graph in key:
            layout = []
            for p, in_list in enumerate(graph.in_neighbor_lists):
                pattern = (p, in_list)
                i = index_of.get(pattern)
                if i is None:
                    i = len(patterns)
                    index_of[pattern] = i
                    patterns.append(pattern)
                layout.append(i)
            layouts.append(layout)
        # Child rows depend on the in-neighborhood only, never on the
        # owner: group patterns by in-list so the layer kernels build
        # and dedup each candidate-row column once per in-list.
        inlist_index: dict = {}
        inlists: list[tuple[int, ...]] = []
        pats_of_inlist: list[list[int]] = []
        for pi, (_, in_list) in enumerate(patterns):
            s = inlist_index.get(in_list)
            if s is None:
                s = inlist_index[in_list] = len(inlists)
                inlists.append(in_list)
                pats_of_inlist.append([])
            pats_of_inlist[s].append(pi)
        plan = (
            patterns,
            layouts,
            tuple(inlists),
            tuple(tuple(pis) for pis in pats_of_inlist),
        )
        while len(cache) >= self.plan_cache_size:
            del cache[next(iter(cache))]
        cache[key] = plan
        return plan

    def _extend_batch(
        self, level: tuple[int, ...], graphs: Sequence[Digraph]
    ) -> list[tuple[int, ...]]:
        """Uncached batched extension (the per-parent columnar hot loop)."""
        patterns, layouts, _, _ = self._alphabet_plan(graphs)
        node_slots = self._node_slots
        row_masks = self._row_masks
        pids = self._pid
        pids_append = pids.append
        depths_append = self._depth.append
        row_col_append = self._row.append
        masks = self._origin_mask
        masks_append = masks.append
        values_append = self._origin_values.append
        row_find = self._row_find
        row_add = self._row_add
        depth = self._depth[level[0]] + 1
        n = self.n
        sorted_level: tuple[int, ...] | None = None
        vids = []
        vids_append = vids.append
        for p, in_list in patterns:
            size = len(in_list)
            if size == 2:
                a = level[in_list[0]]
                b = level[in_list[1]]
                kids = (a, b) if a < b else (b, a)
            elif size == 1:
                kids = (level[in_list[0]],)
            elif size == n:
                # Dense row: every pattern in which p hears everyone
                # shares the sorted full level.
                if sorted_level is None:
                    sorted_level = tuple(sorted(level))
                kids = sorted_level
            else:
                kids = tuple(sorted([level[q] for q in in_list]))
            h = _row_hash(kids)
            rid, slot = row_find(kids, h)
            if rid < 0:
                # Fresh row: the view cannot exist yet — allocate row and
                # view without re-reading the slot, folding the row mask
                # once for every future owner.
                mask = 0
                for c in kids:
                    mask |= masks[c]
                rid = row_add(kids, h, slot, mask)
                vid = len(pids)
                node_slots[rid * n + p] = vid
                pids_append(p)
                depths_append(depth)
                row_col_append(rid)
                masks_append(mask)
                values_append(None)
            else:
                slot_index = rid * n + p
                vid = node_slots[slot_index]
                if vid < 0:
                    # Every row-creation path stores the row mask, so a
                    # known row always has its mask on hand.
                    mask = row_masks[rid]
                    vid = len(pids)
                    node_slots[slot_index] = vid
                    pids_append(p)
                    depths_append(depth)
                    row_col_append(rid)
                    masks_append(mask)
                    values_append(None)
            vids_append(vid)
        return [tuple([vids[i] for i in layout]) for layout in layouts]

    # ------------------------------------------------------------------ #
    # The whole-layer extension kernel
    # ------------------------------------------------------------------ #

    def extend_layer_table(
        self,
        table: "LayerTable | Sequence[Sequence[int]]",
        graphs: Sequence[Digraph],
    ) -> list[LayerTable]:
        """Intern the successors of an entire layer, columns in — columns out.

        ``table`` is the :class:`LayerTable` of one layer (or any sequence
        of full length-``n`` levels, which is packed first); ``graphs`` the
        alphabet to extend every parent by.  Returns one :class:`LayerTable`
        per graph, aligned with the parents: ``result[j][i]`` is parent
        ``i`` extended by ``graphs[j]`` — element-wise equal to per-parent
        :meth:`extend_level_multi` calls, but the batch deduplicates parent
        levels, builds and dedups every candidate child row of the layer
        per distinct in-neighborhood, interns each distinct row once
        through the open-addressing row table, and allocates new views at
        unique-row granularity — without materializing any per-child level
        tuple.  The backend (numpy or pure Python) follows
        ``self.layer_backend``; tiny layers always run the per-parent loop.

        This is the non-memoized hot path (streaming spaces).  For the
        ``(level, graph)``-memoized variant use :meth:`extend_layer` — the
        cache is keyed by level tuples, so that path materializes them.
        """
        graphs = tuple(graphs)
        if not isinstance(table, LayerTable):
            table = LayerTable.from_levels(self.n, [tuple(lv) for lv in table])
        if table.n != self.n:
            raise AnalysisError(
                f"layer table of n={table.n} levels for n={self.n} interner"
            )
        if len(table.ids) % self.n:
            raise AnalysisError(
                f"layer column of {len(table.ids)} ids is not a multiple of "
                f"n={self.n}"
            )
        if not graphs:
            return []
        if not len(table):
            return [LayerTable(self.n, array("q")) for _ in graphs]
        return [
            LayerTable(self.n, column)
            for column in self._extend_layer_columns(table, graphs)
        ]

    def extend_layer(
        self,
        levels: Sequence[tuple[int, ...]],
        graphs: Sequence[Digraph],
        memo: bool = False,
    ) -> list[list[tuple[int, ...]]]:
        """Tuple-returning batched layer extension (compat + memo path).

        Equivalent to :meth:`extend_layer_table` but accepts and returns
        per-level tuples: ``result[j][i]`` is ``levels[i]`` extended by
        ``graphs[j]``.  With ``memo=True`` results are served from — and
        stored into — the same ``(level, graph)`` extension cache as
        :meth:`extend_level`, so spaces sharing this interner reuse
        whole-layer work across calls and across the per-parent path (the
        cache is keyed by level tuples, which is why this wrapper exists).

        Levels must be full (length ``n``) view-id tuples of one common
        depth, as produced by :meth:`leaf_level` or a previous extension;
        this hot-path contract is checked only cheaply.  Duplicate levels
        are fine: candidate rows dedup across the whole batch anyway.
        """
        graphs = tuple(graphs)
        if not graphs:
            return []
        levels = [
            level if type(level) is tuple else tuple(level) for level in levels
        ]
        if not levels:
            return [[] for _ in graphs]
        if len(levels[0]) != self.n:
            raise AnalysisError(
                f"level of length {len(levels[0])} for n={self.n} interner"
            )
        if memo:
            return self._extend_layer_memo(levels, graphs)
        return self._extend_layer_batch(levels, graphs)

    def _extend_layer_memo(
        self, levels: list[tuple[int, ...]], graphs: tuple[Digraph, ...]
    ) -> list[list[tuple[int, ...]]]:
        """Layer batch through the ``(level, graph)`` extension cache.

        Only levels with at least one uncached ``(level, graph)`` pair
        enter the batch; its results are stored per pair, so later layers,
        other spaces, and the per-parent memo path all hit the same cache.
        """
        level_table = self._level_table
        graph_ids = self._graph_ids
        ext_cache = self._ext_cache
        gids = []
        for graph in graphs:
            gid = graph_ids.get(graph)
            if gid is None:
                gid = len(graph_ids)
                graph_ids[graph] = gid
            gids.append(gid)
        bases = []
        missing: list[int] = []
        seen_missing: set[int] = set()
        for u, level in enumerate(levels):
            lid = level_table.get(level)
            if lid is None:
                lid = len(level_table)
                level_table[level] = lid
            base = lid << 32
            bases.append(base)
            if base not in seen_missing and any(
                base | gid not in ext_cache for gid in gids
            ):
                seen_missing.add(base)
                missing.append(u)
        if missing:
            if len(missing) == len(levels):
                fresh = self._extend_layer_batch(levels, graphs)
            else:
                fresh = self._extend_layer_batch(
                    [levels[u] for u in missing], graphs
                )
            for j, gid in enumerate(gids):
                column = fresh[j]
                for mi, u in enumerate(missing):
                    ext_cache.setdefault(bases[u] | gid, column[mi])
        return [[ext_cache[base | gid] for base in bases] for gid in gids]

    def _extend_layer_batch(
        self, levels: list[tuple[int, ...]], graphs: tuple[Digraph, ...]
    ) -> list[list[tuple[int, ...]]]:
        """Tuple-world layer batch: pack, run the column kernel, unpack."""
        table = LayerTable.from_levels(self.n, levels)
        return [
            LayerTable(self.n, column).tolist()
            for column in self._extend_layer_columns(table, graphs)
        ]

    def _extend_layer_columns(
        self, table: LayerTable, graphs: tuple[Digraph, ...]
    ) -> list:
        """Dispatch one layer batch to the backend that wins at its size.

        Returns one flat view-id column per graph (``array('q')`` from the
        Python kernel, int64 numpy arrays from the vectorized one).
        """
        plan = self._alphabet_plan(graphs)
        count = len(table)
        cells = count * len(plan[0])
        if cells < _BATCH_MIN_CELLS:
            # Microscopic layers: batch bookkeeping costs more than the
            # plain per-parent loop it replaces.
            results = [
                self._extend_batch(table[i], graphs) for i in range(count)
            ]
            columns = []
            for j in range(len(graphs)):
                flat = array("q")
                for result in results:
                    flat.extend(result[j])
                columns.append(flat)
            return columns
        if (
            self.layer_backend == "numpy"
            and self.n <= _MASK_ARRAY_MAX_N
            and cells >= _NUMPY_MIN_CELLS
        ):
            workers = self._effective_workers(cells)
            if workers > 1:
                columns = self._extend_layer_numpy_mp(table, plan, workers)
                if columns is not None:
                    return columns
            return self._extend_layer_numpy(table, plan)
        return self._extend_layer_python(table, plan)

    def _effective_workers(self, cells: int) -> int:
        """Worker count actually usable for one layer dispatch.

        Resolves the interner's ``extension_workers`` knob against every
        graceful-fallback condition: layers below :data:`_MP_MIN_CELLS`,
        the :data:`_WORKER_CAP_ENV` environment cap (set to ``1`` inside
        process-pool sweep workers), and shared-memory availability.  A
        result of ``1`` means the serial kernel runs.
        """
        workers = self.extension_workers
        if workers <= 1 or cells < _MP_MIN_CELLS:
            return 1
        cap = os.environ.get(_WORKER_CAP_ENV)
        if cap is not None:
            try:
                workers = min(workers, int(cap))
            except ValueError:
                pass
        if workers <= 1:
            return 1
        from repro.core import parallel

        if not parallel.shared_memory_available():
            return 1
        return workers

    def _extend_layer_python(self, table: LayerTable, plan: tuple) -> list:
        """The batched pure-Python layer kernel.

        Same structure as the numpy backend — candidate rows dedup per
        in-neighborhood across the whole layer, views resolve at
        unique-row granularity — in plain loops over the flat layer
        column.  Small per-row key tuples are built transiently for the
        batch-local dedup dict; nothing tuple-shaped is stored or
        returned.
        """
        patterns, layouts, inlists, pats_of_inlist = plan
        n = self.n
        ids = plain_ids(table.ids)
        total = len(ids)
        depth = self._depth[ids[0]] + 1
        row_masks = self._row_masks
        node_slots = self._node_slots
        empty_row = self._empty_row
        masks = self._origin_mask
        pids = self._pid
        depth_col = self._depth
        row_col = self._row
        values = self._origin_values
        vid_arrs: list = [None] * len(patterns)
        for si, in_list in enumerate(inlists):
            k = len(in_list)
            # Column pass: candidate child row per parent, dedup in place.
            uniq_index: dict = {}
            uniq_rows: list[tuple[int, ...]] = []
            inv: list[int] = []
            uniq_setdefault = uniq_index.setdefault
            inv_append = inv.append
            uniq_append = uniq_rows.append
            if k == 1:
                q = in_list[0]
                for base in range(0, total, n):
                    kids = (ids[base + q],)
                    u = uniq_setdefault(kids, len(uniq_rows))
                    if u == len(uniq_rows):
                        uniq_append(kids)
                    inv_append(u)
            elif k == 2:
                qa, qb = in_list
                for base in range(0, total, n):
                    a = ids[base + qa]
                    b = ids[base + qb]
                    kids = (a, b) if a < b else (b, a)
                    u = uniq_setdefault(kids, len(uniq_rows))
                    if u == len(uniq_rows):
                        uniq_append(kids)
                    inv_append(u)
            elif k == n:
                for base in range(0, total, n):
                    kids = tuple(sorted(ids[base : base + n]))
                    u = uniq_setdefault(kids, len(uniq_rows))
                    if u == len(uniq_rows):
                        uniq_append(kids)
                    inv_append(u)
            else:
                for base in range(0, total, n):
                    kids = tuple(sorted([ids[base + q] for q in in_list]))
                    u = uniq_setdefault(kids, len(uniq_rows))
                    if u == len(uniq_rows):
                        uniq_append(kids)
                    inv_append(u)
            # Intern the distinct rows of this column once.  The probe
            # loop is inlined — one multiply-fold hash, linear probing,
            # arena compare on hash hits — because at deep layers most
            # distinct rows are globally fresh and per-row call overhead
            # dominates.
            urids: list[int] = []
            urids_append = urids.append
            slots = self._row_slots
            slot_mask = self._row_slot_mask
            hashes = self._row_hashes
            starts = self._row_starts
            data = self._row_data
            row_hash = _row_hash
            for kids in uniq_rows:
                h = row_hash(kids)
                idx = h & slot_mask
                while True:
                    rid = slots[idx]
                    if rid < 0:
                        rid = len(hashes)
                        data.extend(kids)
                        starts.append(len(data))
                        hashes.append(h)
                        slots[idx] = rid
                        node_slots.extend(empty_row)
                        mask = 0
                        for c in kids:
                            mask |= masks[c]
                        row_masks.append(mask)
                        if (rid + 2) * 3 >= len(slots) * 2:
                            self._row_rehash()
                            slots = self._row_slots
                            slot_mask = self._row_slot_mask
                        break
                    if hashes[rid] == h:
                        s = starts[rid]
                        if starts[rid + 1] - s == k:
                            for j in range(k):
                                if data[s + j] != kids[j]:
                                    break
                            else:
                                break
                    idx = (idx + 1) & slot_mask
                urids_append(rid)
            # Resolve (allocate) views per owner at unique-row scale.
            for pi in pats_of_inlist[si]:
                p = patterns[pi][0]
                vid_u: list[int] = []
                vid_u_append = vid_u.append
                for rid in urids:
                    slot = rid * n + p
                    vid = node_slots[slot]
                    if vid < 0:
                        vid = len(pids)
                        node_slots[slot] = vid
                        pids.append(p)
                        depth_col.append(depth)
                        row_col.append(rid)
                        masks.append(row_masks[rid])
                        values.append(None)
                    vid_u_append(vid)
                vid_arrs[pi] = array("q", [vid_u[u] for u in inv])
        # Interleave the per-pattern columns into one flat column per
        # graph: strided array-slice assignment, no per-child tuples.
        columns = []
        zeros = array("q", bytes(8 * total))
        for layout in layouts:
            out = zeros[:]
            for p, pi in enumerate(layout):
                out[p::n] = vid_arrs[pi]
            columns.append(out)
        return columns

    def _extend_layer_numpy(self, table: LayerTable, plan: tuple) -> list:
        """The vectorized layer kernel (numpy backend).

        Candidate rows of each in-neighborhood gather/sort as one int64
        matrix and dedup via ``np.unique`` on packed key columns; row
        hashes for the open-addressing probe are computed vectorized over
        the distinct rows, only the distinct rows touch the Python probe
        loop, fresh arena rows append in bulk, and view allocation happens
        in bulk on the interner's buffer-backed columns.  Views over those
        columns are strictly transient: every ``frombuffer`` window is
        dropped before the underlying array can resize.
        """
        np = _np
        level_matrix = table.array()
        depth = self._depth[int(level_matrix[0, 0])] + 1
        uniq_inv = [
            _candidate_uniq_inv(np, level_matrix, in_list)
            for in_list in plan[2]
        ]
        return self._finish_layer_numpy(np, plan, depth, uniq_inv)

    def _extend_layer_numpy_mp(
        self, table: LayerTable, plan: tuple, workers: int
    ):
        """The sharded front end of the vectorized kernel.

        Runs the per-in-neighborhood candidate dedup (the map phase of
        :meth:`_extend_layer_numpy`) across ``workers`` processes over
        shared-memory shards of the parent layer column, merges the
        per-shard dedups back into exactly the serial kernel's
        ``(uniq, inv)`` pairs, and hands them to the shared back half.
        The merge is canonical — distinct rows come back in the same
        lexicographic order regardless of shard count — so the interner
        mutations and output columns are bit-identical to the serial
        numpy kernel (see :mod:`repro.core.parallel`).

        Returns ``None`` when the map phase cannot run (shared-memory or
        pool failure); the dispatcher then falls back to the serial
        kernel, which recomputes from the untouched interner state.  The
        fallback is correct but silently serial, so it is counted
        (``stats().mp_fallbacks``) and surfaced as a ``RuntimeWarning``
        carrying the original cause — a sweep that lost its workers
        should look degraded, not healthy.
        """
        np = _np
        from repro.core import parallel

        level_matrix = np.ascontiguousarray(table.array())
        try:
            uniq_inv = parallel.map_layer_shards(
                level_matrix, plan[2], workers
            )
        except Exception as exc:
            self._mp_fallbacks += 1
            warnings.warn(
                f"sharded layer extension fell back to the serial kernel "
                f"(fallback #{self._mp_fallbacks}): "
                f"{type(exc).__name__}: {exc}",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        self._mp_dispatches += 1
        depth = self._depth[int(level_matrix[0, 0])] + 1
        return self._finish_layer_numpy(np, plan, depth, uniq_inv)

    def _finish_layer_numpy(
        self, np, plan: tuple, depth: int, uniq_inv: list
    ) -> list:
        """The reduce half of the vectorized kernel: intern and allocate.

        Consumes one ``(uniq, inv)`` candidate dedup per in-neighborhood
        — produced serially by :meth:`_extend_layer_numpy` or sharded by
        :meth:`_extend_layer_numpy_mp` — and performs every interner
        mutation: bulk row hashing, vectorized probe/insert into the row
        arena, bulk view allocation, and the final per-graph interleave.
        Identical inputs yield bit-identical interner state, which is the
        sharded path's correctness contract.
        """
        patterns, layouts, inlists, pats_of_inlist = plan
        n = self.n
        row_masks = self._row_masks
        node_slots = self._node_slots
        pids = self._pid
        depth_col = self._depth
        vid_cols: list = [None] * len(patterns)
        for si in range(len(inlists)):
            uniq, inv = uniq_inv[si]
            k = uniq.shape[1]
            # Bulk-hash the distinct rows (same fold as _row_hash), then
            # probe and insert entirely vectorized: the open-addressing
            # table is gathered through transient buffer windows, fresh
            # rows append to the arena in one contiguous copy, and slot
            # placement resolves collisions by iterated last-write-wins
            # scatter.  No per-row Python at all.
            hashes = _bulk_row_hashes(np, uniq, k)
            urid_arr, fresh_rows = self._intern_rows_numpy(np, uniq, hashes, k)
            if len(fresh_rows):
                mask_view = np.frombuffer(self._origin_mask, dtype=np.int64)
                fresh_masks = np.bitwise_or.reduce(
                    mask_view[uniq[fresh_rows]].reshape(len(fresh_rows), k),
                    axis=1,
                )
                del mask_view
                node_slots.extend(self._empty_row * len(fresh_rows))
                row_masks.frombytes(fresh_masks.tobytes())
            for pi in pats_of_inlist[si]:
                p = patterns[pi][0]
                cand_slots = urid_arr * n + p
                slot_view = np.frombuffer(node_slots, dtype=np.int64)
                vid_u = slot_view[cand_slots]
                del slot_view
                missing = np.flatnonzero(vid_u < 0)
                if len(missing):
                    count_missing = len(missing)
                    base = len(pids)
                    new_vids = np.arange(
                        base, base + count_missing, dtype=np.int64
                    )
                    missing_rids = urid_arr[missing]
                    pids.extend([p] * count_missing)
                    depth_col.extend([depth] * count_missing)
                    self._row.frombytes(missing_rids.tobytes())
                    row_mask_view = np.frombuffer(row_masks, dtype=np.int64)
                    self._origin_mask.frombytes(
                        row_mask_view[missing_rids].tobytes()
                    )
                    del row_mask_view
                    self._origin_values.extend([None] * count_missing)
                    slot_view = np.frombuffer(node_slots, dtype=np.int64)
                    slot_view[cand_slots[missing]] = new_vids
                    del slot_view
                    vid_u[missing] = new_vids
                vid_cols[pi] = vid_u[inv]
        # Interleave per-pattern columns into one flat int64 column per
        # graph — a stack/ravel, no per-child tuples and no tolist().
        return [
            np.stack([vid_cols[pi] for pi in layout], axis=1).reshape(-1)
            for layout in layouts
        ]

    def _check_pid(self, p: int) -> None:
        if not 0 <= p < self.n:
            raise AnalysisError(f"process id {p} outside 0..{self.n - 1}")

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    def pid(self, vid: int) -> int:
        """The process that owns view ``vid``."""
        return self._pid[vid]

    def depth(self, vid: int) -> int:
        """The time (round number) at which view ``vid`` is taken."""
        return self._depth[vid]

    def is_leaf(self, vid: int) -> bool:
        """Whether ``vid`` is a time-0 view."""
        return self._depth[vid] == 0

    def leaf_value(self, vid: int):
        """The input value of a time-0 view."""
        if not self.is_leaf(vid):
            raise AnalysisError(f"view {vid} is not a leaf")
        return self._leaf_values[self._row[vid]]

    def children(self, vid: int) -> frozenset[int]:
        """The previous-round views visible in ``vid`` (empty for leaves)."""
        if self.is_leaf(vid):
            return frozenset()
        rid = self._row[vid]
        starts = self._row_starts
        return frozenset(self._row_data[starts[rid] : starts[rid + 1]])

    def child_row(self, vid: int) -> tuple[int, ...]:
        """The sorted interned child tuple of a non-leaf view."""
        if self.is_leaf(vid):
            raise AnalysisError(f"view {vid} is a leaf and has no child row")
        return self._row_tuple(self._row[vid])

    def origin_mask(self, vid: int) -> int:
        """Bitmask of processes whose initial node lies in the causal past."""
        return self._origin_mask[vid]

    def origins(self, vid: int) -> tuple:
        """Sorted tuple of ``(q, x_q)`` pairs visible in the causal past."""
        cached = self._origin_values[vid]
        if cached is None:
            cached = self._force_origins(vid)
        return cached

    def _force_origins(self, vid: int) -> tuple:
        """Materialize lazily-deferred origin values (fast-path views only).

        Views created through :meth:`extend_level` defer the value merge;
        their children are mutually consistent by construction, so a plain
        union suffices.
        """
        values = self._origin_values
        row_data = self._row_data
        row_starts = self._row_starts
        row_col = self._row
        merged: dict[int, object] = {}
        stack = [vid]
        seen = {vid}
        pending: list[int] = []
        while stack:
            current = stack.pop()
            if values[current] is None:
                pending.append(current)
                rid = row_col[current]
                for child in row_data[row_starts[rid] : row_starts[rid + 1]]:
                    if child not in seen:
                        seen.add(child)
                        stack.append(child)
            else:
                merged.update(values[current])
        # Fill in post-order so deeper views are cached too.
        for current in reversed(pending):
            mask = self._origin_mask[current]
            entry = tuple(
                (q, merged[q]) for q in range(self.n) if mask >> q & 1
            )
            values[current] = entry
        return values[vid]

    def knows_input_of(self, vid: int, q: int) -> bool:
        """Whether the causal past of ``vid`` contains ``(q, 0, x_q)``."""
        return bool(self._origin_mask[vid] >> q & 1)

    def input_of(self, vid: int, q: int):
        """The input value of ``q`` as recorded in the causal past of ``vid``."""
        for owner, value in self.origins(vid):
            if owner == q:
                return value
        raise AnalysisError(f"view {vid} has not heard of process {q}")

    def stats(self) -> ViewStats:
        """Summary statistics and table geometry of the interner's contents."""
        total = len(self._pid)
        max_depth = max(self._depth) if total else 0
        getsizeof = sys.getsizeof
        approx = (
            getsizeof(self._pid)
            + getsizeof(self._depth)
            + getsizeof(self._row)
            + getsizeof(self._origin_mask)
            + getsizeof(self._origin_values)
            + getsizeof(self._leaf_table)
            + getsizeof(self._leaf_values)
            + getsizeof(self._node_slots)
            + getsizeof(self._row_data)
            + getsizeof(self._row_starts)
            + getsizeof(self._row_hashes)
            + getsizeof(self._row_slots)
            + getsizeof(self._row_masks)
            + getsizeof(self._level_table)
            + getsizeof(self._graph_ids)
            + getsizeof(self._ext_cache)
        )
        # Interned level tuples of the memo path and the forced
        # origin-value tuples; child ids live flat in the arena (already
        # counted above) and shared small ints are not charged.
        tuple_header = getsizeof(())
        for lvl in self._level_table:
            approx += tuple_header + 8 * len(lvl)
        for entry in self._origin_values:
            if entry is not None:
                approx += tuple_header + len(entry) * (tuple_header + 16)
        # The per-alphabet extension plans: graphs-tuple keys plus the
        # pattern/layout/in-list structures (an LRU capped at
        # ``plan_cache_size``; the stats report the live entries).
        approx += getsizeof(self._plan_cache)
        for key, (patterns, layouts, inlists, pats) in self._plan_cache.items():
            approx += tuple_header + 8 * len(key)
            for _, in_list in patterns:
                approx += 2 * tuple_header + 16 + 8 * len(in_list)
            for layout in layouts:
                approx += getsizeof(layout)
            for in_list in inlists:
                approx += tuple_header + 8 * len(in_list)
            for pis in pats:
                approx += tuple_header + 8 * len(pis)
        return ViewStats(
            total,
            self._leaf_count,
            max_depth,
            rows=len(self._row_hashes),
            cached_extensions=len(self._ext_cache),
            cached_plans=len(self._plan_cache),
            approx_bytes=approx,
            mp_fallbacks=self._mp_fallbacks,
        )

    def __len__(self) -> int:
        return len(self._pid)

    # ------------------------------------------------------------------ #
    # Causal-cone reconstruction (used by viz and by the test suite)
    # ------------------------------------------------------------------ #

    def cone(self, vid: int) -> tuple[set, set]:
        """The causal past of ``vid`` as explicit process-time nodes/edges.

        Returns ``(nodes, edges)`` where nodes are ``(q, s)`` pairs (``s`` the
        time coordinate, with ``s = 0`` nodes standing for ``(q, 0, x_q)``)
        and edges are ``((q, s), (r, s + 1))`` pairs.  The apex is
        ``(pid(vid), depth(vid))``.
        """
        nodes: set = set()
        edges: set = set()
        seen: set[int] = set()
        stack = [vid]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            p, d = self._pid[current], self._depth[current]
            nodes.add((p, d))
            for child in self.children(current):
                edges.add(((self._pid[child], d - 1), (p, d)))
                stack.append(child)
        return nodes, edges
