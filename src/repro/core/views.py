"""Interned full-information views (local causal pasts).

The paper reasons about the *view* ``V_{p}(PT^t)`` of a process ``p`` in a
process-time graph: the causal past of the node ``(p, t)``, i.e. the subgraph
of all process-time nodes with a path to ``(p, t)`` (Section 4, Figure 2).

For full-information protocols the causal past admits an equivalent recursive
representation, which is what this module implements:

* at time 0, the view of ``p`` is the leaf ``(p, x_p)``;
* at time ``t >= 1``, the view of ``p`` is ``(p, {view(q, t-1) : q ∈
  In_{G_t}(p)})`` where the in-neighborhood includes ``p`` itself.

Because every sub-view records its owner, the recursive representation and
the causal-past subgraph determine each other (a fact the test suite checks
by brute force).  Views are *hash-consed* through :class:`ViewInterner`:
structurally equal views receive the same integer id, so the view-equality
tests that underlie every distance function in the paper become integer
comparisons.

Array-backed view tables
------------------------
The interner is columnar: per view id, parallel ``array`` columns hold the
owner (``_pid``), the depth (``_depth``), the origin bitmask
(``_origin_mask``), and a *row id* (``_row``) that indexes one of two side
tables — the leaf payload list for time-0 views, or the interned *child-row
table* for later views.  Child sets (sorted tuples of view ids) are
hash-consed once in the row table, so the per-view key of the node lookup
collapses to the compact integer ``row_id * n + p`` — and because row ids
are allocated consecutively, those keys are dense and the node "table" is a
flat slot array indexed directly, no hashing at all.  The ``(level, graph)``
extension cache of the prefix-space hot path is likewise keyed by compact
integers: levels and graphs get small ids, the memo key is
``level_id << 32 | graph_id``.

The interner also maintains, per view, the bitmask of processes whose
*initial* node ``(q, 0, x_q)`` occurs in the causal past, together with the
observed input values.  This is precisely the information needed to decide
broadcastability (Definition 5.8): ``p`` has broadcast in a prefix iff the
bit of ``p`` is set in every process's view mask.

The whole-layer extension kernel
--------------------------------
:meth:`ViewInterner.extend_layer` interns the successors of an *entire*
prefix-space layer in one call, instead of paying Python dispatch, tuple
allocation, and dict probes per parent.  The kernel deduplicates parent
levels, then works per distinct *in-neighborhood* of the alphabet (child
rows depend on the in-list only, never on the owner): it builds every
candidate child row of the layer, deduplicates rows across all parents at
once, interns each distinct row a single time, and allocates new views at
unique-row granularity.  Two backends implement the batch:

* ``"numpy"`` — columns of the layer become one int64 matrix; candidate
  rows are gathered/sorted/uniqued as packed key columns and view slots
  resolve through vectorized gathers over the interner's buffer-backed
  columns.  Selected by default when numpy imports (set
  ``REPRO_PURE_PYTHON=1`` to veto at import time).
* ``"python"`` — the same batched structure in pure Python, so
  ``dependencies = []`` stays true and the kernel is always available.

Both backends produce structurally identical views over the same shared
row table, so they may be mixed freely with the per-parent
:meth:`ViewInterner.extend_level_multi` path on one interner; only the
view-id *numbering* may differ between backends.
"""

from __future__ import annotations

import os
import sys
from array import array
from typing import Iterable, Sequence

from repro.core.digraph import Digraph
from repro.errors import AnalysisError

try:  # Optional acceleration; REPRO_PURE_PYTHON=1 forces the fallback.
    if os.environ.get("REPRO_PURE_PYTHON"):
        _np = None
    else:
        import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

__all__ = [
    "ViewInterner",
    "ViewStats",
    "LAYER_BACKENDS",
    "DEFAULT_LAYER_BACKEND",
    "numpy_available",
]

#: Origin masks are stored in a signed-64-bit array column when they fit;
#: interners on more processes fall back to a plain list column.
_MASK_ARRAY_MAX_N = 62

#: The layer-kernel backends an interner can run on.
LAYER_BACKENDS = ("numpy", "python")

#: Backend used when a :class:`ViewInterner` is built without an explicit
#: choice: ``"numpy"`` when numpy imported at module load, else ``"python"``.
DEFAULT_LAYER_BACKEND = "python" if _np is None else "numpy"

#: Below this many (parent, pattern) cells the numpy batch is not worth its
#: fixed per-call overhead; tiny layers stay on the pure-Python kernel.
_NUMPY_MIN_CELLS = 192

#: Below this many cells even the batched Python kernel loses to the plain
#: per-parent loop (batch bookkeeping dominates microscopic layers).
_BATCH_MIN_CELLS = 48


def numpy_available() -> bool:
    """Whether the numpy layer-kernel backend can be selected."""
    return _np is not None


class ViewStats:
    """A small report on the contents of a :class:`ViewInterner`.

    Beyond the view counts, the stats expose the table geometry that the
    benchmarks and the CLI use to watch interner pressure: ``rows`` is the
    number of distinct interned child sets, ``cached_extensions`` the number
    of memoized ``(level, graph)`` extensions, ``cached_plans`` the number
    of per-alphabet extension plans held (one per distinct graphs-tuple
    ever extended — never evicted, so long-lived sessions can watch it
    here), and ``approx_bytes`` an estimate of the resident size of all
    tables (columns, side tables, cache and plan keys; Python object
    headers of shared children are not counted).
    """

    __slots__ = (
        "total",
        "leaves",
        "max_depth",
        "rows",
        "cached_extensions",
        "cached_plans",
        "approx_bytes",
    )

    def __init__(
        self,
        total: int,
        leaves: int,
        max_depth: int,
        rows: int = 0,
        cached_extensions: int = 0,
        approx_bytes: int = 0,
        cached_plans: int = 0,
    ) -> None:
        self.total = total
        self.leaves = leaves
        self.max_depth = max_depth
        self.rows = rows
        self.cached_extensions = cached_extensions
        self.cached_plans = cached_plans
        self.approx_bytes = approx_bytes

    def __repr__(self) -> str:
        return (
            f"ViewStats(total={self.total}, leaves={self.leaves}, "
            f"max_depth={self.max_depth}, rows={self.rows}, "
            f"cached_extensions={self.cached_extensions}, "
            f"cached_plans={self.cached_plans}, "
            f"approx_bytes={self.approx_bytes})"
        )


class ViewInterner:
    """Hash-consing store for full-information views of an ``n``-process system.

    All prefixes participating in one analysis must share one interner; view
    ids are only comparable within the interner that produced them.  Because
    views depend only on inputs and in-neighborhoods — never on the
    adversary that generated a prefix — one interner may also be shared
    *across* adversaries of the same ``n``, which is how the sweep engine
    reuses view tables between jobs of one shard.

    ``layer_backend`` selects the whole-layer extension kernel backend:
    ``"numpy"`` (vectorized; requires numpy), ``"python"`` (the batched
    pure-Python fallback), or ``None`` for the import-time default
    (:data:`DEFAULT_LAYER_BACKEND`).  The choice affects speed and view-id
    numbering only, never the interned structure.

    Examples
    --------
    >>> interner = ViewInterner(2)
    >>> a = interner.leaf(0, 1)
    >>> b = interner.leaf(0, 1)
    >>> a == b
    True
    """

    __slots__ = (
        "n",
        "layer_backend",
        "_pid",
        "_depth",
        "_row",
        "_origin_mask",
        "_origin_values",
        "_leaf_table",
        "_leaf_values",
        "_node_slots",
        "_empty_row",
        "_rows",
        "_row_table",
        "_row_masks",
        "_leaf_count",
        "_level_table",
        "_graph_ids",
        "_ext_cache",
        "_plan_cache",
    )

    def __init__(self, n: int, layer_backend: str | None = None) -> None:
        if n <= 0:
            raise AnalysisError("a view interner needs n >= 1 processes")
        if layer_backend is None:
            layer_backend = DEFAULT_LAYER_BACKEND
        if layer_backend not in LAYER_BACKENDS:
            raise AnalysisError(
                f"unknown layer backend {layer_backend!r}; "
                f"choose from {LAYER_BACKENDS}"
            )
        if layer_backend == "numpy" and _np is None:
            raise AnalysisError(
                "layer backend 'numpy' requested but numpy is not importable "
                "(install numpy or pick the 'python' backend)"
            )
        self.layer_backend = layer_backend
        self.n = n
        # Parallel per-view columns.  Owners and depths are plain lists of
        # (interpreter-shared) small ints — same 8 bytes per slot as an
        # array, faster appends; row ids grow unbounded, so that column is
        # a machine-integer array, as are the origin masks while they fit.
        self._pid: list[int] = []
        self._depth: list[int] = []
        self._row = array("q")
        self._origin_mask = array("q") if n <= _MASK_ARRAY_MAX_N else []
        self._origin_values: list = []
        # Leaf side table: (p, value) -> vid, plus payload storage.
        self._leaf_table: dict = {}
        self._leaf_values: list = []
        # Node side tables: interned child rows and the dense slot column
        # ``row_id * n + p -> vid`` (-1 = not yet interned).  Keys are dense
        # because row ids are allocated consecutively, so the "table" is a
        # flat array indexed directly instead of a hashed dict.
        self._node_slots = array("q")
        self._empty_row = array("q", [-1]) * n
        self._rows: list[tuple[int, ...]] = []
        self._row_table: dict[tuple[int, ...], int] = {}
        # Per-row origin-mask cache: a view's mask is the union of its
        # children's masks, which depends on the row only — never on the
        # owner — so views sharing a row skip the fold.  Machine-int array
        # while masks fit so the numpy kernel can gather it by buffer.
        self._row_masks = array("q") if n <= _MASK_ARRAY_MAX_N else []
        self._leaf_count = 0
        # (level, graph) extension memo, keyed ``level_id << 32 | graph_id``.
        self._level_table: dict[tuple[int, ...], int] = {}
        self._graph_ids: dict[Digraph, int] = {}
        self._ext_cache: dict[int, tuple[int, ...]] = {}
        # Per-alphabet extension plan: distinct (p, in-neighborhood)
        # patterns in first-occurrence order + per-graph assembly layouts.
        self._plan_cache: dict[tuple, tuple] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def leaf(self, p: int, value) -> int:
        """Intern the time-0 view ``(p, value)`` and return its id."""
        self._check_pid(p)
        key = (p, value)
        vid = self._leaf_table.get(key)
        if vid is None:
            vid = len(self._pid)
            self._leaf_table[key] = vid
            self._pid.append(p)
            self._depth.append(0)
            self._row.append(len(self._leaf_values))
            self._leaf_values.append(value)
            self._origin_mask.append(1 << p)
            self._origin_values.append(((p, value),))
            self._leaf_count += 1
        return vid

    def node(self, p: int, children: Iterable[int]) -> int:
        """Intern the view of ``p`` whose in-neighborhood saw ``children``.

        ``children`` are the ids of the previous-round views of ``p``'s
        in-neighbors (including ``p`` itself); they must all have the same
        depth.
        """
        self._check_pid(p)
        kids = tuple(sorted(set(children)))
        if not kids:
            raise AnalysisError("a non-leaf view needs at least its own previous view")
        rid = self._row_table.get(kids)
        if rid is not None:
            vid = self._node_slots[rid * self.n + p]
            if vid >= 0:
                return vid
        # Validate *before* interning the row, so a rejected call leaves no
        # phantom row behind in the tables (or the stats).
        depths = {self._depth[c] for c in kids}
        if len(depths) != 1:
            raise AnalysisError(f"children of a view must share a depth, got {sorted(depths)}")
        mask = 0
        values: dict[int, object] = {}
        for c in kids:
            mask |= self._origin_mask[c]
            for q, value in self.origins(c):
                previous = values.setdefault(q, value)
                if previous != value:
                    raise AnalysisError(
                        f"inconsistent input values for process {q}: {previous!r} vs {value!r}"
                    )
        if rid is None:
            rid = len(self._rows)
            self._row_table[kids] = rid
            self._rows.append(kids)
            self._node_slots.extend(self._empty_row)
            self._row_masks.append(mask)
        vid = len(self._pid)
        self._node_slots[rid * self.n + p] = vid
        self._pid.append(p)
        self._depth.append(depths.pop() + 1)
        self._row.append(rid)
        self._origin_mask.append(mask)
        self._origin_values.append(
            tuple(sorted(values.items(), key=lambda kv: kv[0]))
        )
        return vid

    def leaf_level(self, inputs: Sequence) -> tuple[int, ...]:
        """Intern the whole time-0 level ``(leaf(0, x_0), ..., leaf(n-1, x_{n-1}))``."""
        if len(inputs) != self.n:
            raise AnalysisError(
                f"assignment of length {len(inputs)} for n={self.n} interner"
            )
        leaf_table = self._leaf_table
        leaf_table_get = leaf_table.get
        pids = self._pid
        leaf_values = self._leaf_values
        level = []
        for p, value in enumerate(inputs):
            key = (p, value)
            vid = leaf_table_get(key)
            if vid is None:
                vid = len(pids)
                leaf_table[key] = vid
                pids.append(p)
                self._depth.append(0)
                self._row.append(len(leaf_values))
                leaf_values.append(value)
                self._origin_mask.append(1 << p)
                self._origin_values.append(((p, value),))
                self._leaf_count += 1
            level.append(vid)
        return tuple(level)

    def extend_level(self, level: tuple[int, ...], graph: Digraph) -> tuple[int, ...]:
        """One synchronous round: the views of all processes after ``graph``.

        ``level`` must be the full view-id tuple of one prefix at some time
        ``t`` (so the children of each new view are mutually consistent by
        construction); the result is the level at time ``t + 1``.  Results
        are memoized per ``(level, graph)`` in the compact-integer extension
        cache, and origin *values* of the new views are materialized lazily
        (only :meth:`origins` and :meth:`input_of` force them) — the
        prefix-space hot path needs only the origin masks.
        """
        return self.extend_level_multi(level, (graph,), memo=True)[0]

    def extend_level_multi(
        self,
        level: tuple[int, ...],
        graphs: Sequence[Digraph],
        memo: bool = False,
    ) -> list[tuple[int, ...]]:
        """Extend one level by every graph of an alphabet in a single pass.

        Equivalent to ``[self.extend_level(level, g) for g in graphs]`` but
        shares the per-``(p, in-neighborhood)`` work across graphs: alphabets
        typically repeat in-rows (e.g. every graph in which ``p`` hears
        everyone produces the same view of ``p``), so each distinct row is
        interned once.  This is the inner loop of prefix-space layer
        construction.

        With ``memo=True`` every ``(level, graph)`` result is stored in (and
        served from) the extension cache, so repeated extensions — across
        prefix spaces sharing this interner, as in the sweep engine — are a
        single dict lookup.  The cache grows by one entry per distinct
        extension; streaming/evicting spaces leave ``memo`` off to keep
        depth-10+ runs frontier-bounded.
        """
        if memo:
            level_table = self._level_table
            level_id = level_table.get(level)
            if level_id is None:
                level_id = len(level_table)
                level_table[level] = level_id
            graph_ids = self._graph_ids
            ext_cache = self._ext_cache
            base = level_id << 32
            results: list = []
            missing: list[tuple[int, Digraph, int]] = []
            for i, graph in enumerate(graphs):
                gid = graph_ids.get(graph)
                if gid is None:
                    gid = len(graph_ids)
                    graph_ids[graph] = gid
                key = base | gid
                cached = ext_cache.get(key)
                results.append(cached)
                if cached is None:
                    missing.append((i, graph, key))
            if not missing:
                return results
            fresh = self._extend_batch(level, [graph for _, graph, _ in missing])
            for (i, _, key), out in zip(missing, fresh):
                ext_cache[key] = out
                results[i] = out
            return results
        return self._extend_batch(level, graphs)

    def _alphabet_plan(self, graphs: Sequence[Digraph]) -> tuple:
        """The distinct ``(p, in-neighborhood)`` patterns of an alphabet.

        Alphabets repeat in-rows across their graphs (e.g. every graph in
        which ``p`` hears everyone shares a row); which rows coincide is a
        property of the *alphabet alone*, so the dedup is hoisted out of
        the per-parent hot loop and cached per graphs-tuple.  Returns
        ``(patterns, layouts, inlists, pats_of_inlist)``: the distinct
        patterns in first-occurrence order, per graph the pattern indices
        assembling its level, the distinct in-neighborhoods of the
        patterns, and per in-neighborhood the indices of the patterns it
        serves — the layer kernels share candidate-row work across owners
        through the last two.

        The cache holds one entry per distinct graphs-tuple ever extended —
        the adversary alphabets plus, on the memo path, their partial-miss
        subsets.  Real families use a handful of alphabets, so the cache
        stays small; it is not evicted, and :class:`ViewStats` reports its
        size as ``cached_plans``.
        """
        key = tuple(graphs)
        plan = self._plan_cache.get(key)
        if plan is None:
            patterns: list[tuple[int, tuple[int, ...]]] = []
            index_of: dict = {}
            layouts = []
            for graph in key:
                layout = []
                for p, in_list in enumerate(graph.in_neighbor_lists):
                    pattern = (p, in_list)
                    i = index_of.get(pattern)
                    if i is None:
                        i = len(patterns)
                        index_of[pattern] = i
                        patterns.append(pattern)
                    layout.append(i)
                layouts.append(layout)
            # Child rows depend on the in-neighborhood only, never on the
            # owner: group patterns by in-list so the layer kernels build
            # and dedup each candidate-row column once per in-list.
            inlist_index: dict = {}
            inlists: list[tuple[int, ...]] = []
            pats_of_inlist: list[list[int]] = []
            for pi, (_, in_list) in enumerate(patterns):
                s = inlist_index.get(in_list)
                if s is None:
                    s = inlist_index[in_list] = len(inlists)
                    inlists.append(in_list)
                    pats_of_inlist.append([])
                pats_of_inlist[s].append(pi)
            plan = (
                patterns,
                layouts,
                tuple(inlists),
                tuple(tuple(pis) for pis in pats_of_inlist),
            )
            self._plan_cache[key] = plan
        return plan

    def _extend_batch(
        self, level: tuple[int, ...], graphs: Sequence[Digraph]
    ) -> list[tuple[int, ...]]:
        """Uncached batched extension (the per-parent columnar hot loop)."""
        patterns, layouts, _, _ = self._alphabet_plan(graphs)
        node_slots = self._node_slots
        slots_extend = node_slots.extend
        empty_row = self._empty_row
        row_setdefault = self._row_table.setdefault
        rows = self._rows
        rows_append = self._rows.append
        row_masks = self._row_masks
        row_masks_append = row_masks.append
        pids = self._pid
        pids_append = pids.append
        depths_append = self._depth.append
        row_col_append = self._row.append
        masks = self._origin_mask
        masks_append = masks.append
        values_append = self._origin_values.append
        depth = self._depth[level[0]] + 1
        n = self.n
        sorted_level: tuple[int, ...] | None = None
        vids = []
        vids_append = vids.append
        for p, in_list in patterns:
            size = len(in_list)
            if size == 2:
                a = level[in_list[0]]
                b = level[in_list[1]]
                kids = (a, b) if a < b else (b, a)
            elif size == 1:
                kids = (level[in_list[0]],)
            elif size == n:
                # Dense row: every pattern in which p hears everyone
                # shares the sorted full level.
                if sorted_level is None:
                    sorted_level = tuple(sorted(level))
                kids = sorted_level
            else:
                kids = tuple(sorted([level[q] for q in in_list]))
            nrows = len(rows)
            rid = row_setdefault(kids, nrows)
            if rid == nrows:
                # Fresh row: the view cannot exist yet — allocate row and
                # view without re-reading the slot, folding the row mask
                # once for every future owner.
                rows_append(kids)
                slots_extend(empty_row)
                mask = 0
                for c in kids:
                    mask |= masks[c]
                row_masks_append(mask)
                vid = len(pids)
                node_slots[rid * n + p] = vid
                pids_append(p)
                depths_append(depth)
                row_col_append(rid)
                masks_append(mask)
                values_append(None)
            else:
                slot = rid * n + p
                vid = node_slots[slot]
                if vid < 0:
                    # Every row-creation path stores the row mask, so a
                    # known row always has its mask on hand.
                    mask = row_masks[rid]
                    vid = len(pids)
                    node_slots[slot] = vid
                    pids_append(p)
                    depths_append(depth)
                    row_col_append(rid)
                    masks_append(mask)
                    values_append(None)
            vids_append(vid)
        return [tuple([vids[i] for i in layout]) for layout in layouts]

    # ------------------------------------------------------------------ #
    # The whole-layer extension kernel
    # ------------------------------------------------------------------ #

    def extend_layer(
        self,
        levels: Sequence[tuple[int, ...]],
        graphs: Sequence[Digraph],
        memo: bool = False,
    ) -> list[list[tuple[int, ...]]]:
        """Intern the successors of an entire layer in one batched call.

        ``levels`` are full view-id levels of one common depth (one per
        parent prefix); ``graphs`` the alphabet to extend every parent by.
        Returns one list per graph, aligned with ``levels``:
        ``result[j][i]`` is ``levels[i]`` extended by ``graphs[j]`` —
        element-wise equal to per-parent
        ``extend_level_multi(levels[i], graphs)`` calls, but the batch
        deduplicates parent levels, builds and dedups every candidate
        child row of the layer per distinct in-neighborhood, interns each
        distinct row once, and allocates new views at unique-row
        granularity.  The backend (numpy or pure Python) follows
        ``self.layer_backend``; tiny layers always run the Python kernel.

        With ``memo=True`` results are served from — and stored into —
        the same ``(level, graph)`` extension cache as
        :meth:`extend_level`, so spaces sharing this interner reuse
        whole-layer work across calls and across the per-parent path.

        Levels must be full (length ``n``) view-id tuples of one common
        depth, as produced by :meth:`leaf_level` or a previous extension;
        this hot-path contract is checked only cheaply.  Duplicate levels
        are fine: candidate rows dedup across the whole batch anyway.
        """
        graphs = tuple(graphs)
        if not graphs:
            return []
        levels = [
            level if type(level) is tuple else tuple(level) for level in levels
        ]
        if not levels:
            return [[] for _ in graphs]
        if len(levels[0]) != self.n:
            raise AnalysisError(
                f"level of length {len(levels[0])} for n={self.n} interner"
            )
        if memo:
            return self._extend_layer_memo(levels, graphs)
        return self._extend_layer_batch(levels, graphs)

    def _extend_layer_memo(
        self, levels: list[tuple[int, ...]], graphs: tuple[Digraph, ...]
    ) -> list[list[tuple[int, ...]]]:
        """Layer batch through the ``(level, graph)`` extension cache.

        Only levels with at least one uncached ``(level, graph)`` pair
        enter the batch; its results are stored per pair, so later layers,
        other spaces, and the per-parent memo path all hit the same cache.
        """
        level_table = self._level_table
        graph_ids = self._graph_ids
        ext_cache = self._ext_cache
        gids = []
        for graph in graphs:
            gid = graph_ids.get(graph)
            if gid is None:
                gid = len(graph_ids)
                graph_ids[graph] = gid
            gids.append(gid)
        bases = []
        missing: list[int] = []
        seen_missing: set[int] = set()
        for u, level in enumerate(levels):
            lid = level_table.get(level)
            if lid is None:
                lid = len(level_table)
                level_table[level] = lid
            base = lid << 32
            bases.append(base)
            if base not in seen_missing and any(
                base | gid not in ext_cache for gid in gids
            ):
                seen_missing.add(base)
                missing.append(u)
        if missing:
            if len(missing) == len(levels):
                fresh = self._extend_layer_batch(levels, graphs)
            else:
                fresh = self._extend_layer_batch(
                    [levels[u] for u in missing], graphs
                )
            for j, gid in enumerate(gids):
                column = fresh[j]
                for mi, u in enumerate(missing):
                    ext_cache.setdefault(bases[u] | gid, column[mi])
        return [[ext_cache[base | gid] for base in bases] for gid in gids]

    def _extend_layer_batch(
        self, levels: list[tuple[int, ...]], graphs: tuple[Digraph, ...]
    ) -> list[list[tuple[int, ...]]]:
        """Dispatch one layer batch to the backend that wins at its size."""
        plan = self._alphabet_plan(graphs)
        cells = len(levels) * len(plan[0])
        if cells < _BATCH_MIN_CELLS:
            # Microscopic layers: batch bookkeeping costs more than the
            # plain per-parent loop it replaces.
            results = [self._extend_batch(level, graphs) for level in levels]
            return [list(column) for column in zip(*results)]
        if (
            self.layer_backend == "numpy"
            and self.n <= _MASK_ARRAY_MAX_N
            and cells >= _NUMPY_MIN_CELLS
        ):
            return self._extend_layer_numpy(levels, plan)
        return self._extend_layer_python(levels, plan)

    def _extend_layer_python(
        self, levels: list[tuple[int, ...]], plan: tuple
    ) -> list[list[tuple[int, ...]]]:
        """The batched pure-Python layer kernel.

        Same structure as the numpy backend — candidate rows dedup per
        in-neighborhood across the whole layer, views resolve at
        unique-row granularity — in plain loops.
        """
        patterns, layouts, inlists, pats_of_inlist = plan
        n = self.n
        depth = self._depth[levels[0][0]] + 1
        rows = self._rows
        row_table = self._row_table
        row_masks = self._row_masks
        node_slots = self._node_slots
        empty_row = self._empty_row
        masks = self._origin_mask
        pids = self._pid
        depth_col = self._depth
        row_col = self._row
        values = self._origin_values
        vid_cols: list = [None] * len(patterns)
        for si, in_list in enumerate(inlists):
            k = len(in_list)
            # Column pass: candidate child row per parent, dedup in place.
            uniq_index: dict = {}
            uniq_rows: list[tuple[int, ...]] = []
            inv: list[int] = []
            uniq_setdefault = uniq_index.setdefault
            inv_append = inv.append
            uniq_append = uniq_rows.append
            if k == 1:
                q = in_list[0]
                for level in levels:
                    kids = (level[q],)
                    u = uniq_setdefault(kids, len(uniq_rows))
                    if u == len(uniq_rows):
                        uniq_append(kids)
                    inv_append(u)
            elif k == 2:
                qa, qb = in_list
                for level in levels:
                    a = level[qa]
                    b = level[qb]
                    kids = (a, b) if a < b else (b, a)
                    u = uniq_setdefault(kids, len(uniq_rows))
                    if u == len(uniq_rows):
                        uniq_append(kids)
                    inv_append(u)
            elif k == n:
                for level in levels:
                    kids = tuple(sorted(level))
                    u = uniq_setdefault(kids, len(uniq_rows))
                    if u == len(uniq_rows):
                        uniq_append(kids)
                    inv_append(u)
            else:
                for level in levels:
                    kids = tuple(sorted([level[q] for q in in_list]))
                    u = uniq_setdefault(kids, len(uniq_rows))
                    if u == len(uniq_rows):
                        uniq_append(kids)
                    inv_append(u)
            # Intern the distinct rows of this column once.
            urids: list[int] = []
            urids_append = urids.append
            row_setdefault = row_table.setdefault
            for kids in uniq_rows:
                nrows = len(rows)
                rid = row_setdefault(kids, nrows)
                if rid == nrows:
                    rows.append(kids)
                    node_slots.extend(empty_row)
                    mask = 0
                    for c in kids:
                        mask |= masks[c]
                    row_masks.append(mask)
                urids_append(rid)
            # Resolve (allocate) views per owner at unique-row scale.
            for pi in pats_of_inlist[si]:
                p = patterns[pi][0]
                vid_u: list[int] = []
                vid_u_append = vid_u.append
                for rid in urids:
                    slot = rid * n + p
                    vid = node_slots[slot]
                    if vid < 0:
                        vid = len(pids)
                        node_slots[slot] = vid
                        pids.append(p)
                        depth_col.append(depth)
                        row_col.append(rid)
                        masks.append(row_masks[rid])
                        values.append(None)
                    vid_u_append(vid)
                vid_cols[pi] = [vid_u[u] for u in inv]
        return [
            list(zip(*[vid_cols[pi] for pi in layout])) for layout in layouts
        ]

    def _extend_layer_numpy(
        self, levels: list[tuple[int, ...]], plan: tuple
    ) -> list[list[tuple[int, ...]]]:
        """The vectorized layer kernel (numpy backend).

        Candidate rows of each in-neighborhood gather/sort as one int64
        matrix and dedup via ``np.unique`` on packed key columns; only the
        distinct rows touch the Python row table, and view allocation
        happens in bulk on the interner's buffer-backed columns.  Views
        over those columns are strictly transient: every ``frombuffer``
        window is dropped before the underlying array can resize.
        """
        np = _np
        patterns, layouts, inlists, pats_of_inlist = plan
        n = self.n
        depth = self._depth[levels[0][0]] + 1
        rows = self._rows
        row_table = self._row_table
        row_masks = self._row_masks
        node_slots = self._node_slots
        pids = self._pid
        depth_col = self._depth
        level_matrix = np.array(levels, dtype=np.int64)
        vid_cols: list = [None] * len(patterns)
        for si, in_list in enumerate(inlists):
            k = len(in_list)
            cand = level_matrix[:, in_list]
            if k > 1:
                cand.sort(axis=1)
                max_id = int(cand[:, -1].max())
                bits = max(1, max_id.bit_length())
                if k * bits <= 63:
                    # Pack each sorted row into one int64 key: unique on
                    # 1-D ints is far cheaper than row-wise unique.
                    keys = cand[:, 0]
                    for c in range(1, k):
                        keys = (keys << bits) | cand[:, c]
                    _, first_idx, inv = np.unique(
                        keys, return_index=True, return_inverse=True
                    )
                    uniq = cand[first_idx]
                else:
                    uniq, inv = np.unique(cand, axis=0, return_inverse=True)
            else:
                _, first_idx, inv = np.unique(
                    cand[:, 0], return_index=True, return_inverse=True
                )
                uniq = cand[first_idx]
            # Intern the distinct rows; only fresh rows pay Python work.
            count = len(uniq)
            urids: list[int] = [0] * count
            fresh: list[int] = []
            nrows = len(rows)
            rows_append = rows.append
            row_setdefault = row_table.setdefault
            fresh_append = fresh.append
            if k > 1:
                key_iter = zip(*[column.tolist() for column in uniq.T])
            else:
                key_iter = ((v,) for v in uniq[:, 0].tolist())
            u = 0
            for key in key_iter:
                rid = row_setdefault(key, nrows)
                if rid == nrows:
                    rows_append(key)
                    fresh_append(u)
                    nrows += 1
                urids[u] = rid
                u += 1
            if fresh:
                mask_view = np.frombuffer(self._origin_mask, dtype=np.int64)
                fresh_masks = np.bitwise_or.reduce(
                    mask_view[uniq[np.array(fresh)]].reshape(len(fresh), k),
                    axis=1,
                )
                del mask_view
                node_slots.extend(self._empty_row * len(fresh))
                row_masks.frombytes(fresh_masks.tobytes())
            urid_arr = np.array(urids, dtype=np.int64)
            for pi in pats_of_inlist[si]:
                p = patterns[pi][0]
                cand_slots = urid_arr * n + p
                slot_view = np.frombuffer(node_slots, dtype=np.int64)
                vid_u = slot_view[cand_slots]
                del slot_view
                missing = np.flatnonzero(vid_u < 0)
                if len(missing):
                    count_missing = len(missing)
                    base = len(pids)
                    new_vids = np.arange(
                        base, base + count_missing, dtype=np.int64
                    )
                    missing_rids = urid_arr[missing]
                    pids.extend([p] * count_missing)
                    depth_col.extend([depth] * count_missing)
                    self._row.frombytes(missing_rids.tobytes())
                    row_mask_view = np.frombuffer(row_masks, dtype=np.int64)
                    self._origin_mask.frombytes(
                        row_mask_view[missing_rids].tobytes()
                    )
                    del row_mask_view
                    self._origin_values.extend([None] * count_missing)
                    slot_view = np.frombuffer(node_slots, dtype=np.int64)
                    slot_view[cand_slots[missing]] = new_vids
                    del slot_view
                    vid_u[missing] = new_vids
                vid_cols[pi] = vid_u[inv]
        column_lists = [column.tolist() for column in vid_cols]
        return [
            list(zip(*[column_lists[pi] for pi in layout]))
            for layout in layouts
        ]

    def _check_pid(self, p: int) -> None:
        if not 0 <= p < self.n:
            raise AnalysisError(f"process id {p} outside 0..{self.n - 1}")

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    def pid(self, vid: int) -> int:
        """The process that owns view ``vid``."""
        return self._pid[vid]

    def depth(self, vid: int) -> int:
        """The time (round number) at which view ``vid`` is taken."""
        return self._depth[vid]

    def is_leaf(self, vid: int) -> bool:
        """Whether ``vid`` is a time-0 view."""
        return self._depth[vid] == 0

    def leaf_value(self, vid: int):
        """The input value of a time-0 view."""
        if not self.is_leaf(vid):
            raise AnalysisError(f"view {vid} is not a leaf")
        return self._leaf_values[self._row[vid]]

    def children(self, vid: int) -> frozenset[int]:
        """The previous-round views visible in ``vid`` (empty for leaves)."""
        if self.is_leaf(vid):
            return frozenset()
        return frozenset(self._rows[self._row[vid]])

    def child_row(self, vid: int) -> tuple[int, ...]:
        """The sorted interned child tuple of a non-leaf view."""
        if self.is_leaf(vid):
            raise AnalysisError(f"view {vid} is a leaf and has no child row")
        return self._rows[self._row[vid]]

    def origin_mask(self, vid: int) -> int:
        """Bitmask of processes whose initial node lies in the causal past."""
        return self._origin_mask[vid]

    def origins(self, vid: int) -> tuple:
        """Sorted tuple of ``(q, x_q)`` pairs visible in the causal past."""
        cached = self._origin_values[vid]
        if cached is None:
            cached = self._force_origins(vid)
        return cached

    def _force_origins(self, vid: int) -> tuple:
        """Materialize lazily-deferred origin values (fast-path views only).

        Views created through :meth:`extend_level` defer the value merge;
        their children are mutually consistent by construction, so a plain
        union suffices.
        """
        values = self._origin_values
        rows = self._rows
        row_col = self._row
        merged: dict[int, object] = {}
        stack = [vid]
        seen = {vid}
        pending: list[int] = []
        while stack:
            current = stack.pop()
            if values[current] is None:
                pending.append(current)
                for child in rows[row_col[current]]:
                    if child not in seen:
                        seen.add(child)
                        stack.append(child)
            else:
                merged.update(values[current])
        # Fill in post-order so deeper views are cached too.
        for current in reversed(pending):
            mask = self._origin_mask[current]
            entry = tuple(
                (q, merged[q]) for q in range(self.n) if mask >> q & 1
            )
            values[current] = entry
        return values[vid]

    def knows_input_of(self, vid: int, q: int) -> bool:
        """Whether the causal past of ``vid`` contains ``(q, 0, x_q)``."""
        return bool(self._origin_mask[vid] >> q & 1)

    def input_of(self, vid: int, q: int):
        """The input value of ``q`` as recorded in the causal past of ``vid``."""
        for owner, value in self.origins(vid):
            if owner == q:
                return value
        raise AnalysisError(f"view {vid} has not heard of process {q}")

    def stats(self) -> ViewStats:
        """Summary statistics and table geometry of the interner's contents."""
        total = len(self._pid)
        max_depth = max(self._depth) if total else 0
        getsizeof = sys.getsizeof
        approx = (
            getsizeof(self._pid)
            + getsizeof(self._depth)
            + getsizeof(self._row)
            + getsizeof(self._origin_mask)
            + getsizeof(self._origin_values)
            + getsizeof(self._leaf_table)
            + getsizeof(self._leaf_values)
            + getsizeof(self._node_slots)
            + getsizeof(self._rows)
            + getsizeof(self._row_table)
            + getsizeof(self._row_masks)
            + getsizeof(self._level_table)
            + getsizeof(self._graph_ids)
            + getsizeof(self._ext_cache)
        )
        # Interned row/level tuples (8 bytes per slot + tuple header), and
        # the forced origin-value tuples; child ids themselves are shared
        # small ints and are not charged.
        tuple_header = getsizeof(())
        for row in self._rows:
            approx += tuple_header + 8 * len(row)
        for lvl in self._level_table:
            approx += tuple_header + 8 * len(lvl)
        for entry in self._origin_values:
            if entry is not None:
                approx += tuple_header + len(entry) * (tuple_header + 16)
        # The per-alphabet extension plans: graphs-tuple keys plus the
        # pattern/layout/in-list structures (the cache is never evicted,
        # so long-lived sessions watch its growth through these stats).
        approx += getsizeof(self._plan_cache)
        for key, (patterns, layouts, inlists, pats) in self._plan_cache.items():
            approx += tuple_header + 8 * len(key)
            for _, in_list in patterns:
                approx += 2 * tuple_header + 16 + 8 * len(in_list)
            for layout in layouts:
                approx += getsizeof(layout)
            for in_list in inlists:
                approx += tuple_header + 8 * len(in_list)
            for pis in pats:
                approx += tuple_header + 8 * len(pis)
        return ViewStats(
            total,
            self._leaf_count,
            max_depth,
            rows=len(self._rows),
            cached_extensions=len(self._ext_cache),
            cached_plans=len(self._plan_cache),
            approx_bytes=approx,
        )

    def __len__(self) -> int:
        return len(self._pid)

    # ------------------------------------------------------------------ #
    # Causal-cone reconstruction (used by viz and by the test suite)
    # ------------------------------------------------------------------ #

    def cone(self, vid: int) -> tuple[set, set]:
        """The causal past of ``vid`` as explicit process-time nodes/edges.

        Returns ``(nodes, edges)`` where nodes are ``(q, s)`` pairs (``s`` the
        time coordinate, with ``s = 0`` nodes standing for ``(q, 0, x_q)``)
        and edges are ``((q, s), (r, s + 1))`` pairs.  The apex is
        ``(pid(vid), depth(vid))``.
        """
        nodes: set = set()
        edges: set = set()
        seen: set[int] = set()
        stack = [vid]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            p, d = self._pid[current], self._depth[current]
            nodes.add((p, d))
            for child in self.children(current):
                edges.add(((self._pid[child], d - 1), (p, d)))
                stack.append(child)
        return nodes, edges
