"""Immutable directed communication graphs on the process set ``{0,...,n-1}``.

A *communication graph* (Section 2 of the paper) is a directed graph whose
nodes are the ``n`` processes; an edge ``(p, q)`` means that a message sent by
``p`` in the current round is delivered to ``q``.  Following the standard
convention for full-information protocols, every process always "hears"
itself: self-loops are implicit and are therefore *stripped* from the stored
edge set but *included* by :meth:`Digraph.in_neighbors` and all reachability
computations.

Bitmask kernel
--------------
Internally a graph is a tuple of integer bit rows: ``out_bits[u]`` has bit
``v`` set iff ``u``'s message reaches ``v`` (the self bit is always set), and
symmetrically ``in_bits``.  The canonical identity of a graph is the pair
``(n, key)`` where ``key`` packs the non-self edge bits as ``u * n + v``.
Graphs on ``n <= _INTERN_MAX_N`` nodes are *interned*: structurally equal
graphs are the same object and share every cached derived quantity
(transitive closures, root components, broadcasters, sort keys).  All reachability queries reduce to a
handful of bitwise operations on the rows:

* the reflexive-transitive closure is computed by repeated squaring on the
  bit rows (``O(log n)`` row-products);
* ``p`` is a *broadcaster* iff its closure row covers all ``n`` bits;
* the SCC of ``u`` is ``closure[u] & transpose_closure[u]``;
* the SCC of ``u`` is a *root component* iff
  ``transpose_closure[u] & ~closure[u] == 0`` (nothing outside reaches in).

The set-based accessors (:attr:`edges`, :meth:`in_neighbors`, Tarjan-ordered
:meth:`strongly_connected_components`) are kept as a thin compatibility
layer, materialized lazily from the bit rows.

The class is immutable and hashable, so graphs can be used as alphabet
symbols of adversary automata, dictionary keys of decision tables, and
members of oblivious adversary sets.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.errors import InvalidGraphError

__all__ = [
    "Digraph",
    "ARROW_NAMES_N2",
    "arrow",
]

#: Conventional names for the four communication graphs on two processes,
#: matching the paper's lossy-link notation.  ``"->"`` is "process 0's message
#: reaches process 1" (the paper's ``→`` with processes renumbered to 0/1).
ARROW_NAMES_N2 = {
    frozenset(): "none",
    frozenset({(0, 1)}): "->",
    frozenset({(1, 0)}): "<-",
    frozenset({(0, 1), (1, 0)}): "<->",
}

_ARROW_EDGES = {name: edges for edges, name in ARROW_NAMES_N2.items()}
# Accept a few unicode/typed aliases for convenience.
_ARROW_EDGES["→"] = _ARROW_EDGES["->"]
_ARROW_EDGES["←"] = _ARROW_EDGES["<-"]
_ARROW_EDGES["↔"] = _ARROW_EDGES["<->"]
_ARROW_EDGES["<>"] = _ARROW_EDGES["<->"]
_ARROW_EDGES["empty"] = _ARROW_EDGES["none"]
_ARROW_EDGES["∅"] = _ARROW_EDGES["none"]

#: Graphs on at most this many nodes are hash-consed into a process-wide
#: table.  Bit rows and packed edge keys are arbitrary-precision Python
#: ints, so every graph operation is width-generic; the cap only bounds
#: the intern table.  ``16`` covers the large-``n`` prefix spaces the
#: sharded extension kernel can now walk, while ``n <= 8`` keys stay
#: within one machine word — that fast path is bit-for-bit unchanged
#: (same key packing, same hashes, same interned identities).
_INTERN_MAX_N = 16

_UNSET = object()


class Digraph:
    """An immutable directed graph on nodes ``0..n-1`` with implicit self-loops.

    Parameters
    ----------
    n:
        Number of processes (nodes).  Must be positive.
    edges:
        Iterable of directed edges ``(u, v)``.  Self-loops are allowed in the
        input but normalized away (they are semantically always present).

    Examples
    --------
    >>> g = Digraph(2, [(0, 1)])
    >>> g.in_neighbors(1)
    frozenset({0, 1})
    >>> g.name
    '->'
    >>> g is Digraph(2, [(0, 1)])
    True
    """

    __slots__ = (
        "n",
        "out_bits",
        "in_bits",
        "_key",
        "_hash",
        "_edges",
        "_in",
        "_out",
        "_in_lists",
        "_sort_key",
        "_closure",
        "_tclosure",
        "_bcast_mask",
        "_root_comps",
        "_scc_cache",
    )

    #: Process-wide intern table ``(n, key) -> Digraph`` for small ``n``.
    _intern: dict[tuple[int, int], "Digraph"] = {}

    def __new__(cls, n: int, edges: Iterable[tuple[int, int]] = ()) -> "Digraph":
        if n <= 0:
            raise InvalidGraphError(f"graph needs at least one node, got n={n}")
        key = 0
        for u, v in edges:
            if not (0 <= u < n and 0 <= v < n):
                raise InvalidGraphError(
                    f"edge ({u}, {v}) out of range for n={n} (nodes are 0..{n - 1})"
                )
            if u != v:
                key |= 1 << (u * n + v)
        return cls._from_key(n, key)

    @classmethod
    def _from_key(cls, n: int, key: int) -> "Digraph":
        """The canonical graph for a packed non-self edge key (interned)."""
        if n <= 0:
            raise InvalidGraphError(f"graph needs at least one node, got n={n}")
        if n <= _INTERN_MAX_N:
            cached = cls._intern.get((n, key))
            if cached is not None:
                return cached
        self = object.__new__(cls)
        sset = object.__setattr__
        sset(self, "n", n)
        sset(self, "_key", key)
        row_mask = (1 << n) - 1
        out_bits = []
        for u in range(n):
            out_bits.append(((key >> (u * n)) & row_mask) | (1 << u))
        in_bits = []
        for v in range(n):
            bit = 1 << v
            row = bit
            for u in range(n):
                if out_bits[u] & bit:
                    row |= 1 << u
            in_bits.append(row)
        sset(self, "out_bits", tuple(out_bits))
        sset(self, "in_bits", tuple(in_bits))
        sset(self, "_hash", hash((n, key)))
        sset(self, "_edges", _UNSET)
        sset(self, "_in", _UNSET)
        sset(self, "_out", _UNSET)
        sset(self, "_in_lists", _UNSET)
        sset(self, "_sort_key", _UNSET)
        sset(self, "_closure", _UNSET)
        sset(self, "_tclosure", _UNSET)
        sset(self, "_bcast_mask", _UNSET)
        sset(self, "_root_comps", _UNSET)
        sset(self, "_scc_cache", _UNSET)
        if n <= _INTERN_MAX_N:
            cls._intern[(n, key)] = self
        return self

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_out_bits(cls, n: int, rows: Sequence[int]) -> "Digraph":
        """Build from per-node out-neighbor bit rows (self bits optional)."""
        if len(rows) != n:
            raise InvalidGraphError(f"expected {n} bit rows, got {len(rows)}")
        row_mask = (1 << n) - 1
        key = 0
        for u, row in enumerate(rows):
            if row & ~row_mask:
                raise InvalidGraphError(f"row {u} has bits outside 0..{n - 1}")
            key |= (row & ~(1 << u) & row_mask) << (u * n)
        return cls._from_key(n, key)

    @classmethod
    def empty(cls, n: int) -> "Digraph":
        """The graph with no (non-self) edges: every process is isolated."""
        return cls._from_key(n, 0)

    @classmethod
    def complete(cls, n: int) -> "Digraph":
        """The complete graph: every message is delivered."""
        full = (1 << (n * n)) - 1
        for u in range(n):
            full &= ~(1 << (u * n + u))
        return cls._from_key(n, full)

    @classmethod
    def from_arrow(cls, name: str) -> "Digraph":
        """Build one of the four two-process graphs from its arrow name.

        Accepted names: ``"->"``, ``"<-"``, ``"<->"``, ``"none"`` and the
        unicode aliases ``"→"``, ``"←"``, ``"↔"``, ``"∅"``.
        """
        try:
            return cls(2, _ARROW_EDGES[name])
        except KeyError:
            raise InvalidGraphError(f"unknown two-process arrow name: {name!r}") from None

    @classmethod
    def star_out(cls, n: int, center: int) -> "Digraph":
        """The out-star: ``center`` sends to everyone, no other edges."""
        return cls(n, [(center, q) for q in range(n) if q != center])

    @classmethod
    def star_in(cls, n: int, center: int) -> "Digraph":
        """The in-star: everyone sends to ``center``, no other edges."""
        return cls(n, [(q, center) for q in range(n) if q != center])

    @classmethod
    def directed_cycle(cls, n: int, order: Sequence[int] | None = None) -> "Digraph":
        """The directed cycle visiting ``order`` (default ``0,1,...,n-1``)."""
        seq = list(order) if order is not None else list(range(n))
        return cls(n, [(seq[i], seq[(i + 1) % len(seq)]) for i in range(len(seq))])

    @classmethod
    def directed_path(cls, n: int, order: Sequence[int] | None = None) -> "Digraph":
        """The directed path visiting ``order`` (default ``0,1,...,n-1``)."""
        seq = list(order) if order is not None else list(range(n))
        return cls(n, [(seq[i], seq[i + 1]) for i in range(len(seq) - 1)])

    @classmethod
    def from_matrix(cls, matrix: Sequence[Sequence[int]]) -> "Digraph":
        """Build from an adjacency matrix; ``matrix[u][v]`` truthy adds (u,v)."""
        n = len(matrix)
        edges = [
            (u, v)
            for u in range(n)
            for v in range(len(matrix[u]))
            if u != v and matrix[u][v]
        ]
        return cls(n, edges)

    @classmethod
    def from_dict(cls, n: int, out_neighbors: Mapping[int, Iterable[int]]) -> "Digraph":
        """Build from a mapping ``u -> iterable of v`` of out-neighborhoods."""
        edges = [(u, v) for u, vs in out_neighbors.items() for v in vs]
        return cls(n, edges)

    @classmethod
    def interned_count(cls) -> int:
        """How many distinct graphs the process-wide intern table holds."""
        return len(cls._intern)

    @classmethod
    def clear_intern_cache(cls) -> None:
        """Drop the process-wide intern table.

        Long-running processes that *sample* large graph spaces (rejection
        sampling at ``n >= 5`` can touch millions of distinct keys) may
        call this to release the retained graphs and their cached
        closures.  Existing instances stay valid: equality and hashing
        compare ``(n, key)``, so a pre-clear graph still compares equal to
        a freshly interned duplicate — only the ``is`` identity between
        graphs constructed before and after the clear is lost.
        """
        cls._intern.clear()

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def key(self) -> int:
        """The packed non-self edge bitmask (bit ``u * n + v`` = edge u→v).

        Together with ``n`` this is the graph's canonical identity:
        ``Digraph.from_key(g.n, g.key) is g`` for interned sizes.  The key
        is a plain non-negative integer, which makes it the JSON-portable
        graph encoding used by adversary specs and sweep manifests.
        """
        return self._key

    @classmethod
    def from_key(cls, n: int, key: int) -> "Digraph":
        """The graph for a packed edge key (the inverse of :attr:`key`)."""
        if key < 0 or key >> (n * n):
            raise InvalidGraphError(f"edge key {key} out of range for n={n}")
        for u in range(n):
            if key >> (u * n + u) & 1:
                raise InvalidGraphError(
                    f"edge key {key} has a self-loop bit set (node {u})"
                )
        return cls._from_key(n, key)

    @property
    def edges(self) -> frozenset[tuple[int, int]]:
        """The non-self edges as a frozenset of ``(u, v)`` pairs."""
        cached = self._edges
        if cached is _UNSET:
            n, key = self.n, self._key
            cached = frozenset(
                (u, v)
                for u in range(n)
                for v in range(n)
                if key >> (u * n + v) & 1
            )
            object.__setattr__(self, "_edges", cached)
        return cached

    def in_neighbors(self, p: int) -> frozenset[int]:
        """Processes whose round message reaches ``p`` (always contains ``p``)."""
        cached = self._in
        if cached is _UNSET:
            cached = tuple(_bits_to_frozenset(row) for row in self.in_bits)
            object.__setattr__(self, "_in", cached)
        return cached[p]

    def out_neighbors(self, p: int) -> frozenset[int]:
        """Processes that receive ``p``'s round message (always contains ``p``)."""
        cached = self._out
        if cached is _UNSET:
            cached = tuple(_bits_to_frozenset(row) for row in self.out_bits)
            object.__setattr__(self, "_out", cached)
        return cached[p]

    @property
    def in_neighbor_lists(self) -> tuple[tuple[int, ...], ...]:
        """Per-process sorted tuples of in-neighbors (self included).

        The tuple form is the fast iteration order used by the view-interner
        and heard-of hot paths.
        """
        cached = self._in_lists
        if cached is _UNSET:
            cached = tuple(_bits_to_tuple(row) for row in self.in_bits)
            object.__setattr__(self, "_in_lists", cached)
        return cached

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the (possibly implicit self-) edge ``(u, v)`` is present."""
        return bool(self.out_bits[u] >> v & 1)

    @property
    def name(self) -> str:
        """Human-readable name; arrow notation for ``n == 2``."""
        if self.n == 2:
            return ARROW_NAMES_N2[self.edges]
        return f"Digraph(n={self.n}, m={len(self.edges)})"

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #

    def transpose(self) -> "Digraph":
        """The graph with every edge reversed."""
        return Digraph.from_out_bits(self.n, self.in_bits)

    def union(self, other: "Digraph") -> "Digraph":
        """Edge-union of two graphs on the same node set."""
        self._check_same_n(other)
        return Digraph._from_key(self.n, self._key | other._key)

    def intersection(self, other: "Digraph") -> "Digraph":
        """Edge-intersection of two graphs on the same node set."""
        self._check_same_n(other)
        return Digraph._from_key(self.n, self._key & other._key)

    def compose(self, other: "Digraph") -> "Digraph":
        """The round product ``self ∘ other``: first ``self``, then ``other``.

        The result has edge ``(u, w)`` iff information can flow from ``u``
        to ``w`` through one round of ``self`` followed by one round of
        ``other`` (self-loops implicit in both rounds), i.e. its
        out-neighborhoods are the bit-row product of the two graphs.
        """
        self._check_same_n(other)
        other_rows = other.out_bits
        rows = []
        for row in self.out_bits:
            acc = 0
            rest = row
            while rest:
                low = rest & -rest
                acc |= other_rows[low.bit_length() - 1]
                rest ^= low
            rows.append(acc)
        return Digraph.from_out_bits(self.n, rows)

    def with_edge(self, u: int, v: int) -> "Digraph":
        """A copy with edge ``(u, v)`` added."""
        n = self.n
        if not (0 <= u < n and 0 <= v < n):
            raise InvalidGraphError(f"edge ({u}, {v}) out of range for n={n}")
        if u == v:
            return self
        return Digraph._from_key(n, self._key | 1 << (u * n + v))

    def without_edge(self, u: int, v: int) -> "Digraph":
        """A copy with edge ``(u, v)`` removed (self-loops cannot be removed)."""
        n = self.n
        if not (0 <= u < n and 0 <= v < n):
            raise InvalidGraphError(f"edge ({u}, {v}) out of range for n={n}")
        if u == v:
            return self
        return Digraph._from_key(n, self._key & ~(1 << (u * n + v)))

    def is_subgraph_of(self, other: "Digraph") -> bool:
        """Whether every edge of ``self`` is an edge of ``other``."""
        self._check_same_n(other)
        return self._key & ~other._key == 0

    def _check_same_n(self, other: "Digraph") -> None:
        if self.n != other.n:
            raise InvalidGraphError(
                f"graphs have different sizes: {self.n} != {other.n}"
            )

    # ------------------------------------------------------------------ #
    # Reachability and component structure
    # ------------------------------------------------------------------ #

    def closure_bits(self) -> tuple[int, ...]:
        """Reflexive-transitive closure rows: bit ``v`` of row ``u`` iff
        ``u`` reaches ``v`` (cached; repeated squaring on the bit rows)."""
        cached = self._closure
        if cached is _UNSET:
            cached = _close_rows(self.out_bits)
            object.__setattr__(self, "_closure", cached)
        return cached

    def transpose_closure_bits(self) -> tuple[int, ...]:
        """Rows of the transposed closure: bit ``v`` of row ``u`` iff
        ``v`` reaches ``u`` (cached)."""
        cached = self._tclosure
        if cached is _UNSET:
            cached = _close_rows(self.in_bits)
            object.__setattr__(self, "_tclosure", cached)
        return cached

    def reaches(self, u: int, v: int) -> bool:
        """Whether there is a directed path from ``u`` to ``v``."""
        return bool(self.closure_bits()[u] >> v & 1)

    def reachable_from(self, p: int) -> frozenset[int]:
        """All processes reachable from ``p`` along directed edges (incl. p)."""
        return _bits_to_frozenset(self.closure_bits()[p])

    @property
    def broadcasters_mask(self) -> int:
        """Bitmask of processes whose message (transitively) reaches all."""
        cached = self._bcast_mask
        if cached is _UNSET:
            full = (1 << self.n) - 1
            cached = 0
            for p, row in enumerate(self.closure_bits()):
                if row == full:
                    cached |= 1 << p
            object.__setattr__(self, "_bcast_mask", cached)
        return cached

    @property
    def broadcasters(self) -> frozenset[int]:
        """Processes whose message (transitively) reaches every process.

        Nonempty iff :attr:`is_rooted` holds, in which case it equals the
        single root component.
        """
        return _bits_to_frozenset(self.broadcasters_mask)

    @property
    def is_rooted(self) -> bool:
        """Whether there is a single root component (some node reaches all)."""
        return self.broadcasters_mask != 0

    @property
    def root_components(self) -> tuple[frozenset[int], ...]:
        """Source components: SCCs with no incoming edge from another SCC.

        Every digraph has at least one root component.  If there is exactly
        one, each of its members reaches every node.  Ordered by smallest
        member.
        """
        cached = self._root_comps
        if cached is _UNSET:
            closure = self.closure_bits()
            tclosure = self.transpose_closure_bits()
            comps = []
            seen = 0
            for u in range(self.n):
                bit = 1 << u
                if seen & bit:
                    continue
                # u's SCC is a root component iff everything reaching u is
                # also reached by u.
                if tclosure[u] & ~closure[u] == 0:
                    comp = closure[u] & tclosure[u]
                    comps.append(_bits_to_frozenset(comp))
                    seen |= comp
                else:
                    seen |= bit
            cached = tuple(comps)
            object.__setattr__(self, "_root_comps", cached)
        return cached

    @property
    def roots(self) -> frozenset[int]:
        """Union of all root-component members."""
        return frozenset().union(*self.root_components)

    def _scc_data(self) -> tuple[tuple[frozenset[int], ...], tuple[int, ...]]:
        """SCCs in reverse topological order, plus node -> component index."""
        cached = self._scc_cache
        if cached is _UNSET:
            n = self.n
            closure = self.closure_bits()
            tclosure = self.transpose_closure_bits()
            comp_masks: list[int] = []
            comp_of = [-1] * n
            for u in range(n):
                if comp_of[u] != -1:
                    continue
                comp = closure[u] & tclosure[u]
                cid = len(comp_masks)
                comp_masks.append(comp)
                rest = comp
                while rest:
                    low = rest & -rest
                    comp_of[low.bit_length() - 1] = cid
                    rest ^= low
            # Reverse topological: a component before everything that can
            # reach it; sorting by closure size achieves this because a
            # reachable component's closure is strictly contained.
            order = sorted(
                range(len(comp_masks)),
                key=lambda cid: bin(closure[(comp_masks[cid] & -comp_masks[cid]).bit_length() - 1]).count("1"),
            )
            rank = {cid: i for i, cid in enumerate(order)}
            components = tuple(
                _bits_to_frozenset(comp_masks[cid]) for cid in order
            )
            cached = (components, tuple(rank[c] for c in comp_of))
            object.__setattr__(self, "_scc_cache", cached)
        return cached

    def strongly_connected_components(self) -> tuple[frozenset[int], ...]:
        """All strongly connected components (order: reverse topological)."""
        return self._scc_data()[0]

    def component_of(self, p: int) -> frozenset[int]:
        """The strongly connected component containing ``p``."""
        comps, comp_of = self._scc_data()
        return comps[comp_of[p]]

    @property
    def is_strongly_connected(self) -> bool:
        """Whether the whole graph forms a single SCC."""
        full = (1 << self.n) - 1
        return self.closure_bits()[0] == full and self.transpose_closure_bits()[0] == full

    # ------------------------------------------------------------------ #
    # Dunder protocol
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Digraph):
            return NotImplemented
        return self.n == other.n and self._key == other._key

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Digraph") -> bool:
        if not isinstance(other, Digraph):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def sort_key(self) -> tuple[int, int, tuple[tuple[int, int], ...]]:
        """A deterministic total-order key (used to canonicalize alphabets)."""
        cached = self._sort_key
        if cached is _UNSET:
            edges = self.edges
            cached = (self.n, len(edges), tuple(sorted(edges)))
            object.__setattr__(self, "_sort_key", cached)
        return cached

    def __repr__(self) -> str:
        if self.n == 2:
            return f"Digraph.from_arrow({self.name!r})"
        return f"Digraph({self.n}, {sorted(self.edges)!r})"

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Digraph is immutable")

    def __reduce__(self) -> tuple[Any, ...]:
        return (_rebuild_digraph, (self.n, self._key))


def _rebuild_digraph(n: int, key: int) -> Digraph:
    """Pickle support routing through the intern table."""
    return Digraph._from_key(n, key)


def _close_rows(rows: Sequence[int]) -> tuple[int, ...]:
    """Reflexive-transitive closure of bit rows by repeated squaring."""
    current = list(rows)
    n = len(current)
    while True:
        changed = False
        squared = []
        for row in current:
            acc = 0
            rest = row
            while rest:
                low = rest & -rest
                acc |= current[low.bit_length() - 1]
                rest ^= low
            if acc != row:
                changed = True
            squared.append(acc)
        if not changed:
            return tuple(current)
        current = squared
        if n <= 2:
            return tuple(current)


def _bits_to_frozenset(mask: int) -> frozenset[int]:
    """The set of positions of set bits."""
    out = []
    while mask:
        low = mask & -mask
        out.append(low.bit_length() - 1)
        mask ^= low
    return frozenset(out)


def _bits_to_tuple(mask: int) -> tuple[int, ...]:
    """The sorted tuple of positions of set bits."""
    out = []
    while mask:
        low = mask & -mask
        out.append(low.bit_length() - 1)
        mask ^= low
    return tuple(out)


def arrow(name: str) -> Digraph:
    """Shorthand for :meth:`Digraph.from_arrow`."""
    return Digraph.from_arrow(name)
