"""Immutable directed communication graphs on the process set ``{0,...,n-1}``.

A *communication graph* (Section 2 of the paper) is a directed graph whose
nodes are the ``n`` processes; an edge ``(p, q)`` means that a message sent by
``p`` in the current round is delivered to ``q``.  Following the standard
convention for full-information protocols, every process always "hears"
itself: self-loops are implicit and are therefore *stripped* from the stored
edge set but *included* by :meth:`Digraph.in_neighbors` and all reachability
computations.

The class is immutable and hashable, so graphs can be used as alphabet
symbols of adversary automata, dictionary keys of decision tables, and
members of oblivious adversary sets.

Besides basic accessors the class offers the graph-theoretic notions the
paper's applications rely on:

* :meth:`strongly_connected_components` — Tarjan's algorithm (iterative).
* :meth:`root_components` — source components of the condensation, i.e.
  strongly connected components without incoming edges from other components.
  These are the "vertex-stable source components" of [6, 23].
* :meth:`is_rooted` — exactly one root component, equivalent to the existence
  of a node from which every node is reachable.
* :meth:`broadcasters` — the set of processes that reach every process.
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import InvalidGraphError

__all__ = [
    "Digraph",
    "ARROW_NAMES_N2",
    "arrow",
]

#: Conventional names for the four communication graphs on two processes,
#: matching the paper's lossy-link notation.  ``"->"`` is "process 0's message
#: reaches process 1" (the paper's ``→`` with processes renumbered to 0/1).
ARROW_NAMES_N2 = {
    frozenset(): "none",
    frozenset({(0, 1)}): "->",
    frozenset({(1, 0)}): "<-",
    frozenset({(0, 1), (1, 0)}): "<->",
}

_ARROW_EDGES = {name: edges for edges, name in ARROW_NAMES_N2.items()}
# Accept a few unicode/typed aliases for convenience.
_ARROW_EDGES["→"] = _ARROW_EDGES["->"]
_ARROW_EDGES["←"] = _ARROW_EDGES["<-"]
_ARROW_EDGES["↔"] = _ARROW_EDGES["<->"]
_ARROW_EDGES["<>"] = _ARROW_EDGES["<->"]
_ARROW_EDGES["empty"] = _ARROW_EDGES["none"]
_ARROW_EDGES["∅"] = _ARROW_EDGES["none"]


class Digraph:
    """An immutable directed graph on nodes ``0..n-1`` with implicit self-loops.

    Parameters
    ----------
    n:
        Number of processes (nodes).  Must be positive.
    edges:
        Iterable of directed edges ``(u, v)``.  Self-loops are allowed in the
        input but normalized away (they are semantically always present).

    Examples
    --------
    >>> g = Digraph(2, [(0, 1)])
    >>> g.in_neighbors(1)
    frozenset({0, 1})
    >>> g.name
    '->'
    """

    __slots__ = ("n", "edges", "_in", "_out", "_hash", "__dict__")

    def __init__(self, n: int, edges: Iterable[tuple[int, int]] = ()) -> None:
        if n <= 0:
            raise InvalidGraphError(f"graph needs at least one node, got n={n}")
        normalized = set()
        for u, v in edges:
            if not (0 <= u < n and 0 <= v < n):
                raise InvalidGraphError(
                    f"edge ({u}, {v}) out of range for n={n} (nodes are 0..{n - 1})"
                )
            if u != v:
                normalized.add((u, v))
        object.__setattr__(self, "n", n)
        object.__setattr__(self, "edges", frozenset(normalized))
        ins: list[set[int]] = [{p} for p in range(n)]
        outs: list[set[int]] = [{p} for p in range(n)]
        for u, v in normalized:
            ins[v].add(u)
            outs[u].add(v)
        object.__setattr__(self, "_in", tuple(frozenset(s) for s in ins))
        object.__setattr__(self, "_out", tuple(frozenset(s) for s in outs))
        object.__setattr__(self, "_hash", hash((n, self.edges)))

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def empty(cls, n: int) -> "Digraph":
        """The graph with no (non-self) edges: every process is isolated."""
        return cls(n, ())

    @classmethod
    def complete(cls, n: int) -> "Digraph":
        """The complete graph: every message is delivered."""
        return cls(n, [(u, v) for u in range(n) for v in range(n) if u != v])

    @classmethod
    def from_arrow(cls, name: str) -> "Digraph":
        """Build one of the four two-process graphs from its arrow name.

        Accepted names: ``"->"``, ``"<-"``, ``"<->"``, ``"none"`` and the
        unicode aliases ``"→"``, ``"←"``, ``"↔"``, ``"∅"``.
        """
        try:
            return cls(2, _ARROW_EDGES[name])
        except KeyError:
            raise InvalidGraphError(f"unknown two-process arrow name: {name!r}") from None

    @classmethod
    def star_out(cls, n: int, center: int) -> "Digraph":
        """The out-star: ``center`` sends to everyone, no other edges."""
        return cls(n, [(center, q) for q in range(n) if q != center])

    @classmethod
    def star_in(cls, n: int, center: int) -> "Digraph":
        """The in-star: everyone sends to ``center``, no other edges."""
        return cls(n, [(q, center) for q in range(n) if q != center])

    @classmethod
    def directed_cycle(cls, n: int, order: Sequence[int] | None = None) -> "Digraph":
        """The directed cycle visiting ``order`` (default ``0,1,...,n-1``)."""
        seq = list(order) if order is not None else list(range(n))
        return cls(n, [(seq[i], seq[(i + 1) % len(seq)]) for i in range(len(seq))])

    @classmethod
    def directed_path(cls, n: int, order: Sequence[int] | None = None) -> "Digraph":
        """The directed path visiting ``order`` (default ``0,1,...,n-1``)."""
        seq = list(order) if order is not None else list(range(n))
        return cls(n, [(seq[i], seq[i + 1]) for i in range(len(seq) - 1)])

    @classmethod
    def from_matrix(cls, matrix: Sequence[Sequence[int]]) -> "Digraph":
        """Build from an adjacency matrix; ``matrix[u][v]`` truthy adds (u,v)."""
        n = len(matrix)
        edges = [
            (u, v)
            for u in range(n)
            for v in range(len(matrix[u]))
            if u != v and matrix[u][v]
        ]
        return cls(n, edges)

    @classmethod
    def from_dict(cls, n: int, out_neighbors: Mapping[int, Iterable[int]]) -> "Digraph":
        """Build from a mapping ``u -> iterable of v`` of out-neighborhoods."""
        edges = [(u, v) for u, vs in out_neighbors.items() for v in vs]
        return cls(n, edges)

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    def in_neighbors(self, p: int) -> frozenset[int]:
        """Processes whose round message reaches ``p`` (always contains ``p``)."""
        return self._in[p]

    def out_neighbors(self, p: int) -> frozenset[int]:
        """Processes that receive ``p``'s round message (always contains ``p``)."""
        return self._out[p]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the (possibly implicit self-) edge ``(u, v)`` is present."""
        return u == v or (u, v) in self.edges

    @property
    def name(self) -> str:
        """Human-readable name; arrow notation for ``n == 2``."""
        if self.n == 2:
            return ARROW_NAMES_N2[self.edges]
        return f"Digraph(n={self.n}, m={len(self.edges)})"

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #

    def transpose(self) -> "Digraph":
        """The graph with every edge reversed."""
        return Digraph(self.n, [(v, u) for u, v in self.edges])

    def union(self, other: "Digraph") -> "Digraph":
        """Edge-union of two graphs on the same node set."""
        self._check_same_n(other)
        return Digraph(self.n, self.edges | other.edges)

    def intersection(self, other: "Digraph") -> "Digraph":
        """Edge-intersection of two graphs on the same node set."""
        self._check_same_n(other)
        return Digraph(self.n, self.edges & other.edges)

    def with_edge(self, u: int, v: int) -> "Digraph":
        """A copy with edge ``(u, v)`` added."""
        return Digraph(self.n, self.edges | {(u, v)})

    def without_edge(self, u: int, v: int) -> "Digraph":
        """A copy with edge ``(u, v)`` removed (self-loops cannot be removed)."""
        return Digraph(self.n, self.edges - {(u, v)})

    def is_subgraph_of(self, other: "Digraph") -> bool:
        """Whether every edge of ``self`` is an edge of ``other``."""
        self._check_same_n(other)
        return self.edges <= other.edges

    def _check_same_n(self, other: "Digraph") -> None:
        if self.n != other.n:
            raise InvalidGraphError(
                f"graphs have different sizes: {self.n} != {other.n}"
            )

    # ------------------------------------------------------------------ #
    # Reachability and component structure
    # ------------------------------------------------------------------ #

    def reachable_from(self, p: int) -> frozenset[int]:
        """All processes reachable from ``p`` along directed edges (incl. p)."""
        seen = {p}
        stack = [p]
        while stack:
            u = stack.pop()
            for v in self._out[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return frozenset(seen)

    @cached_property
    def _scc_data(self) -> tuple[tuple[frozenset[int], ...], tuple[int, ...]]:
        """Tarjan SCCs (iterative); returns (components, node->component index)."""
        n = self.n
        index_counter = 0
        indices = [-1] * n
        lowlink = [0] * n
        on_stack = [False] * n
        stack: list[int] = []
        components: list[frozenset[int]] = []
        comp_of = [-1] * n

        for root in range(n):
            if indices[root] != -1:
                continue
            # Iterative Tarjan with an explicit work stack of (node, iterator).
            work: list[tuple[int, Iterator[int]]] = []
            indices[root] = lowlink[root] = index_counter
            index_counter += 1
            stack.append(root)
            on_stack[root] = True
            work.append((root, iter(sorted(self._out[root] - {root}))))
            while work:
                node, it = work[-1]
                advanced = False
                for succ in it:
                    if indices[succ] == -1:
                        indices[succ] = lowlink[succ] = index_counter
                        index_counter += 1
                        stack.append(succ)
                        on_stack[succ] = True
                        work.append((succ, iter(sorted(self._out[succ] - {succ}))))
                        advanced = True
                        break
                    if on_stack[succ]:
                        lowlink[node] = min(lowlink[node], indices[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == indices[node]:
                    comp = set()
                    while True:
                        w = stack.pop()
                        on_stack[w] = False
                        comp.add(w)
                        if w == node:
                            break
                    cid = len(components)
                    components.append(frozenset(comp))
                    for w in comp:
                        comp_of[w] = cid
        return tuple(components), tuple(comp_of)

    def strongly_connected_components(self) -> tuple[frozenset[int], ...]:
        """All strongly connected components (order: reverse topological)."""
        return self._scc_data[0]

    def component_of(self, p: int) -> frozenset[int]:
        """The strongly connected component containing ``p``."""
        comps, comp_of = self._scc_data
        return comps[comp_of[p]]

    @cached_property
    def root_components(self) -> tuple[frozenset[int], ...]:
        """Source components: SCCs with no incoming edge from another SCC.

        Every digraph has at least one root component.  If there is exactly
        one, each of its members reaches every node.
        """
        comps, comp_of = self._scc_data
        has_incoming = [False] * len(comps)
        for u, v in self.edges:
            cu, cv = comp_of[u], comp_of[v]
            if cu != cv:
                has_incoming[cv] = True
        return tuple(c for i, c in enumerate(comps) if not has_incoming[i])

    @property
    def is_rooted(self) -> bool:
        """Whether there is a single root component (some node reaches all)."""
        return len(self.root_components) == 1

    @cached_property
    def roots(self) -> frozenset[int]:
        """Union of all root-component members."""
        return frozenset().union(*self.root_components)

    @cached_property
    def broadcasters(self) -> frozenset[int]:
        """Processes whose message (transitively) reaches every process.

        Nonempty iff :attr:`is_rooted` holds, in which case it equals the
        single root component.
        """
        if not self.is_rooted:
            return frozenset()
        root = self.root_components[0]
        member = next(iter(root))
        if len(self.reachable_from(member)) == self.n:
            return root
        return frozenset()

    @property
    def is_strongly_connected(self) -> bool:
        """Whether the whole graph forms a single SCC."""
        return len(self.strongly_connected_components()) == 1

    # ------------------------------------------------------------------ #
    # Dunder protocol
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Digraph):
            return NotImplemented
        return self.n == other.n and self.edges == other.edges

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Digraph") -> bool:
        if not isinstance(other, Digraph):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def sort_key(self) -> tuple:
        """A deterministic total-order key (used to canonicalize alphabets)."""
        return (self.n, len(self.edges), tuple(sorted(self.edges)))

    def __repr__(self) -> str:
        if self.n == 2:
            return f"Digraph.from_arrow({self.name!r})"
        return f"Digraph({self.n}, {sorted(self.edges)!r})"

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Digraph is immutable")


def arrow(name: str) -> Digraph:
    """Shorthand for :meth:`Digraph.from_arrow`."""
    return Digraph.from_arrow(name)
