"""Process-time graph prefixes (Section 3 of the paper).

A :class:`PTGPrefix` is the finite, depth-``t`` analogue of an element of
``PT^ω``: an input assignment together with a graph word ``(G_1, ..., G_t)``.
It materializes the per-round views of every process (via a shared
:class:`~repro.core.views.ViewInterner`) so that

* the view history ``V_{p}(a^s)`` for ``0 <= s <= t`` is available in O(1),
* extending a prefix by one round costs ``O(n * deg)`` interner operations,
* two prefixes built on the same interner compare views by integer equality.

The prefix also exposes the explicit node/edge representation of the
process-time graph used by Figure 2 of the paper.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.digraph import Digraph
from repro.core.graphword import GraphWord
from repro.core.inputs import unanimity_value
from repro.core.views import ViewInterner
from repro.errors import AnalysisError, InvalidInputError

__all__ = ["PTGPrefix"]


class PTGPrefix:
    """A finite prefix of a process-time graph sequence.

    Parameters
    ----------
    interner:
        The shared view store.  Prefixes are only comparable (and only
        cheaply so) when they share an interner.
    inputs:
        The input assignment ``x``; one value per process.
    graphs:
        The communication graphs ``(G_1, ..., G_t)``; may be empty (t = 0).

    Examples
    --------
    >>> from repro.core.digraph import arrow
    >>> interner = ViewInterner(2)
    >>> a = PTGPrefix(interner, (0, 1), [arrow("->")])
    >>> interner.pid(a.view(1))
    1
    """

    __slots__ = ("interner", "inputs", "graphs", "_view_history")

    def __init__(
        self,
        interner: ViewInterner,
        inputs: Sequence,
        graphs: Iterable[Digraph] = (),
        _history: tuple[tuple[int, ...], ...] | None = None,
    ) -> None:
        inputs = tuple(inputs)
        if len(inputs) != interner.n:
            raise InvalidInputError(
                f"assignment {inputs!r} has length {len(inputs)}, expected {interner.n}"
            )
        graphs = tuple(graphs)
        for g in graphs:
            if g.n != interner.n:
                raise AnalysisError("graph size does not match interner size")
        object.__setattr__(self, "interner", interner)
        object.__setattr__(self, "inputs", inputs)
        object.__setattr__(self, "graphs", graphs)
        if _history is None:
            _history = self._build_history(interner, inputs, graphs)
        object.__setattr__(self, "_view_history", _history)

    @classmethod
    def _make(
        cls,
        interner: ViewInterner,
        inputs: tuple,
        graphs: tuple[Digraph, ...],
        history: tuple[tuple[int, ...], ...],
    ) -> "PTGPrefix":
        """Internal unchecked constructor (inputs/graphs already validated)."""
        self = object.__new__(cls)
        sset = object.__setattr__
        sset(self, "interner", interner)
        sset(self, "inputs", inputs)
        sset(self, "graphs", graphs)
        sset(self, "_view_history", history)
        return self

    @staticmethod
    def _build_history(
        interner: ViewInterner, inputs: tuple, graphs: tuple[Digraph, ...]
    ) -> tuple[tuple[int, ...], ...]:
        level = interner.leaf_level(inputs)
        history = [level]
        for g in graphs:
            level = interner.extend_level(level, g)
            history.append(level)
        return tuple(history)

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of processes."""
        return self.interner.n

    @property
    def depth(self) -> int:
        """The prefix length ``t`` (number of completed rounds)."""
        return len(self.graphs)

    @property
    def word(self) -> GraphWord:
        """The underlying graph word."""
        return GraphWord(self.graphs, n=self.n)

    @property
    def unanimous_value(self):
        """The common input value if the assignment is unanimous, else None.

        Unanimous prefixes are the ``v``-valent elements ``z_v`` of the
        paper's Section 5.1.
        """
        return unanimity_value(self.inputs)

    def extended(self, graph: Digraph) -> "PTGPrefix":
        """The prefix with one more round appended (shares the history)."""
        if graph.n != self.interner.n:
            raise AnalysisError("appended graph has wrong n")
        history = self._view_history
        level = self.interner.extend_level(history[-1], graph)
        return PTGPrefix._make(
            self.interner,
            self.inputs,
            self.graphs + (graph,),
            history + (level,),
        )

    def truncated(self, t: int) -> "PTGPrefix":
        """The depth-``t`` prefix of this prefix."""
        if not 0 <= t <= self.depth:
            raise AnalysisError(f"cannot truncate depth-{self.depth} prefix to {t}")
        return PTGPrefix._make(
            self.interner,
            self.inputs,
            self.graphs[:t],
            self._view_history[: t + 1],
        )

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #

    def view(self, p: int, t: int | None = None) -> int:
        """The interned view id of process ``p`` at time ``t`` (default: now)."""
        if t is None:
            t = self.depth
        if not 0 <= t <= self.depth:
            raise AnalysisError(f"time {t} outside prefix of depth {self.depth}")
        return self._view_history[t][p]

    def views(self, t: int | None = None) -> tuple[int, ...]:
        """All processes' view ids at time ``t`` (default: current depth)."""
        if t is None:
            t = self.depth
        if not 0 <= t <= self.depth:
            raise AnalysisError(f"time {t} outside prefix of depth {self.depth}")
        return self._view_history[t]

    def view_history(self) -> tuple[tuple[int, ...], ...]:
        """The full ``(t+1) x n`` table of view ids."""
        return self._view_history

    def knows_input_of(self, observer: int, source: int, t: int | None = None) -> bool:
        """Whether ``observer``'s view at ``t`` contains ``(source, 0, x)``."""
        return self.interner.knows_input_of(self.view(observer, t), source)

    def heard_by_all_mask(self, t: int | None = None) -> int:
        """Bitmask of processes whose input every process knows at time ``t``.

        A process ``p`` with its bit set has *broadcast* by round ``t`` in
        the sense of Definition 5.8.
        """
        views = self.views(t)
        masks = self.interner._origin_mask
        mask = (1 << self.interner.n) - 1
        for vid in views:
            mask &= masks[vid]
        return mask

    def broadcasters(self, t: int | None = None) -> frozenset[int]:
        """The processes that have broadcast by round ``t``."""
        mask = self.heard_by_all_mask(t)
        return frozenset(p for p in range(self.n) if mask >> p & 1)

    # ------------------------------------------------------------------ #
    # Explicit process-time graph (Figure 2)
    # ------------------------------------------------------------------ #

    def ptg_nodes(self) -> list:
        """All process-time nodes: ``(p, 0, x_p)`` then ``(p, t)`` per round."""
        nodes: list = [(p, 0, self.inputs[p]) for p in range(self.n)]
        for t in range(1, self.depth + 1):
            nodes.extend((p, t) for p in range(self.n))
        return nodes

    def ptg_edges(self, include_self_loops: bool = True) -> list:
        """Edges ``((p, t-1), (q, t))`` for ``(p, q)`` in ``G_t``.

        The paper draws only the explicit communication edges; the
        self-transfer edges ``(p, t-1) -> (p, t)`` that make a process
        remember its own state are included by default and can be switched
        off to match the figure exactly.
        """
        edges = []
        for t in range(1, self.depth + 1):
            g = self.graphs[t - 1]
            for u, v in sorted(g.edges):
                edges.append(((u, t - 1), (v, t)))
            if include_self_loops:
                edges.extend(((p, t - 1), (p, t)) for p in range(self.n))
        return edges

    def cone(self, p: int, t: int | None = None) -> tuple[set, set]:
        """The causal past of ``(p, t)`` as explicit nodes/edges."""
        return self.interner.cone(self.view(p, t))

    # ------------------------------------------------------------------ #
    # Dunder protocol
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PTGPrefix):
            return NotImplemented
        return (
            self.interner is other.interner
            and self.inputs == other.inputs
            and self.graphs == other.graphs
        )

    def __hash__(self) -> int:
        return hash((id(self.interner), self.inputs, self.graphs))

    def __repr__(self) -> str:
        return f"PTGPrefix(inputs={self.inputs!r}, depth={self.depth})"

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("PTGPrefix is immutable")
