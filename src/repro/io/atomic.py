"""Crash-safe file primitives — the only module that may write raw files.

Every persistent state document of the library — fleet coordination files
(:mod:`repro.fleet`) and result-store objects (:mod:`repro.store`) alike —
goes through one of four write shapes, each safe against SIGKILL at any
instruction:

* :func:`atomic_write_json` / :func:`atomic_write_text` — write-temp-then-
  ``os.replace``: readers see the old document or the new one, never a
  torn mix (lease renewals, the attempt ledger, the poison list, rebuilt
  merges, store objects, compacted journals);
* :func:`atomic_create_json` — write-temp-then-``os.link``: hard-linking
  the temp into place is an *exclusive* create, so when several workers
  race to claim one shard the filesystem picks exactly one winner (a
  plain rename would silently overwrite the other claim);
* :func:`append_line` — append + flush + fsync: journals and attempt
  outputs grow by whole lines, and a kill mid-append leaves at worst one
  torn trailing line, which the recovery readers truncate;
* reads return ``None`` for files that do not exist yet, because absence
  is a normal state (an unclaimed shard simply has no lease file; an
  uncached key simply has no object file).

This module grew out of ``repro.fleet.files`` (which now re-exports it
unchanged); repro-lint rule R9 enforces the funnel for both consumers:
any module under ``repro.fleet`` or ``repro.store`` that opens a file for
writing outside this module is a lint error.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from pathlib import Path
from typing import Any

__all__ = [
    "atomic_write_json",
    "atomic_write_text",
    "atomic_create_json",
    "atomic_replace_file",
    "append_line",
    "overwrite_bytes",
    "read_json",
    "read_lines",
    "sha256_file",
    "fsync_dir",
]


def fsync_dir(directory: Path) -> None:
    """Best-effort fsync of a directory entry (rename durability)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


#: Distinguishes temp files of concurrent writers *within* one process
#: (heartbeat threads, racing test claimants); the pid handles the rest.
_TEMP_SERIAL = itertools.count()


def _temp_path(path: Path) -> Path:
    # Same directory as the target (os.replace/os.link must not cross
    # filesystems); pid+serial-suffixed so concurrent writers — other
    # processes or other threads of this one — never collide.
    serial = next(_TEMP_SERIAL)
    return path.with_name(f".{path.name}.{os.getpid()}.{serial}.tmp")


def _write_temp_text(path: Path, text: str) -> Path:
    temp = _temp_path(path)
    with temp.open("w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    return temp


def _write_temp(path: Path, payload: dict[str, Any]) -> Path:
    return _write_temp_text(path, json.dumps(payload, sort_keys=True, indent=1) + "\n")


def atomic_write_json(path: str | Path, payload: dict[str, Any]) -> None:
    """Replace ``path`` with a JSON document, atomically."""
    path = Path(path)
    temp = _write_temp(path, payload)
    os.replace(temp, path)
    fsync_dir(path.parent)


def atomic_write_text(path: str | Path, text: str) -> None:
    """Replace ``path`` with arbitrary text, atomically.

    The non-JSON sibling of :func:`atomic_write_json`: same temp-then-
    ``os.replace`` shape, for payloads that are not a single JSON object
    (e.g. a compacted JSONL journal).
    """
    path = Path(path)
    temp = _write_temp_text(path, text)
    os.replace(temp, path)
    fsync_dir(path.parent)


def atomic_create_json(path: str | Path, payload: dict[str, Any]) -> bool:
    """Create ``path`` exclusively; True iff this caller won the race.

    The hard-link trick: ``os.link(temp, path)`` fails with
    ``FileExistsError`` when the target exists, and the link itself is
    atomic — so of any number of concurrent claimants, exactly one
    returns True and everyone else sees False with the winner's document
    in place.
    """
    path = Path(path)
    temp = _write_temp(path, payload)
    try:
        os.link(temp, path)
    except FileExistsError:
        return False
    finally:
        temp.unlink(missing_ok=True)
    fsync_dir(path.parent)
    return True


def atomic_replace_file(temp: str | Path, path: str | Path) -> None:
    """Move a fully-written temp file into place (for non-JSON payloads)."""
    path = Path(path)
    os.replace(temp, path)
    fsync_dir(path.parent)


def append_line(path: str | Path, line: str) -> None:
    """Append one line durably (flush + fsync before returning).

    A kill during the write leaves at most one torn trailing line; every
    reader of appended files goes through a recovery parse that truncates
    exactly that.
    """
    path = Path(path)
    with path.open("a", encoding="utf-8") as handle:
        handle.write(line + "\n")
        handle.flush()
        os.fsync(handle.fileno())


def read_json(path: str | Path) -> dict[str, Any] | None:
    """Load a JSON state document; ``None`` when the file does not exist."""
    try:
        text = Path(path).read_text(encoding="utf-8")
    except FileNotFoundError:
        return None
    data = json.loads(text)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: state documents are JSON objects")
    return data


def read_lines(path: str | Path) -> list[str] | None:
    """All lines of a text file; ``None`` when the file does not exist."""
    try:
        with Path(path).open("r", encoding="utf-8") as handle:
            return handle.readlines()
    except FileNotFoundError:
        return None


def overwrite_bytes(path: str | Path, offset: int, data: bytes) -> None:
    """Deliberately clobber bytes in place — the chaos harness only.

    This is the *opposite* of crash-safe, which is exactly why it lives
    here: the fault injector needs one in-place write primitive, and
    keeping it in the R9 funnel means every other state module still
    cannot tear a file.
    """
    with Path(path).open("r+b") as handle:
        handle.seek(max(0, offset))
        handle.write(data)


def sha256_file(path: str | Path) -> str:
    """Hex digest of a file's bytes (attempt-output validation)."""
    digest = hashlib.sha256()
    with Path(path).open("rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()
