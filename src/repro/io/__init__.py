"""Shared low-level I/O primitives.

:mod:`repro.io.atomic` is the crash-safe write funnel used by every
subsystem that persists state — the fault-tolerant fleet runner
(:mod:`repro.fleet`) and the content-addressed result store
(:mod:`repro.store`).  repro-lint rule R9 enforces that those packages
never open a file for writing outside the funnel.
"""

from __future__ import annotations

from repro.io.atomic import (
    append_line,
    atomic_create_json,
    atomic_replace_file,
    atomic_write_json,
    atomic_write_text,
    fsync_dir,
    overwrite_bytes,
    read_json,
    read_lines,
    sha256_file,
)

__all__ = [
    "append_line",
    "atomic_create_json",
    "atomic_replace_file",
    "atomic_write_json",
    "atomic_write_text",
    "fsync_dir",
    "overwrite_bytes",
    "read_json",
    "read_lines",
    "sha256_file",
]
