"""The asyncio consensus-query service and its load-test harness.

``repro-consensus serve`` answers solvability queries over a
newline-delimited-JSON TCP protocol (:data:`repro.schemas.
SERVICE_PROTOCOL`): *hot* queries — (spec, options) pairs already in the
content-addressed result store — are answered in O(1) straight off the
event loop; *cold* queries coalesce by cache key onto a bounded worker
pool, with a job-status endpoint and optional streamed progress for
clients that wait.  :mod:`repro.service.loadtest` drives thousands of
concurrent mixed hot/cold queries against a live server and verifies
that no response is lost or duplicated.
"""

from __future__ import annotations

from repro.service.loadtest import LoadReport, run_load_test
from repro.service.server import QueryService, execute_query

__all__ = [
    "LoadReport",
    "QueryService",
    "execute_query",
    "run_load_test",
]
