"""The asyncio consensus-query server behind ``repro-consensus serve``.

Protocol (:data:`~repro.schemas.SERVICE_PROTOCOL`): newline-delimited
JSON over TCP.  On connect the server sends one hello line::

    {"schema": "repro.service-protocol/1", "ok": true, ...}

and then answers one response (or, for waiting queries, a short event
stream ending in one terminal response) per request line.  Every request
carries a client-chosen ``id`` which every line sent for it echoes back
— the property the load harness uses to prove no response is lost or
duplicated.  Requests:

``{"op": "query", "id": ..., "spec": {...}, "options": {...}?, "wait": bool?}``
    Classify one adversary.  Hot path: the (spec, options) pair hashes
    to a key already in the store — answered immediately from the event
    loop, no checker work, ``"hot": true``.  Cold path: the query
    coalesces by cache key with any identical in-flight query and joins
    the bounded worker queue.  With ``"wait": true`` the connection
    streams ``queued`` / ``started`` events and then the terminal record
    response; otherwise it gets ``{"accepted": true, "job": <key>}``
    back at once and polls ``status``.  A full queue rejects the query
    (``"error": "queue full"``) rather than buffering unboundedly.
``{"op": "status", "id": ..., "job": <key>}``
    One of ``queued`` / ``running`` / ``done`` (with the record) /
    ``unknown``.  Jobs finish into the store, so ``done`` survives
    server restarts — any key whose object exists reports done.
``{"op": "stats", "id": ...}``
    Store counters plus live queue/inflight depths.
``{"op": "ping", "id": ...}``
    Liveness probe.

Checker work runs on a thread pool (``workers`` threads) via
``run_in_executor``; the store is touched only from the event loop, so
its counters and journal never race.  Worker threads are CPU-bound and
GIL-serialized — the pool bounds memory and keeps the event loop (and
therefore every hot query) responsive, which is the point: hot queries
are O(1) *regardless* of how much cold work is queued behind them.
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro.backends import SerialBackend, SweepJob
from repro.consensus.solvability import CheckOptions
from repro.errors import AnalysisError, ReproError
from repro.records import RunRecord
from repro.schemas import SERVICE_PROTOCOL
from repro.specs import AdversarySpec
from repro.store.cache import ResultStore
from repro.store.keys import cache_key

__all__ = ["QueryService", "execute_query"]

#: Longest request line the server will read before dropping the client
#: (a spec dict is a few hundred bytes; a megabyte is already hostile).
_LINE_LIMIT = 1 << 20


def execute_query(
    spec_dict: dict[str, Any], options_dict: dict[str, Any]
) -> dict[str, Any]:
    """Run one cold query to a normalized record dict (worker entry point).

    Top-level and argument/return-picklable on purpose, so the service
    can move it onto any executor.  Uses the ``record_timing=False``
    serial backend — the exact configuration whose records the store
    caches byte-identically.
    """
    spec = AdversarySpec.from_dict(spec_dict)
    options = CheckOptions.from_dict(options_dict)
    job = SweepJob(0, max_depth=options.max_depth, spec=spec)
    [record] = SerialBackend(record_timing=False).run([job], options)
    return record.to_dict()


class _Job:
    """One coalesced cold computation, identified by its cache key."""

    __slots__ = ("key", "spec_dict", "options_dict", "state", "started", "done")

    def __init__(
        self,
        key: str,
        spec_dict: dict[str, Any],
        options_dict: dict[str, Any],
    ) -> None:
        self.key = key
        self.spec_dict = spec_dict
        self.options_dict = options_dict
        #: ``queued`` -> ``running`` -> (job leaves the table: the store
        #: answers ``done`` from then on).
        self.state = "queued"
        #: Fires when a worker dequeues the job (progress streaming).
        self.started: asyncio.Event = asyncio.Event()
        #: Fires when the job reaches the store (or fails); waiters and
        #: the status endpoint read the store afterwards.
        self.done: asyncio.Event = asyncio.Event()


class QueryService:
    """The query server: one store, one bounded cold-work queue.

    Use as an async context manager or call :meth:`start` /
    :meth:`stop`; :meth:`serve_forever` is the CLI entry.
    """

    def __init__(
        self,
        store: ResultStore,
        workers: int = 2,
        queue_limit: int = 64,
    ) -> None:
        if workers < 1:
            raise AnalysisError("QueryService needs workers >= 1")
        if queue_limit < 1:
            raise AnalysisError("QueryService needs queue_limit >= 1")
        self.store = store
        self.workers = workers
        self.queue_limit = queue_limit
        #: Cold queries answered without checker work because an equal
        #: key was already in flight when they arrived.
        self.coalesced = 0
        self.rejected = 0
        self.queries = 0
        self._jobs: dict[str, _Job] = {}
        self._queue: asyncio.Queue[_Job] = asyncio.Queue()
        self._executor: ThreadPoolExecutor | None = None
        self._worker_tasks: list[asyncio.Task[None]] = []
        self._server: asyncio.AbstractServer | None = None

    # ------------------------------------------------------------- #
    # Lifecycle
    # ------------------------------------------------------------- #

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-query"
        )
        self._worker_tasks = [
            asyncio.get_running_loop().create_task(self._worker())
            for _ in range(self.workers)
        ]
        self._server = await asyncio.start_server(
            self._handle_connection, host, port, limit=_LINE_LIMIT
        )
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in self._worker_tasks:
            task.cancel()
        for task in self._worker_tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._worker_tasks = []
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        async with self._server:
            await self._server.serve_forever()

    async def __aenter__(self) -> "QueryService":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # ------------------------------------------------------------- #
    # Connection handling
    # ------------------------------------------------------------- #

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, payload: dict[str, Any]) -> None:
        writer.write(json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n")
        await writer.drain()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await self._send(
                writer,
                {"schema": SERVICE_PROTOCOL, "ok": True, "server": "repro-consensus"},
            )
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    break  # oversized request: drop the client
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                await self._handle_request_line(writer, line)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to clean up
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_request_line(
        self, writer: asyncio.StreamWriter, line: bytes
    ) -> None:
        try:
            request = json.loads(line.decode("utf-8"))
            if not isinstance(request, dict):
                raise ValueError("requests are JSON objects")
        except (ValueError, UnicodeDecodeError):
            await self._send(
                writer, {"ok": False, "id": None, "error": "unparsable request"}
            )
            return
        request_id = request.get("id")
        op = request.get("op")
        try:
            if op == "ping":
                await self._send(writer, {"ok": True, "id": request_id, "pong": True})
            elif op == "stats":
                await self._send(
                    writer, {"ok": True, "id": request_id, "stats": self.stats()}
                )
            elif op == "status":
                await self._send(writer, self._status(request_id, request))
            elif op == "query":
                await self._handle_query(writer, request_id, request)
            else:
                await self._send(
                    writer,
                    {"ok": False, "id": request_id, "error": f"unknown op {op!r}"},
                )
        except ReproError as exc:
            await self._send(writer, {"ok": False, "id": request_id, "error": str(exc)})

    def stats(self) -> dict[str, Any]:
        stats = self.store.stats()
        stats.update(
            {
                "queries": self.queries,
                "coalesced": self.coalesced,
                "rejected": self.rejected,
                "queued": self._queue.qsize(),
                "inflight": len(self._jobs),
                "workers": self.workers,
                "queue_limit": self.queue_limit,
            }
        )
        return stats

    def _status(self, request_id: Any, request: dict[str, Any]) -> dict[str, Any]:
        key = request.get("job")
        if not isinstance(key, str) or not key:
            return {"ok": False, "id": request_id, "error": "status needs a job key"}
        job = self._jobs.get(key)
        if job is not None:
            return {"ok": True, "id": request_id, "job": key, "state": job.state}
        record = self.store.get_by_key(key)
        if record is not None:
            return {
                "ok": True,
                "id": request_id,
                "job": key,
                "state": "done",
                "record": record.to_dict(),
            }
        return {"ok": True, "id": request_id, "job": key, "state": "unknown"}

    # ------------------------------------------------------------- #
    # Queries
    # ------------------------------------------------------------- #

    async def _handle_query(
        self, writer: asyncio.StreamWriter, request_id: Any, request: dict[str, Any]
    ) -> None:
        self.queries += 1
        spec_dict = request.get("spec")
        if not isinstance(spec_dict, dict):
            await self._send(
                writer, {"ok": False, "id": request_id, "error": "query needs a spec"}
            )
            return
        options_request = request.get("options", {})
        if not isinstance(options_request, dict):
            await self._send(
                writer,
                {"ok": False, "id": request_id, "error": "options must be an object"},
            )
            return
        # Validation (unknown families, unknown option keys) raises
        # ReproError, answered as an error response by the caller.
        spec = AdversarySpec.from_dict(spec_dict)
        options = CheckOptions.from_dict(options_request)
        key = cache_key(spec, options)

        record = self.store.get_by_key(key)
        if record is not None:
            await self._send(
                writer,
                {
                    "ok": True,
                    "id": request_id,
                    "hot": True,
                    "job": key,
                    "record": record.to_dict(),
                },
            )
            return

        job = self._jobs.get(key)
        if job is None:
            if self._queue.qsize() >= self.queue_limit:
                self.rejected += 1
                await self._send(
                    writer,
                    {"ok": False, "id": request_id, "job": key, "error": "queue full"},
                )
                return
            job = _Job(key, spec.to_dict(), options.to_dict())
            self._jobs[key] = job
            self._queue.put_nowait(job)
        else:
            self.coalesced += 1

        if not request.get("wait"):
            await self._send(
                writer,
                {
                    "ok": True,
                    "id": request_id,
                    "accepted": True,
                    "job": key,
                    "state": job.state,
                },
            )
            return

        await self._send(
            writer, {"id": request_id, "event": job.state, "job": key}
        )
        await self._stream_wait(writer, request_id, job)

    async def _stream_wait(
        self, writer: asyncio.StreamWriter, request_id: Any, job: _Job
    ) -> None:
        # Progress: emit "started" when the job leaves the queue, then
        # the terminal response once it lands in the store (or fails).
        if job.state == "queued":
            await job.started.wait()
            await self._send(
                writer, {"id": request_id, "event": "started", "job": job.key}
            )
        await job.done.wait()
        record = self.store.get_by_key(job.key)
        if record is None:
            await self._send(
                writer,
                {
                    "ok": False,
                    "id": request_id,
                    "job": job.key,
                    "error": "query execution failed",
                },
            )
            return
        await self._send(
            writer,
            {
                "ok": True,
                "id": request_id,
                "hot": False,
                "job": job.key,
                "record": record.to_dict(),
            },
        )

    # ------------------------------------------------------------- #
    # Cold-work pool
    # ------------------------------------------------------------- #

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job = await self._queue.get()
            job.state = "running"
            job.started.set()
            try:
                record_dict = await loop.run_in_executor(
                    self._executor, execute_query, job.spec_dict, job.options_dict
                )
            except ReproError:
                record_dict = None
            if record_dict is not None:
                # Store writes stay on the event loop: counters and the
                # journal are only ever touched from here.
                self.store.put(
                    AdversarySpec.from_dict(job.spec_dict),
                    CheckOptions.from_dict(job.options_dict),
                    RunRecord.from_dict(record_dict),
                )
            del self._jobs[job.key]
            job.done.set()
            self._queue.task_done()
