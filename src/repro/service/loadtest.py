"""Concurrent load harness for the consensus-query service.

Drives a configurable mix of *hot* queries (drawn round-robin from a
small pre-warmed pool of specs, expected to be O(1) store lookups) and
*cold* queries (each a distinct never-seen spec, expected to queue onto
the worker pool) against a live server, from many concurrent client
connections, and then audits the exchange:

* every request carries a unique ``id``;
* the multiset of response ids must equal the multiset of request ids —
  one terminal response per request, none lost, none duplicated;
* hot requests must come back ``"hot": true``.

The mix schedule is deterministic (query ``i`` is cold iff
``i % cold_stride == 0``) — no entropy, per lint rule R3 — so two runs
of the harness issue the identical query sequence.  Latency statistics
use ``time.perf_counter`` (monotonic, allowed by R3) and are reported,
not asserted: the correctness claims are the id audit and the hot flags.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Sequence

from repro.consensus.solvability import CheckOptions
from repro.errors import AnalysisError
from repro.schemas import SERVICE_PROTOCOL
from repro.specs import AdversarySpec

__all__ = ["LoadReport", "run_load_test", "default_hot_specs", "default_cold_specs"]


def default_hot_specs(count: int = 4) -> list[AdversarySpec]:
    """A small pool of cheap, distinct specs to pre-warm as the hot set."""
    if count < 1:
        raise AnalysisError("need at least one hot spec")
    return [
        AdversarySpec("random-oblivious", {"n": 2, "size": 2}, seed=seed)
        for seed in range(count)
    ]


def default_cold_specs(count: int) -> list[AdversarySpec]:
    """``count`` distinct never-repeating specs for the cold stream.

    Seeds are offset far away from :func:`default_hot_specs` so the two
    pools can never alias to the same cache key.
    """
    return [
        AdversarySpec("random-oblivious", {"n": 2, "size": 2}, seed=1_000_000 + index)
        for index in range(count)
    ]


class LoadReport:
    """Outcome of one load-test run (see :func:`run_load_test`)."""

    __slots__ = (
        "total",
        "hot_requests",
        "cold_requests",
        "responses",
        "hot_hits",
        "errors",
        "lost_ids",
        "duplicated_ids",
        "mismatched_hot",
        "hot_latency_s",
        "cold_latency_s",
    )

    def __init__(self) -> None:
        self.total = 0
        self.hot_requests = 0
        self.cold_requests = 0
        self.responses = 0
        self.hot_hits = 0
        self.errors = 0
        self.lost_ids: list[str] = []
        self.duplicated_ids: list[str] = []
        #: Requests issued against a pre-warmed spec that did not come
        #: back ``"hot": true`` — should be empty after warm-up.
        self.mismatched_hot = 0
        self.hot_latency_s: list[float] = []
        self.cold_latency_s: list[float] = []

    @property
    def ok(self) -> bool:
        """No lost, duplicated, errored, or wrongly-cold responses."""
        return (
            self.responses == self.total
            and not self.lost_ids
            and not self.duplicated_ids
            and self.errors == 0
            and self.mismatched_hot == 0
        )

    @staticmethod
    def _percentile(samples: list[float], fraction: float) -> float | None:
        if not samples:
            return None
        ordered = sorted(samples)
        position = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[position]

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "total": self.total,
            "hot_requests": self.hot_requests,
            "cold_requests": self.cold_requests,
            "responses": self.responses,
            "hot_hits": self.hot_hits,
            "errors": self.errors,
            "lost": len(self.lost_ids),
            "duplicated": len(self.duplicated_ids),
            "mismatched_hot": self.mismatched_hot,
            "hot_latency_p50_s": self._percentile(self.hot_latency_s, 0.50),
            "hot_latency_p99_s": self._percentile(self.hot_latency_s, 0.99),
            "cold_latency_p50_s": self._percentile(self.cold_latency_s, 0.50),
            "cold_latency_p99_s": self._percentile(self.cold_latency_s, 0.99),
        }


class _Client:
    """One NDJSON client connection."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "_Client":
        reader, writer = await asyncio.open_connection(host, port)
        hello = json.loads((await reader.readline()).decode("utf-8"))
        if hello.get("schema") != SERVICE_PROTOCOL:
            raise AnalysisError(
                f"server speaks {hello.get('schema')!r}, "
                f"expected {SERVICE_PROTOCOL!r}"
            )
        return cls(reader, writer)

    async def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one request; read lines until its terminal response.

        Progress events (lines with an ``event`` field) are consumed and
        discarded — the terminal line is the one carrying ``ok``.
        """
        self.writer.write(json.dumps(payload).encode("utf-8") + b"\n")
        await self.writer.drain()
        while True:
            line = await self.reader.readline()
            if not line:
                raise ConnectionError("server closed mid-request")
            response = json.loads(line.decode("utf-8"))
            if "ok" in response:
                return response

    async def close(self) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _warm(
    host: str, port: int, specs: Sequence[AdversarySpec], options: CheckOptions
) -> None:
    client = await _Client.connect(host, port)
    try:
        for index, spec in enumerate(specs):
            response = await client.request(
                {
                    "op": "query",
                    "id": f"warm-{index}",
                    "spec": spec.to_dict(),
                    "options": options.to_dict(),
                    "wait": True,
                }
            )
            if not response.get("ok"):
                raise AnalysisError(f"warm-up query failed: {response}")
    finally:
        await client.close()


async def run_load_test(
    host: str,
    port: int,
    total: int = 1000,
    cold_stride: int = 10,
    connections: int = 50,
    hot_specs: Sequence[AdversarySpec] | None = None,
    options: CheckOptions | None = None,
    warm: bool = True,
) -> LoadReport:
    """Drive ``total`` mixed queries over ``connections`` concurrent clients.

    Query ``i`` is cold iff ``i % cold_stride == 0`` (so ``cold_stride=10``
    is the 90/10 hot/cold mix); hot queries cycle through ``hot_specs``.
    Cold queries use ``wait=True`` (the response is the record); hot
    queries omit it — a hot lookup answers immediately either way, and a
    non-hot answer to a hot request is counted in ``mismatched_hot``.
    Queries are pre-partitioned round-robin across the connections, each
    connection runs its slice sequentially, all connections run
    concurrently.
    """
    if total < 1:
        raise AnalysisError("load test needs total >= 1")
    if cold_stride < 1:
        raise AnalysisError("load test needs cold_stride >= 1")
    if connections < 1:
        raise AnalysisError("load test needs connections >= 1")
    specs = list(hot_specs) if hot_specs is not None else default_hot_specs()
    opts = options if options is not None else CheckOptions(max_depth=2)
    if warm:
        await _warm(host, port, specs, opts)

    cold_needed = len(range(0, total, cold_stride))
    cold_pool = default_cold_specs(cold_needed)
    requests: list[tuple[str, bool, AdversarySpec]] = []
    cold_used = 0
    for index in range(total):
        cold = index % cold_stride == 0
        if cold:
            spec = cold_pool[cold_used]
            cold_used += 1
        else:
            spec = specs[index % len(specs)]
        requests.append((f"q-{index}", cold, spec))

    report = LoadReport()
    report.total = total
    report.cold_requests = sum(1 for _, cold, _ in requests if cold)
    report.hot_requests = total - report.cold_requests
    seen: dict[str, int] = {}
    lock = asyncio.Lock()

    async def drive(slice_requests: list[tuple[str, bool, AdversarySpec]]) -> None:
        client = await _Client.connect(host, port)
        try:
            for request_id, cold, spec in slice_requests:
                payload: dict[str, Any] = {
                    "op": "query",
                    "id": request_id,
                    "spec": spec.to_dict(),
                    "options": opts.to_dict(),
                }
                if cold:
                    payload["wait"] = True
                start = time.perf_counter()
                response = await client.request(payload)
                elapsed = time.perf_counter() - start
                async with lock:
                    report.responses += 1
                    seen[request_id] = seen.get(request_id, 0) + 1
                    if response.get("id") != request_id:
                        # A response for an id we never sent on this
                        # connection is a routing bug: count it lost
                        # below and flag the stray as duplicated.
                        seen[str(response.get("id"))] = (
                            seen.get(str(response.get("id")), 0) + 1
                        )
                        seen[request_id] -= 1
                    if not response.get("ok"):
                        report.errors += 1
                    elif cold:
                        report.cold_latency_s.append(elapsed)
                    else:
                        report.hot_latency_s.append(elapsed)
                        if response.get("hot"):
                            report.hot_hits += 1
                        else:
                            report.mismatched_hot += 1
        finally:
            await client.close()

    slices = [requests[k::connections] for k in range(connections)]
    await asyncio.gather(*(drive(s) for s in slices if s))

    for request_id, _, _ in requests:
        count = seen.get(request_id, 0)
        if count == 0:
            report.lost_ids.append(request_id)
        elif count > 1:
            report.duplicated_ids.append(request_id)
    return report
