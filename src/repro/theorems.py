"""Executable statements of the paper's theorems.

Each function checks one theorem/lemma on concrete objects and raises
:class:`~repro.errors.AnalysisError` with a precise message when the
claimed property fails.  They serve three purposes: (i) the test suite runs
them on randomized instances, turning the paper's proofs into regression
tests; (ii) the benchmarks call them to document which claim each artifact
certifies; (iii) they are living documentation — the statement of each
theorem in code, next to its section number.

Implemented statements:

* :func:`theorem_4_3`   — properties of the P-pseudo-metric;
* :func:`lemma_4_8`     — the min-formula for ``d_min``;
* :func:`lemma_4_5`     — continuity of the transition function ``τ``
  (state divergence can never precede view divergence);
* :func:`lemma_5_2`     — continuity (local constancy) of the decision map;
* :func:`theorem_5_4`   — decision sets are clopen: unions of components;
* :func:`theorem_5_9`   — broadcastable connected sets have diameter ≤ 1/2
  and a constant broadcaster input;
* :func:`corollary_6_1` — for compact adversaries the (algorithm's)
  decision sets are positively separated at every depth.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.consensus.decision import DecisionTable
from repro.core.distances import d_max, d_min, d_p, d_view, divergence_time
from repro.core.ptg import PTGPrefix
from repro.errors import AnalysisError
from repro.simulation.algorithms import ConsensusAlgorithm
from repro.simulation.traces import trace_divergence_time, trace_of
from repro.topology.components import Component, ComponentAnalysis
from repro.topology.separation import node_set_diameter, node_set_distance

__all__ = [
    "theorem_4_3",
    "lemma_4_5",
    "lemma_4_8",
    "lemma_5_2",
    "theorem_5_4",
    "theorem_5_9",
    "corollary_6_1",
]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise AnalysisError(f"theorem violation: {message}")


def theorem_4_3(a: PTGPrefix, b: PTGPrefix, c: PTGPrefix) -> None:
    """Properties of the P-pseudo-metric (symmetry, triangle, monotonicity,
    common-prefix identity), checked on a concrete triple."""
    n = a.n
    processes = tuple(range(n))
    for p in processes:
        _require(d_p(a, b, p) == d_p(b, a, p), "symmetry of d_p")
        _require(
            d_p(a, c, p) <= d_p(a, b, p) + d_p(b, c, p) + 1e-12,
            "triangle inequality of d_p",
        )
    for size in range(1, n):
        small = processes[:size]
        large = processes[: size + 1]
        _require(
            d_view(a, b, small) <= d_view(a, b, large),
            "monotonicity of d_P in P",
        )
    _require(d_view(a, b, processes) == d_max(a, b), "d_[n] equals d_max")


def lemma_4_8(a: PTGPrefix, b: PTGPrefix) -> None:
    """``d_min = min_p d_p`` (the product-formula of Lemma 4.8)."""
    _require(
        d_min(a, b) == min(d_p(a, b, p) for p in range(a.n)),
        "min-formula for d_min",
    )


def lemma_4_5(
    algorithm: ConsensusAlgorithm,
    a: PTGPrefix,
    b: PTGPrefix,
    processes: Iterable[int] | None = None,
) -> None:
    """Continuity of ``τ``: states cannot diverge before views do.

    For any deterministic algorithm, the local state of ``p`` at time ``t``
    is a function of ``p``'s view at time ``t``; hence if the views of
    every ``p ∈ P`` agree up to ``t``, so do the states, i.e.
    ``d_P(τ(a), τ(b)) <= d_P(a, b)``.
    """
    trace_a = trace_of(algorithm, a.inputs, a.word)
    trace_b = trace_of(algorithm, b.inputs, b.word)
    subset = tuple(range(a.n)) if processes is None else tuple(processes)
    view_time = divergence_time(a, b, subset)
    state_time = trace_divergence_time(trace_a, trace_b, subset)
    if state_time is not None:
        _require(
            view_time is not None and state_time >= view_time,
            f"states diverge at {state_time} before views "
            f"({view_time}) — τ not continuous",
        )


def lemma_5_2(table: DecisionTable, a, b) -> None:
    """Local constancy of the decision map ``Δ`` (continuity).

    If two admissible prefixes are within ``2^{-depth}`` of each other in
    the minimum topology (some process shares its full view), their runs
    decide the same value under the table's algorithm.
    """
    depth = table.depth
    views_a = a.prefix.views(depth)
    views_b = b.prefix.views(depth)
    if not any(views_a[p] == views_b[p] for p in range(a.prefix.n)):
        return
    decision_a = {table.early.get(v) for v in views_a}
    decision_b = {table.early.get(v) for v in views_b}
    _require(
        decision_a == decision_b and len(decision_a) == 1,
        "decision map not locally constant on an indistinguishable pair",
    )


def theorem_5_4(analysis: ComponentAnalysis, table: DecisionTable) -> None:
    """Decision sets are clopen: every component maps to a single value."""
    _require(analysis.depth == table.depth, "analysis/table depth mismatch")
    for component in analysis.components:
        values = set()
        for node in component.members():
            values.update(
                table.early.get(v) for v in node.prefix.views(table.depth)
            )
        _require(
            len(values) == 1 and None not in values,
            f"component {component.id} crosses decision sets: {values}",
        )


def theorem_5_9(component: Component) -> None:
    """Broadcastable connected sets have diameter ≤ 1/2 and constant input."""
    if not component.is_broadcastable:
        return
    members = list(component.members())
    _require(
        node_set_diameter(members) <= 0.5,
        "broadcastable component has d_min-diameter > 1/2",
    )
    for p in component.broadcasters:
        component.broadcaster_value(p)  # raises on non-constant inputs


def corollary_6_1(
    analysis: ComponentAnalysis,
    table: DecisionTable,
    values: Sequence,
) -> None:
    """Compact decision sets are positively separated (via Theorem 5.13)."""
    depth = analysis.depth
    _require(depth >= table.depth, "analysis must be at least as deep as the table")
    space = analysis.space
    groups: dict = {value: [] for value in values}
    for node in space.layer(depth):
        value = table.decision_for_view(node.prefix.view(0, table.depth))
        groups[value].append(node)
    labels = [v for v in values if groups[v]]
    for i, left in enumerate(labels):
        for right in labels[i + 1 :]:
            _require(
                node_set_distance(groups[left], groups[right]) > 0.0,
                f"decision sets PS({left!r}) and PS({right!r}) touch",
            )
