"""The fleet's only doorway to the wall clock.

Lease deadlines, heartbeats, and retry backoff are *about* real time, so
the fleet runner genuinely needs ``time.time`` — which repro-lint rule R3
bans everywhere else in the package, because wall-clock reads in kernel
code are hidden nondeterminism.  Concentrating every read here (the
module is designated in ``[tool.repro-lint.rules.R3] clock-modules``)
keeps the exemption auditable: checker results still never depend on the
clock, only scheduling does, and tests drive the state machine with
explicit ``now`` values instead of sleeping.
"""

from __future__ import annotations

import time

__all__ = ["wall_now", "sleep"]


def wall_now() -> float:
    """Seconds since the epoch, as lease deadlines are expressed."""
    return time.time()


def sleep(seconds: float) -> None:
    """Plain ``time.sleep`` (importable alongside :func:`wall_now`)."""
    time.sleep(seconds)
