"""Deterministic fault injection for the fleet runner.

A :class:`ChaosSpec` is a list of *events*, each pinned to one
``(shard, attempt)`` execution — not a probability — so a chaos schedule
is exactly reproducible (repro-lint R3: no unseeded randomness; the only
randomness anywhere in the fleet is the backoff jitter, which is seeded
from the run config).  The worker consults :meth:`ChaosSpec.plan_for`
before and during each attempt and injects the faults on itself:

``kill``
    SIGKILL the worker process after writing ``after`` records of the
    shard output (mid-shard by construction) — the crash-recovery path:
    dead pid, partial output, no done marker.
``stall``
    Stop heartbeating for ``seconds`` while mid-attempt, long enough for
    the lease to expire and be reaped — the zombie path: the attempt
    completes *late* and its done marker must be rejected.
``truncate``
    After finishing, chop the output mid-line (torn trailing record)
    and publish the done marker anyway — the validation path for a kill
    during the final append.
``corrupt``
    Overwrite bytes in the *middle* of the output — the validation path
    for damage that recovery must refuse to repair.
``delay``
    Add ``seconds`` before every lease renewal (a slow heartbeat that
    stays within the deadline exercises renewal under load; beyond it,
    behaves like ``stall``).

The spec serializes into the fleet config (``repro.fleet-state/1``), so
a chaos soak run's faults are part of its on-disk audit trail, and
``repro-consensus fleet run --chaos`` accepts either inline JSON or a
path to a JSON file.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import AnalysisError

__all__ = ["ChaosPlan", "ChaosSpec"]

#: Recognized event actions and the extra keys each accepts.
_ACTIONS: dict[str, tuple[str, ...]] = {
    "kill": ("after",),
    "stall": ("seconds",),
    "truncate": (),
    "corrupt": (),
    "delay": ("seconds",),
}


class ChaosPlan:
    """The faults injected into one ``(shard, attempt)`` execution."""

    __slots__ = ("kill_after", "stall_s", "truncate", "corrupt", "renew_delay_s")

    def __init__(
        self,
        kill_after: int | None = None,
        stall_s: float | None = None,
        truncate: bool = False,
        corrupt: bool = False,
        renew_delay_s: float | None = None,
    ) -> None:
        self.kill_after = kill_after
        self.stall_s = stall_s
        self.truncate = truncate
        self.corrupt = corrupt
        self.renew_delay_s = renew_delay_s

    @property
    def quiet(self) -> bool:
        """True when no fault applies (the overwhelmingly common case)."""
        return (
            self.kill_after is None
            and self.stall_s is None
            and not self.truncate
            and not self.corrupt
            and self.renew_delay_s is None
        )

    def __repr__(self) -> str:
        parts = []
        if self.kill_after is not None:
            parts.append(f"kill_after={self.kill_after}")
        if self.stall_s is not None:
            parts.append(f"stall_s={self.stall_s}")
        if self.truncate:
            parts.append("truncate")
        if self.corrupt:
            parts.append("corrupt")
        if self.renew_delay_s is not None:
            parts.append(f"renew_delay_s={self.renew_delay_s}")
        return f"ChaosPlan({', '.join(parts) if parts else 'quiet'})"


class ChaosSpec:
    """A deterministic fault schedule: events keyed by (shard, attempt)."""

    __slots__ = ("events",)

    def __init__(self, events: list[dict[str, Any]] | None = None) -> None:
        self.events = [
            self._validate(event) for event in (events if events is not None else [])
        ]

    @staticmethod
    def _validate(event: dict[str, Any]) -> dict[str, Any]:
        action = event.get("action")
        if action not in _ACTIONS:
            raise AnalysisError(
                f"unknown chaos action {action!r}; "
                f"choose from {sorted(_ACTIONS)}"
            )
        for key in ("shard", "attempt"):
            if not isinstance(event.get(key), int) or event[key] < 0:
                raise AnalysisError(
                    f"chaos event {event!r} needs a non-negative integer "
                    f"{key!r} (faults are pinned, never probabilistic)"
                )
        allowed = {"action", "shard", "attempt", *_ACTIONS[action]}
        unknown = set(event) - allowed
        if unknown:
            raise AnalysisError(
                f"chaos {action!r} event has unknown keys {sorted(unknown)}; "
                f"allowed extras: {sorted(_ACTIONS[action])}"
            )
        if action == "kill" and (
            not isinstance(event.get("after"), int) or event["after"] < 0
        ):
            raise AnalysisError("chaos 'kill' needs after=<records written>")
        if action in ("stall", "delay") and not isinstance(
            event.get("seconds"), (int, float)
        ):
            raise AnalysisError(f"chaos {action!r} needs seconds=<float>")
        return dict(event)

    def plan_for(self, shard: int, attempt: int) -> ChaosPlan:
        """Merge every event pinned to this (shard, attempt) into one plan."""
        plan = ChaosPlan()
        for event in self.events:
            if event["shard"] != shard or event["attempt"] != attempt:
                continue
            action = event["action"]
            if action == "kill":
                plan.kill_after = event["after"]
            elif action == "stall":
                plan.stall_s = float(event["seconds"])
            elif action == "truncate":
                plan.truncate = True
            elif action == "corrupt":
                plan.corrupt = True
            elif action == "delay":
                plan.renew_delay_s = float(event["seconds"])
        return plan

    def to_dict(self) -> dict[str, Any]:
        return {"events": [dict(event) for event in self.events]}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ChaosSpec":
        return cls(events=list(data.get("events", [])))

    @classmethod
    def parse(cls, text: str) -> "ChaosSpec":
        """The ``--chaos`` argument: inline JSON, or a path to a JSON file."""
        text = text.strip()
        if text.startswith("{"):
            payload = text
        else:
            path = Path(text)
            if not path.is_file():
                raise AnalysisError(
                    f"--chaos: {text!r} is neither inline JSON nor a file"
                )
            payload = path.read_text(encoding="utf-8")
        try:
            data = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise AnalysisError(f"--chaos: invalid JSON ({exc})") from exc
        if not isinstance(data, dict):
            raise AnalysisError('--chaos: expected {"events": [...]}')
        return cls.from_dict(data)

    def __repr__(self) -> str:
        return f"ChaosSpec({len(self.events)} event(s))"
