"""Fault-tolerant fleet runner: leased shards, heartbeats, resumable merges.

The sweep engine's :class:`~repro.backends.ManifestBackend` already made
shard execution a file protocol — manifest in, JSONL out — but it still
assumes every shard subprocess survives: one dead worker loses its shard
and the merge.  This package layers a crash-safe coordinator on the same
file interface, built for the ROADMAP's 10^6-adversary census, where
worker death, stalls, and partial output are normal events.

All coordination is plain files in one *fleet directory*, written
exclusively through the atomic primitives of :mod:`repro.fleet.files`, so
any participant can be SIGKILLed at any instant and the run resumes from
the surviving state:

* :mod:`repro.fleet.state` — the ``repro.fleet-state/1`` documents: run
  config, shard leases (claimed by atomic link, heartbeated by atomic
  replace), the coordinator's attempt/backoff ledger, the poison list,
  and the append-only merge journal;
* :mod:`repro.fleet.worker` — the worker loop: claim a shard, stream
  records to an attempt file, renew the lease, publish a digest-carrying
  done marker;
* :mod:`repro.fleet.runner` — the coordinator state machine
  (:class:`~repro.fleet.runner.FleetRunner`) and the
  :class:`~repro.fleet.runner.FleetBackend` that plugs it into the
  :class:`~repro.backends.SweepBackend` protocol;
* :mod:`repro.fleet.chaos` — the deterministic fault-injection harness
  behind ``repro-consensus fleet run --chaos`` and the test suite.

The correctness contract: for any fault schedule, a completed fleet run
merges exactly one record per job, byte-identical (with
``record_timing=False``) to a :class:`~repro.backends.SerialBackend` run
of the same specs.
"""

from __future__ import annotations

from repro.fleet.chaos import ChaosPlan, ChaosSpec
from repro.fleet.runner import FleetBackend, FleetRunner
from repro.fleet.state import FleetConfig
from repro.fleet.worker import SimulatedCrash, run_worker

__all__ = [
    "ChaosPlan",
    "ChaosSpec",
    "FleetBackend",
    "FleetConfig",
    "FleetRunner",
    "SimulatedCrash",
    "run_worker",
]
