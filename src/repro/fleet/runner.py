"""The fleet coordinator: reap, validate, merge, poison — one step at a time.

:class:`FleetRunner` is deliberately a *steppable* state machine:
:meth:`FleetRunner.step` performs one full pass of coordinator duties —
repair the journal, validate done markers, merge good attempts, reap
expired leases, apply backoff, quarantine exhausted shards, rebuild the
merged output — and returns a status snapshot.  ``run``/``resume`` just
loop ``step`` around a pool of worker subprocesses; the tests instead
call ``step`` directly with explicit ``now`` values, so every lease
expiry, zombie rejection, and crash-resume scenario is deterministic and
sleep-free.

Crash-safety ordering inside a step (each line is atomic or append-only):

* merge:   journal append  →  ledger bump  →  lease removal  →  merged
  rebuild.  Dying between any two is recoverable: a journaled shard is
  simply skipped (its leftover lease swept) and the rebuild is
  idempotent.  The bump mirrors the fail path so attempt numbers are
  single-use across success too — a claim raced into the removal window
  carries a stale attempt and is swept, never rerun over merged output.
* fail:    ledger bump (attempt += 1)  →  lease removal.
  The bump first means a zombie holder's next renewal sees the moved
  ledger and stops; a lease recreated in the unlucky window carries the
  old attempt number and is swept as stale on the next step.

:class:`FleetBackend` plugs the whole machine into the
:class:`~repro.backends.SweepBackend` protocol, so
``Session.sweep(..., backend=FleetBackend(...))`` transparently gets the
fault tolerance — and with ``record_timing=False`` its merged records
are byte-identical to :class:`~repro.backends.SerialBackend` output.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path
from typing import Any, Sequence

from repro.backends import SweepJob, _validate_jobs
from repro.consensus.solvability import CheckOptions
from repro.core.views import _WORKER_CAP_ENV
from repro.errors import AnalysisError
from repro.fleet import files, state
from repro.fleet.chaos import ChaosSpec
from repro.fleet.clock import sleep, wall_now
from repro.fleet.state import FleetConfig, FleetPaths
from repro.records import RunRecord

__all__ = ["FleetRunner", "FleetBackend"]


def _worker_env(workers: int) -> dict[str, str]:
    """Environment for worker subprocesses (mirrors ManifestBackend)."""
    import repro

    package_root = str(Path(repro.__file__).resolve().parents[1])
    env = os.environ.copy()
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root if not existing else package_root + os.pathsep + existing
    )
    if workers > 1:
        # Concurrent workers own the machine's parallelism; per-check
        # extension workers inside them would oversubscribe.
        env[_WORKER_CAP_ENV] = "1"
    return env


class FleetRunner:
    """Coordinator for one fleet directory (see the module docstring)."""

    def __init__(self, root: str | Path, python: str | None = None) -> None:
        self.paths = FleetPaths(root)
        self.python = python or sys.executable
        self._expected: dict[int, set[int]] = {}

    # ------------------------------------------------------------------ #
    # Setup
    # ------------------------------------------------------------------ #

    def initialize(
        self,
        jobs: Sequence[SweepJob],
        options: CheckOptions | None = None,
        config: FleetConfig | None = None,
    ) -> FleetConfig:
        """Lay out the fleet directory for these jobs (fresh runs only)."""
        jobs = _validate_jobs(jobs)
        return state.init_fleet(
            self.paths.root, jobs, options, config or FleetConfig()
        )

    @property
    def config(self) -> FleetConfig:
        return state.load_config(self.paths.root)

    def expected_indices(self, shard: int) -> set[int]:
        """The job indices a valid attempt for this shard must produce."""
        cached = self._expected.get(shard)
        if cached is None:
            jobs, _, _ = state.load_shard_jobs(self.paths.root, shard)
            cached = self._expected[shard] = {job.index for job in jobs}
        return cached

    # ------------------------------------------------------------------ #
    # The coordinator step
    # ------------------------------------------------------------------ #

    def _fail_attempt(
        self,
        ledger: dict[str, Any],
        poisoned: dict[str, Any],
        config: FleetConfig,
        shard: int,
        reason: str,
        now: float,
    ) -> None:
        """Record a failed attempt: backoff and retry, or quarantine.

        Writes the ledger (or poison list) *before* the caller removes
        the lease — the ordering that turns a still-running holder into a
        self-silencing zombie (see the module docstring).
        """
        entry = ledger[str(shard)]
        failures = entry["failures"] + 1
        reasons = list(entry.get("reasons", []))[-4:] + [
            f"attempt {entry['attempt']}: {reason}"
        ]
        if failures >= config.max_attempts:
            poisoned[str(shard)] = {"failures": failures, "reasons": reasons}
            state.write_poison(self.paths.root, poisoned)
            # The ledger entry still advances: any zombie of the final
            # attempt must also see itself superseded.
        entry["attempt"] += 1
        entry["failures"] = failures
        entry["reasons"] = reasons
        entry["next_eligible"] = now + state.backoff_delay(config, shard, failures)
        state.write_attempts(self.paths.root, ledger)

    def step(self, now: float | None = None) -> dict[str, Any]:
        """One coordinator pass; returns the post-step status snapshot."""
        now = wall_now() if now is None else now
        root = self.paths.root
        state.repair_journal(root)
        config = state.load_config(root)
        journaled = {entry["shard"] for entry in state.read_journal(root)}
        poisoned = state.read_poison(root)
        ledger = state.read_attempts(root)
        merged_any = False
        for shard in range(config.shards):
            if shard in journaled:
                # Sweep the lease a crash may have stranded between the
                # journal append and the removal.
                state.release_lease(root, shard)
                continue
            if str(shard) in poisoned:
                state.release_lease(root, shard)
                continue
            current = ledger[str(shard)]["attempt"]
            lease = state.read_lease(root, shard)
            if lease is not None and lease["attempt"] < current:
                # A zombie resurrected its reaped lease in the bump/remove
                # window; the stale attempt number gives it away.
                state.release_lease(root, shard)
                lease = None
            records, reason = state.validate_attempt(
                root, shard, current, self.expected_indices(shard)
            )
            if records is not None:
                out = self.paths.attempt_out(shard, current)
                state.append_merge(
                    root,
                    {
                        "shard": shard,
                        "attempt": current,
                        "digest": files.sha256_file(out),
                        "records": len(records),
                    },
                )
                # Bump before the lease removal, mirroring the fail path:
                # a zombie holder's next renewal sees the moved ledger and
                # stops, and any claim raced in after the removal carries
                # a stale attempt number instead of this one.
                ledger[str(shard)]["attempt"] = current + 1
                state.write_attempts(root, ledger)
                state.release_lease(root, shard)
                journaled.add(shard)
                merged_any = True
                continue
            if self.paths.attempt_done(shard, current).exists():
                # The attempt claims completion but failed validation
                # (torn tail, corruption, digest or index mismatch):
                # a finished-and-bad attempt fails immediately.
                self._fail_attempt(ledger, poisoned, config, shard, reason, now)
                state.release_lease(root, shard)
                continue
            if lease is not None and state.lease_expired(lease, now):
                cause = (
                    "holder died"
                    if not state.pid_alive(lease["pid"])
                    else "heartbeat stalled past the deadline"
                )
                self._fail_attempt(
                    ledger, poisoned, config, shard,
                    f"lease expired ({cause})", now,
                )
                state.release_lease(root, shard)
        if merged_any:
            state.rebuild_merged(root)
        return state.snapshot(root, now=now)

    def done(self, snapshot: dict[str, Any] | None = None) -> bool:
        if snapshot is None:
            snapshot = state.snapshot(self.paths.root)
        return bool(snapshot["done"])

    # ------------------------------------------------------------------ #
    # Driving a live run (worker subprocesses)
    # ------------------------------------------------------------------ #

    def _spawn_worker(self, worker: str, env: dict[str, str]) -> subprocess.Popen:
        return subprocess.Popen(
            [
                self.python, "-m", "repro.cli", "fleet", "work",
                "--dir", str(self.paths.root), "--worker", worker,
            ],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=env,
        )

    def drive(
        self, workers: int, timeout_s: float | None = None
    ) -> list[RunRecord]:
        """Run the coordinator loop over a pool of worker subprocesses.

        Workers that die — chaos or otherwise — are respawned under a
        budget derived from the retry budget (a runaway crash loop must
        not spin forever); the loop ends when every shard is journaled or
        poisoned.  Returns the merged records, or raises with the poison
        report when any shard exhausted its attempts (the partial merge
        stays on disk for inspection/resume).
        """
        if workers < 1:
            raise AnalysisError("a fleet drive needs workers >= 1")
        config = self.config
        env = _worker_env(workers)
        procs: dict[str, subprocess.Popen] = {}
        spawned = 0
        respawn_budget = config.shards * config.max_attempts + 2 * workers
        started = wall_now()
        try:
            while True:
                snapshot = self.step()
                if snapshot["done"]:
                    break
                if timeout_s is not None and wall_now() - started > timeout_s:
                    raise AnalysisError(
                        f"fleet run exceeded {timeout_s}s "
                        f"(snapshot: {snapshot['counts']})"
                    )
                for index in range(workers):
                    worker = f"w{index}"
                    proc = procs.get(worker)
                    if proc is not None and proc.poll() is None:
                        continue
                    if spawned >= respawn_budget:
                        raise AnalysisError(
                            "fleet worker respawn budget exhausted — workers "
                            "are crash-looping outside the chaos schedule"
                        )
                    procs[worker] = self._spawn_worker(worker, env)
                    spawned += 1
                sleep(config.poll_s)
            records = state.rebuild_merged(self.paths.root)
        finally:
            for proc in procs.values():
                if proc.poll() is None:
                    proc.terminate()
            for proc in procs.values():
                try:
                    proc.wait(timeout=5)
                except (subprocess.TimeoutExpired, OSError):
                    proc.kill()
        poisoned = state.read_poison(self.paths.root)
        if poisoned:
            details = "; ".join(
                f"shard {shard}: {entry['reasons'][-1]}"
                for shard, entry in sorted(poisoned.items(), key=lambda kv: int(kv[0]))
            )
            raise AnalysisError(
                f"fleet run quarantined {len(poisoned)} shard(s) after "
                f"exhausting retries ({details}); partial merge kept at "
                f"{self.paths.merged}"
            )
        return records

    def run(
        self,
        jobs: Sequence[SweepJob],
        options: CheckOptions | None = None,
        config: FleetConfig | None = None,
        workers: int = 2,
        timeout_s: float | None = None,
    ) -> list[RunRecord]:
        """Initialize a fresh fleet directory and drive it to completion."""
        self.initialize(jobs, options, config)
        return self.drive(workers, timeout_s=timeout_s)

    def resume(
        self, workers: int = 2, timeout_s: float | None = None
    ) -> list[RunRecord]:
        """Continue an interrupted run from its surviving state files.

        Nothing special happens here by design: the first ``step`` of the
        drive repairs a torn journal, sweeps stranded leases, reaps dead
        claims, and the merge rebuild is idempotent — resuming *is* the
        normal code path.
        """
        state.load_config(self.paths.root)  # fail early on a non-fleet dir
        return self.drive(workers, timeout_s=timeout_s)


class FleetBackend:
    """The fault-tolerant entry in the ``SweepBackend`` protocol.

    Drop-in wherever :class:`~repro.backends.ManifestBackend` fits, with
    the crash-safety of the fleet directory underneath.  Parameters map
    onto :class:`~repro.fleet.state.FleetConfig`; ``workers`` is the live
    subprocess pool size and ``shards`` the queue granularity (more
    shards than workers keeps the pool busy when one shard is slow and
    bounds the work lost to one crash).
    """

    def __init__(
        self,
        workdir: str | Path,
        shards: int = 4,
        workers: int = 2,
        record_timing: bool = True,
        chaos: ChaosSpec | None = None,
        lease_ttl_s: float = 15.0,
        heartbeat_s: float = 3.0,
        max_attempts: int = 4,
        backoff_base_s: float = 0.25,
        backoff_cap_s: float = 5.0,
        poll_s: float = 0.2,
        seed: int = 0,
        python: str | None = None,
        timeout_s: float | None = None,
    ) -> None:
        self.workdir = Path(workdir)
        self.workers = workers
        self.timeout_s = timeout_s
        self.python = python
        self.config = FleetConfig(
            shards=shards,
            record_timing=record_timing,
            lease_ttl_s=lease_ttl_s,
            heartbeat_s=heartbeat_s,
            max_attempts=max_attempts,
            backoff_base_s=backoff_base_s,
            backoff_cap_s=backoff_cap_s,
            poll_s=poll_s,
            seed=seed,
            chaos=chaos,
        )

    def run(
        self,
        jobs: Sequence[SweepJob],
        options: CheckOptions | None = None,
    ) -> list[RunRecord]:
        runner = FleetRunner(self.workdir, python=self.python)
        return runner.run(
            jobs,
            options,
            config=self.config,
            workers=self.workers,
            timeout_s=self.timeout_s,
        )
