"""The fleet directory: every ``repro.fleet-state/1`` document and its rules.

A fleet run is a directory.  Nothing else — no sockets, no locks, no
coordinator process state that matters — so any participant (worker *or*
coordinator) can be SIGKILLed at any instant and a later ``fleet resume``
continues from the files:

.. code-block:: text

    <fleet-dir>/
      fleet.json                    run config (kind "config")
      shards/shard_<k>.json         per-shard job manifests (sweep schema)
      leases/shard_<k>.lease        live claims (kind "lease")
      attempts.json                 coordinator's attempt ledger (kind "attempts")
      attempts/shard_<k>_a<i>.jsonl one output stream per attempt
      attempts/shard_<k>_a<i>.done.json   worker's digest marker (kind "done")
      journal.jsonl                 append-only merge journal (kind "journal")
      poison.json                   quarantined shards (kind "poison")
      merged.jsonl                  merged records (rebuilt atomically)

Ownership is the invariant that makes concurrent crash-safety tractable:
*workers* write only their own lease (atomic create to claim, atomic
replace to heartbeat) and their own attempt files; the *coordinator* is
the single writer of the attempt ledger, the journal, the poison list,
and the merge.  Attempt outputs are never overwritten — each retry gets
a fresh attempt number, so a reaped-but-alive zombie worker can finish
writing its old attempt without corrupting the replacement's, and its
late done marker is rejected simply because the ledger moved on.

Every document carries the :data:`repro.schemas.FLEET_STATE` tag plus a
``kind`` discriminator; readers refuse state they do not understand.
"""

from __future__ import annotations

import json
import os
import random
import sys
from pathlib import Path
from typing import Any, Sequence

from repro.backends import SweepJob, load_manifest, write_manifest
from repro.consensus.solvability import CheckOptions
from repro.errors import AnalysisError
from repro.fleet import files
from repro.fleet.chaos import ChaosSpec
from repro.fleet.clock import wall_now
from repro.records import RunRecord, read_jsonl, write_jsonl
from repro.schemas import FLEET_STATE

__all__ = [
    "FleetConfig",
    "FleetPaths",
    "init_fleet",
    "load_config",
    "load_shard_jobs",
    "read_lease",
    "claim_shard",
    "renew_lease",
    "release_lease",
    "lease_expired",
    "pid_alive",
    "read_attempts",
    "write_attempts",
    "read_poison",
    "write_poison",
    "backoff_delay",
    "append_merge",
    "read_journal",
    "repair_journal",
    "validate_attempt",
    "rebuild_merged",
    "snapshot",
]


class FleetConfig:
    """The immutable parameters of one fleet run (kind ``config``).

    ``shards`` is the number of shard manifests (striding matches
    :class:`~repro.backends.ProcessBackend`, so the merged record set is
    independent of the shard count); ``lease_ttl_s`` how long a claim
    stays valid without a heartbeat; ``heartbeat_s`` the renewal cadence
    (keep it a small fraction of the ttl); ``max_attempts`` the per-shard
    budget before quarantine; backoff between attempts grows as
    ``base * 2^(failures-1)`` capped at ``backoff_cap_s``, jittered by a
    :class:`random.Random` seeded from ``(seed, shard, failures)`` so two
    coordinators compute identical schedules.
    """

    __slots__ = (
        "shards",
        "jobs",
        "record_timing",
        "lease_ttl_s",
        "heartbeat_s",
        "max_attempts",
        "backoff_base_s",
        "backoff_cap_s",
        "poll_s",
        "seed",
        "chaos",
    )

    def __init__(
        self,
        shards: int = 2,
        jobs: int = 0,
        record_timing: bool = True,
        lease_ttl_s: float = 15.0,
        heartbeat_s: float = 3.0,
        max_attempts: int = 4,
        backoff_base_s: float = 0.25,
        backoff_cap_s: float = 5.0,
        poll_s: float = 0.2,
        seed: int = 0,
        chaos: ChaosSpec | None = None,
    ) -> None:
        if shards < 1:
            raise AnalysisError("a fleet needs shards >= 1")
        if max_attempts < 1:
            raise AnalysisError("a fleet needs max_attempts >= 1")
        if lease_ttl_s <= 0 or heartbeat_s <= 0:
            raise AnalysisError("lease_ttl_s and heartbeat_s must be positive")
        self.shards = shards
        self.jobs = jobs
        self.record_timing = record_timing
        self.lease_ttl_s = lease_ttl_s
        self.heartbeat_s = heartbeat_s
        self.max_attempts = max_attempts
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.poll_s = poll_s
        self.seed = seed
        self.chaos = chaos

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": FLEET_STATE,
            "kind": "config",
            "shards": self.shards,
            "jobs": self.jobs,
            "record_timing": self.record_timing,
            "lease_ttl_s": self.lease_ttl_s,
            "heartbeat_s": self.heartbeat_s,
            "max_attempts": self.max_attempts,
            "backoff_base_s": self.backoff_base_s,
            "backoff_cap_s": self.backoff_cap_s,
            "poll_s": self.poll_s,
            "seed": self.seed,
            "chaos": None if self.chaos is None else self.chaos.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FleetConfig":
        chaos = data.get("chaos")
        return cls(
            shards=data["shards"],
            jobs=data.get("jobs", 0),
            record_timing=data.get("record_timing", True),
            lease_ttl_s=data["lease_ttl_s"],
            heartbeat_s=data["heartbeat_s"],
            max_attempts=data["max_attempts"],
            backoff_base_s=data["backoff_base_s"],
            backoff_cap_s=data["backoff_cap_s"],
            poll_s=data.get("poll_s", 0.2),
            seed=data.get("seed", 0),
            chaos=None if chaos is None else ChaosSpec.from_dict(chaos),
        )

    def __repr__(self) -> str:
        return (
            f"FleetConfig(shards={self.shards}, jobs={self.jobs}, "
            f"ttl={self.lease_ttl_s}s, max_attempts={self.max_attempts})"
        )


class FleetPaths:
    """Path arithmetic for one fleet directory."""

    __slots__ = ("root",)

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    @property
    def config(self) -> Path:
        return self.root / "fleet.json"

    @property
    def journal(self) -> Path:
        return self.root / "journal.jsonl"

    @property
    def attempts_ledger(self) -> Path:
        return self.root / "attempts.json"

    @property
    def poison(self) -> Path:
        return self.root / "poison.json"

    @property
    def merged(self) -> Path:
        return self.root / "merged.jsonl"

    def manifest(self, shard: int) -> Path:
        return self.root / "shards" / f"shard_{shard}.json"

    def lease(self, shard: int) -> Path:
        return self.root / "leases" / f"shard_{shard}.lease"

    def attempt_out(self, shard: int, attempt: int) -> Path:
        return self.root / "attempts" / f"shard_{shard}_a{attempt}.jsonl"

    def attempt_done(self, shard: int, attempt: int) -> Path:
        return self.root / "attempts" / f"shard_{shard}_a{attempt}.done.json"


def _require(doc: dict[str, Any] | None, kind: str, path: Path) -> dict[str, Any]:
    """Schema/kind gate on every state read: refuse what we don't understand."""
    if doc is None:
        raise AnalysisError(f"{path}: missing fleet state document")
    if doc.get("schema") != FLEET_STATE or doc.get("kind") != kind:
        raise AnalysisError(
            f"{path}: expected a {FLEET_STATE!r} {kind!r} document, got "
            f"schema={doc.get('schema')!r} kind={doc.get('kind')!r}"
        )
    return doc


# --------------------------------------------------------------------- #
# Initialization
# --------------------------------------------------------------------- #


def init_fleet(
    root: str | Path,
    jobs: Sequence[SweepJob],
    options: CheckOptions | None,
    config: FleetConfig,
) -> FleetConfig:
    """Lay out a fresh fleet directory for these jobs.

    Shard manifests are written with ``shard=0`` on purpose: the shard id
    stamped into records is a provenance field, and the serial reference
    run stamps 0 everywhere — the fleet's actual shard/attempt provenance
    lives in the journal, keeping the merged bytes identical to
    :class:`~repro.backends.SerialBackend` output.  Refuses a directory
    that already holds a fleet (resume instead of clobbering).
    """
    paths = FleetPaths(root)
    if paths.config.exists():
        raise AnalysisError(
            f"{paths.root} already holds a fleet run; use resume, or point "
            f"the run at a fresh directory"
        )
    jobs = list(jobs)
    if not jobs:
        raise AnalysisError("a fleet run needs at least one job")
    shards = min(config.shards, len(jobs))
    config = FleetConfig(
        shards=shards,
        jobs=len(jobs),
        record_timing=config.record_timing,
        lease_ttl_s=config.lease_ttl_s,
        heartbeat_s=config.heartbeat_s,
        max_attempts=config.max_attempts,
        backoff_base_s=config.backoff_base_s,
        backoff_cap_s=config.backoff_cap_s,
        poll_s=config.poll_s,
        seed=config.seed,
        chaos=config.chaos,
    )
    for sub in ("shards", "leases", "attempts"):
        (paths.root / sub).mkdir(parents=True, exist_ok=True)
    for k in range(shards):
        write_manifest(
            jobs[k::shards],
            paths.manifest(k),
            shard=0,
            options=options,
            record_timing=config.record_timing,
        )
    write_attempts(
        root,
        {
            str(k): {"attempt": 0, "failures": 0, "next_eligible": 0.0}
            for k in range(shards)
        },
    )
    write_poison(root, {})
    # The header goes through the temp-then-replace funnel, not a bare
    # append: a crash between here and the config write leaves a rerun
    # free to re-init, and an appended second header would wedge every
    # later journal parse.  (No merge entries can predate the config, so
    # create-or-truncate is safe.)
    temp = paths.journal.with_name(f".{paths.journal.name}.{os.getpid()}.tmp")
    files.append_line(
        temp,
        json.dumps({"schema": FLEET_STATE, "kind": "journal"}, sort_keys=True),
    )
    files.atomic_replace_file(temp, paths.journal)
    files.atomic_write_json(paths.config, config.to_dict())
    return config


def load_config(root: str | Path) -> FleetConfig:
    paths = FleetPaths(root)
    doc = _require(files.read_json(paths.config), "config", paths.config)
    return FleetConfig.from_dict(doc)


def load_shard_jobs(
    root: str | Path, shard: int
) -> tuple[list[SweepJob], CheckOptions, bool]:
    """One shard's (jobs, options, record_timing) from its manifest."""
    manifest = load_manifest(FleetPaths(root).manifest(shard))
    return manifest["jobs"], manifest["options"], manifest["record_timing"]


# --------------------------------------------------------------------- #
# Leases: claim / heartbeat / expiry
# --------------------------------------------------------------------- #


def pid_alive(pid: int) -> bool:
    """Whether a process with this pid exists (signal-0 probe).

    POSIX only: on Windows ``os.kill`` cannot probe — any signal other
    than the CTRL events *terminates* the target — so the answer there is
    "assume alive" and lease expiry rests on the deadline alone.
    """
    if sys.platform == "win32":
        return True
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def read_lease(root: str | Path, shard: int) -> dict[str, Any] | None:
    paths = FleetPaths(root)
    doc = files.read_json(paths.lease(shard))
    if doc is None:
        return None
    return _require(doc, "lease", paths.lease(shard))


def claim_shard(
    root: str | Path,
    shard: int,
    worker: str,
    attempt: int,
    ttl_s: float,
    now: float | None = None,
    pid: int | None = None,
) -> bool:
    """Try to claim a shard; True iff this caller won the exclusive create.

    Any number of workers (or whole racing coordinators) may call this
    concurrently for the same shard: the hard-link create in
    :func:`repro.fleet.files.atomic_create_json` guarantees exactly one
    winner, and losers see False without having disturbed the winner's
    lease.
    """
    now = wall_now() if now is None else now
    return files.atomic_create_json(
        FleetPaths(root).lease(shard),
        {
            "schema": FLEET_STATE,
            "kind": "lease",
            "shard": shard,
            "worker": worker,
            "pid": os.getpid() if pid is None else pid,
            "attempt": attempt,
            "deadline": now + ttl_s,
        },
    )


def renew_lease(
    root: str | Path,
    shard: int,
    worker: str,
    attempt: int,
    ttl_s: float,
    now: float | None = None,
) -> bool:
    """Heartbeat: extend our own lease; False when we no longer hold it.

    A False return is the zombie signal — the coordinator reaped this
    claim (or the ledger moved past our attempt) while we were running.
    The worker must then stop renewing; its eventual done marker will be
    rejected by attempt number, and the replacement attempt's files are
    distinct by construction.
    """
    now = wall_now() if now is None else now
    lease = read_lease(root, shard)
    if lease is None or lease["worker"] != worker or lease["attempt"] != attempt:
        return False
    try:
        ledger = read_attempts(root)
    except AnalysisError:
        return False
    entry = ledger.get(str(shard))
    if entry is None or entry["attempt"] != attempt:
        return False
    lease = dict(lease)
    lease["deadline"] = now + ttl_s
    files.atomic_write_json(FleetPaths(root).lease(shard), lease)
    return True


def release_lease(root: str | Path, shard: int) -> None:
    """Remove a lease file (coordinator after merge/reap, or a worker
    abandoning a claim its post-claim journal re-check disowned)."""
    FleetPaths(root).lease(shard).unlink(missing_ok=True)


def lease_expired(lease: dict[str, Any], now: float | None = None) -> bool:
    """A lease is dead when its deadline passed *or* its holder's pid is gone.

    The pid probe makes crash recovery prompt (no need to wait out the
    ttl after a SIGKILL); the deadline catches live-but-stalled holders.
    """
    now = wall_now() if now is None else now
    if now >= lease["deadline"]:
        return True
    return not pid_alive(lease["pid"])


# --------------------------------------------------------------------- #
# The attempt ledger, backoff, and the poison list (coordinator-owned)
# --------------------------------------------------------------------- #


def read_attempts(root: str | Path) -> dict[str, Any]:
    paths = FleetPaths(root)
    doc = _require(
        files.read_json(paths.attempts_ledger), "attempts", paths.attempts_ledger
    )
    shards = doc["shards"]
    if not isinstance(shards, dict):
        raise AnalysisError(f"{paths.attempts_ledger}: malformed ledger")
    return shards


def write_attempts(root: str | Path, shards: dict[str, Any]) -> None:
    files.atomic_write_json(
        FleetPaths(root).attempts_ledger,
        {"schema": FLEET_STATE, "kind": "attempts", "shards": shards},
    )


def read_poison(root: str | Path) -> dict[str, Any]:
    paths = FleetPaths(root)
    doc = _require(files.read_json(paths.poison), "poison", paths.poison)
    return doc["shards"]


def write_poison(root: str | Path, shards: dict[str, Any]) -> None:
    files.atomic_write_json(
        FleetPaths(root).poison,
        {"schema": FLEET_STATE, "kind": "poison", "shards": shards},
    )


def backoff_delay(config: FleetConfig, shard: int, failures: int) -> float:
    """Exponential backoff with deterministic jitter for retry ``failures``.

    ``base * 2^(failures-1)`` capped at ``backoff_cap_s``, scaled by a
    jitter factor in ``[0.5, 1.5)`` drawn from a :class:`random.Random`
    seeded by ``(config.seed, shard, failures)`` — so the schedule is a
    pure function of the run state (repro-lint R3), and two coordinators
    racing over the same ledger agree on every eligibility time.
    """
    exponential = config.backoff_base_s * (2 ** max(0, failures - 1))
    bounded = min(config.backoff_cap_s, exponential)
    rng = random.Random(config.seed * 1000003 + shard * 8191 + failures)
    return bounded * (0.5 + rng.random())


# --------------------------------------------------------------------- #
# The merge journal
# --------------------------------------------------------------------- #


def append_merge(root: str | Path, entry: dict[str, Any]) -> None:
    """Append one completed-merge line (coordinator only)."""
    files.append_line(
        FleetPaths(root).journal,
        json.dumps({"kind": "merge", **entry}, sort_keys=True),
    )


def read_journal(root: str | Path) -> list[dict[str, Any]]:
    """The journal's merge entries, tolerating (and ignoring) a torn tail.

    Read-side tolerance means workers and ``fleet status`` never trip
    over a coordinator killed mid-append; actually *truncating* the torn
    line is :func:`repair_journal`, which only the coordinator calls.
    Entries are deduplicated by shard (first wins) — two coordinators
    racing the same validation can journal the same merge twice, and
    idempotence, not exclusion, is what keeps that harmless.
    """
    entries, _ = _parse_journal(root)
    seen: set[int] = set()
    unique = []
    for entry in entries:
        if entry["shard"] in seen:
            continue
        seen.add(entry["shard"])
        unique.append(entry)
    return unique


def _parse_journal(
    root: str | Path,
) -> tuple[list[dict[str, Any]], int | None]:
    """Parse the journal; returns (entries, torn_line_number_or_None)."""
    paths = FleetPaths(root)
    lines = files.read_lines(paths.journal)
    if lines is None:
        raise AnalysisError(f"{paths.journal}: fleet journal missing")
    stripped = [
        (number, line.strip())
        for number, line in enumerate(lines, start=1)
        if line.strip()
    ]
    if not stripped:
        raise AnalysisError(f"{paths.journal}: fleet journal has no header")
    entries: list[dict[str, Any]] = []
    for position, (number, line) in enumerate(stripped):
        try:
            data = json.loads(line)
        except json.JSONDecodeError:
            if position == len(stripped) - 1:
                # Torn tail: the coordinator died mid-append.  The entry
                # was never acted on (merged rebuild follows journaling),
                # so dropping it is safe and retrying the shard is
                # idempotent.
                return entries, number
            raise AnalysisError(
                f"{paths.journal}:{number}: corrupt journal line (not a "
                f"torn tail — the journal cannot be trusted)"
            )
        if position == 0:
            _require(data, "journal", paths.journal)
            continue
        if data.get("kind") != "merge":
            raise AnalysisError(
                f"{paths.journal}:{number}: unexpected journal entry kind "
                f"{data.get('kind')!r}"
            )
        entries.append(data)
    return entries, None


def repair_journal(root: str | Path) -> bool:
    """Truncate a torn trailing journal line, atomically; True if repaired."""
    paths = FleetPaths(root)
    entries, torn = _parse_journal(root)
    if torn is None:
        return False
    temp = paths.journal.with_name(f".{paths.journal.name}.{os.getpid()}.tmp")
    header = json.dumps({"schema": FLEET_STATE, "kind": "journal"}, sort_keys=True)
    files.append_line(temp, header)
    for entry in entries:
        files.append_line(temp, json.dumps(entry, sort_keys=True))
    files.atomic_replace_file(temp, paths.journal)
    return True


# --------------------------------------------------------------------- #
# Attempt validation and the merge itself
# --------------------------------------------------------------------- #


def validate_attempt(
    root: str | Path,
    shard: int,
    attempt: int,
    expected_indices: set[int],
) -> tuple[list[RunRecord] | None, str]:
    """Judge one attempt's output; ``(records, "ok")`` or ``(None, why)``.

    The gauntlet: the done marker must exist, the output bytes must match
    the digest the worker published (a torn write after the marker, or a
    chaos corruption, breaks it), the recovery reader must find no torn
    tail, and the record indices must be exactly the shard's job indices.
    Everything else — including unparseable files — is a *retriable*
    verdict, never an exception: damaged output is a normal fleet event.
    """
    paths = FleetPaths(root)
    done = files.read_json(paths.attempt_done(shard, attempt))
    if done is None:
        return None, "no done marker"
    done = _require(done, "done", paths.attempt_done(shard, attempt))
    if done.get("shard") != shard or done.get("attempt") != attempt:
        return None, "done marker names a different shard/attempt"
    out = paths.attempt_out(shard, attempt)
    if not out.exists():
        return None, "done marker without output file"
    if files.sha256_file(out) != done.get("digest"):
        return None, "output digest mismatch (damaged after completion?)"
    try:
        records, corruption = read_jsonl(out, recover=True)
    except Exception as exc:  # noqa: BLE001 - any damage is a retriable verdict
        return None, f"unreadable output ({type(exc).__name__}: {exc})"
    if corruption is not None:
        return None, f"torn output: {corruption.reason}"
    if len(records) != done.get("records"):
        return None, (
            f"record count {len(records)} != done marker "
            f"{done.get('records')}"
        )
    indices = {record.index for record in records}
    if indices != expected_indices:
        missing = sorted(expected_indices - indices)[:5]
        extra = sorted(indices - expected_indices)[:5]
        return None, f"index mismatch (missing {missing}, extra {extra})"
    return records, "ok"


def rebuild_merged(root: str | Path) -> list[RunRecord]:
    """Rebuild ``merged.jsonl`` from the journal, atomically; idempotent.

    The journal is the source of truth: exactly one attempt per journaled
    shard contributes, each re-verified against its journaled digest, so
    replaying a merge after a coordinator crash can neither lose nor
    duplicate a record.  Records are sorted by job index and written via
    :func:`~repro.records.write_jsonl` to a temp file that is atomically
    swapped in — a reader of ``merged.jsonl`` (live ``fleet status``)
    always sees a complete, valid document.
    """
    paths = FleetPaths(root)
    records: list[RunRecord] = []
    for entry in read_journal(root):
        out = paths.attempt_out(entry["shard"], entry["attempt"])
        if files.sha256_file(out) != entry["digest"]:
            raise AnalysisError(
                f"{out}: journaled attempt no longer matches its digest; "
                f"the fleet directory has been tampered with"
            )
        records.extend(read_jsonl(out))
    records.sort(key=lambda record: record.index)
    temp = paths.merged.with_name(f".{paths.merged.name}.{os.getpid()}.tmp")
    write_jsonl(records, temp)
    files.atomic_replace_file(temp, paths.merged)
    return records


# --------------------------------------------------------------------- #
# Status snapshot
# --------------------------------------------------------------------- #


def snapshot(root: str | Path, now: float | None = None) -> dict[str, Any]:
    """One consistent-enough picture of a run (kind ``status``).

    Safe to call concurrently with a live run: every file it reads is
    atomically written or append-only.  ``counts`` partitions the shards;
    ``leases`` lists live claims with their remaining ttl.
    """
    now = wall_now() if now is None else now
    config = load_config(root)
    journaled = {entry["shard"] for entry in read_journal(root)}
    poisoned = read_poison(root)
    ledger = read_attempts(root)
    leases = []
    for shard in range(config.shards):
        if shard in journaled:
            continue
        lease = read_lease(root, shard)
        if lease is not None:
            leases.append(
                {
                    "shard": shard,
                    "worker": lease["worker"],
                    "attempt": lease["attempt"],
                    "expires_in_s": round(lease["deadline"] - now, 3),
                    "holder_alive": pid_alive(lease["pid"]),
                }
            )
    pending = [
        shard
        for shard in range(config.shards)
        if shard not in journaled and str(shard) not in poisoned
    ]
    journal = read_journal(root)
    merged_records = sum(entry["records"] for entry in journal)
    return {
        "schema": FLEET_STATE,
        "kind": "status",
        "jobs": config.jobs,
        "counts": {
            "shards": config.shards,
            "merged": len(journaled),
            "poisoned": len(poisoned),
            "pending": len(pending),
            "leased": len(leases),
        },
        "records_merged": merged_records,
        "leases": leases,
        "attempts": {
            shard: dict(entry)
            for shard, entry in sorted(ledger.items(), key=lambda kv: int(kv[0]))
        },
        "poisoned": poisoned,
        "done": len(journaled) + len(poisoned) == config.shards,
    }
