"""The fleet worker: claim a shard, stream records, heartbeat, publish.

A worker owns exactly two kinds of files — its lease and its attempt
output — and every step is safe against SIGKILL:

1. **Claim**: pick the lowest eligible shard (not journaled, not
   poisoned, past its retry backoff, unleased) and claim it with the
   exclusive-create lease; losing the race just means trying the next
   shard.
2. **Stream**: run the shard's jobs through
   :func:`~repro.backends.iter_job_records`, appending each record to the
   attempt's JSONL as it finishes — a kill mid-shard leaves a readable
   prefix, never a wedged run.  A background heartbeat thread extends the
   lease on a cadence and *stops itself* the moment the renewal says the
   claim is gone (the zombie signal).
3. **Publish**: write a done marker carrying the output's SHA-256 digest
   and record count, atomically.  The marker, not the output file, is
   what tells the coordinator "complete" — output without a marker is by
   definition a dead attempt.

Chaos (:mod:`repro.fleet.chaos`) is injected here, self-inflicted: the
worker consults the run config's schedule for its ``(shard, attempt)``
and kills, stalls, truncates, or corrupts itself accordingly.  With
``simulate=True`` (the deterministic test mode) the kill raises
:class:`SimulatedCrash` instead of SIGKILL, sleeps are skipped, and no
heartbeat thread runs — tests drive time by passing explicit ``now``
values to the state machine.
"""

from __future__ import annotations

import json
import os
import signal
import threading
from pathlib import Path

from repro.backends import iter_job_records
from repro.errors import AnalysisError
from repro.fleet import files
from repro.fleet.chaos import ChaosPlan
from repro.fleet.clock import sleep, wall_now
from repro.fleet.state import (
    FleetConfig,
    FleetPaths,
    claim_shard,
    load_config,
    load_shard_jobs,
    read_attempts,
    read_journal,
    read_poison,
    release_lease,
    renew_lease,
)
from repro.records import SCHEMA as RECORD_SCHEMA
from repro.schemas import FLEET_STATE

__all__ = ["SimulatedCrash", "claim_next", "run_attempt", "run_worker"]


class SimulatedCrash(RuntimeError):
    """Raised in ``simulate`` mode where a real worker would be SIGKILLed."""


def _crash(simulate: bool, where: str) -> None:
    if simulate:
        raise SimulatedCrash(where)
    os.kill(os.getpid(), signal.SIGKILL)


def claim_next(
    root: str | Path, worker: str, now: float | None = None
) -> tuple[int, int] | None:
    """Claim the lowest eligible shard; ``(shard, attempt)`` or ``None``.

    Eligible means: not journaled, not poisoned, past its backoff
    eligibility time, and with no lease file in place.  The lease
    pre-check is advisory (another worker can appear in between); the
    exclusive create inside :func:`~repro.fleet.state.claim_shard` is
    what actually arbitrates.

    A won claim is confirmed against a *fresh* journal read before it is
    returned.  The coordinator merges with append-then-release ordering,
    so a lease create that succeeds because of the release is guaranteed
    to see the journal entry on this re-read — without it, a worker whose
    journal view predates the append could re-claim a merged shard and
    rewrite the very output the journal's digest points at.
    """
    now = wall_now() if now is None else now
    config = load_config(root)
    paths = FleetPaths(root)
    journaled = {entry["shard"] for entry in read_journal(root)}
    poisoned = read_poison(root)
    ledger = read_attempts(root)
    for shard in range(config.shards):
        if shard in journaled or str(shard) in poisoned:
            continue
        entry = ledger.get(str(shard))
        if entry is None or now < entry["next_eligible"]:
            continue
        if paths.lease(shard).exists():
            continue
        attempt = entry["attempt"]
        if claim_shard(root, shard, worker, attempt, config.lease_ttl_s, now=now):
            if shard in {entry["shard"] for entry in read_journal(root)}:
                # Our pre-claim journal view was stale: the shard merged
                # between the read and the claim.  Abandon the lease we
                # just created (it is ours to remove) and move on.
                release_lease(root, shard)
                continue
            return shard, attempt
    return None


def _heartbeat_loop(
    root: str | Path,
    worker: str,
    shard: int,
    attempt: int,
    config: FleetConfig,
    plan: ChaosPlan,
    stop: threading.Event,
) -> None:
    interval = config.heartbeat_s
    if plan.renew_delay_s is not None:
        interval += plan.renew_delay_s
    while not stop.wait(interval):
        if not renew_lease(root, shard, worker, attempt, config.lease_ttl_s):
            # The claim is gone (reaped, or the ledger moved past us):
            # we are a zombie.  Stop renewing so the replacement claim
            # is not blocked; our late done marker will be rejected by
            # attempt number.
            return


def run_attempt(
    root: str | Path,
    worker: str,
    shard: int,
    attempt: int,
    simulate: bool = False,
) -> int:
    """Execute one claimed attempt end to end; returns records written.

    The caller must hold the shard's lease for this attempt.  The lease
    is deliberately *not* released on completion — it keeps other workers
    off the shard until the coordinator validates the done marker and
    removes lease and shard together (merge) or bumps the attempt (fail).
    """
    config = load_config(root)
    if shard in {entry["shard"] for entry in read_journal(root)}:
        # A journaled shard's output is the referent of the journal's
        # digest; rewriting it would wedge every later merge rebuild.
        # claim_next's post-claim re-check makes this unreachable in the
        # worker loop — this guard covers direct callers with a stale
        # claim.
        raise AnalysisError(
            f"shard {shard} is already journaled; refusing to run attempt "
            f"{attempt} over its merged output"
        )
    plan = (
        config.chaos.plan_for(shard, attempt)
        if config.chaos is not None
        else ChaosPlan()
    )
    jobs, options, record_timing = load_shard_jobs(root, shard)
    paths = FleetPaths(root)
    out = paths.attempt_out(shard, attempt)
    # Attempt numbers are single-use (the ledger bumps on every reap and
    # every merge), so a pre-existing file can only be debris from our own
    # failed claim; start clean rather than appending to it.
    out.unlink(missing_ok=True)
    files.append_line(out, json.dumps({"schema": RECORD_SCHEMA}, sort_keys=True))
    stop: threading.Event | None = None
    # A stalled attempt gets no heartbeat at all — that is the fault being
    # injected: the lease deadline must genuinely pass while the worker is
    # alive and mid-attempt.
    if not simulate and plan.stall_s is None:
        stop = threading.Event()
        threading.Thread(
            target=_heartbeat_loop,
            args=(root, worker, shard, attempt, config, plan, stop),
            daemon=True,
        ).start()
    written = 0
    try:
        for record in iter_job_records(0, jobs, options, record_timing):
            if plan.kill_after is not None and written == plan.kill_after:
                _crash(simulate, f"chaos kill mid-shard {shard} attempt {attempt}")
            files.append_line(
                out, json.dumps(record.to_dict(), sort_keys=True)
            )
            written += 1
            if written == 1 and plan.stall_s is not None and not simulate:
                # With no heartbeat running, sleeping past the ttl here
                # guarantees the lease expires mid-attempt and the attempt
                # finishes *late* — the zombie-rejection path.
                sleep(plan.stall_s)
        if plan.kill_after is not None and plan.kill_after >= written:
            _crash(simulate, f"chaos kill at end of shard {shard}")
    finally:
        if stop is not None:
            stop.set()
    if plan.truncate:
        size = out.stat().st_size
        os.truncate(out, max(1, size - 7))
    if plan.corrupt:
        files.overwrite_bytes(out, out.stat().st_size // 2, b"\x00chaos\x00")
    files.atomic_write_json(
        paths.attempt_done(shard, attempt),
        {
            "schema": FLEET_STATE,
            "kind": "done",
            "shard": shard,
            "attempt": attempt,
            "worker": worker,
            "digest": files.sha256_file(out),
            "records": written,
        },
    )
    return written


def run_worker(root: str | Path, worker: str) -> int:
    """The worker main loop (``repro-consensus fleet work``).

    Claims and runs attempts until every shard is journaled or poisoned,
    then exits 0.  When nothing is claimable *right now* (all remaining
    shards leased or in backoff) it polls — the coordinator may reap a
    dead peer's lease at any moment and make its shard claimable again.
    """
    config = load_config(root)
    while True:
        journaled = {entry["shard"] for entry in read_journal(root)}
        poisoned = read_poison(root)
        if len(journaled) + len(poisoned) >= config.shards:
            return 0
        claim = claim_next(root, worker)
        if claim is None:
            sleep(config.poll_s)
            continue
        shard, attempt = claim
        run_attempt(root, worker, shard, attempt)
