"""Compatibility shim: the crash-safe funnel lives in :mod:`repro.io.atomic`.

The four write shapes the fleet is built on (write-temp-then-rename,
exclusive hard-link create, fsynced append, plus the chaos harness's
deliberate in-place clobber) started life here and are now shared with
the content-addressed result store (:mod:`repro.store`), so the
implementation was hoisted into :mod:`repro.io.atomic`.  Every existing
import — ``from repro.fleet import files`` and
``from repro.fleet.files import atomic_write_json`` alike — keeps
working through this re-export, and repro-lint rule R9 keeps both module
names in its funnel allowlist.
"""

from __future__ import annotations

from repro.io.atomic import (
    append_line,
    atomic_create_json,
    atomic_replace_file,
    atomic_write_json,
    atomic_write_text,
    fsync_dir,
    overwrite_bytes,
    read_json,
    read_lines,
    sha256_file,
)

__all__ = [
    "atomic_write_json",
    "atomic_write_text",
    "atomic_create_json",
    "atomic_replace_file",
    "append_line",
    "overwrite_bytes",
    "read_json",
    "read_lines",
    "sha256_file",
    "fsync_dir",
]
