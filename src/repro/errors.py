"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch every failure mode of the library with a single ``except`` clause
while still being able to distinguish configuration problems from analysis
problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the :mod:`repro` library."""


class InvalidGraphError(ReproError):
    """A communication graph was constructed with out-of-range nodes."""


class InvalidInputError(ReproError):
    """An input assignment does not match the system size or input domain."""


class AdversaryError(ReproError):
    """A message adversary was queried inconsistently (bad state, bad word)."""


class InadmissibleWordError(AdversaryError):
    """A graph word is not admissible (no safety-automaton run accepts it)."""


class AnalysisError(ReproError):
    """A topological analysis was invoked with inconsistent arguments."""


class CertificateError(ReproError):
    """A solvability certificate failed validation."""


class SimulationError(ReproError):
    """The lock-step simulator detected a protocol violation."""
