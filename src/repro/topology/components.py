"""Connected components of the depth-``t`` prefix space in the minimum topology.

Two depth-``t`` prefixes are *indistinguishable* when some process has the
same view in both through round ``t`` — equivalently, their ``d_min``
distance is below ``2^{-t}``, i.e. each lies in the other's ``2^{-t}``-ball.
The transitive closure of indistinguishability partitions the layer into
components; these are exactly the ``ε = 2^{-t}`` approximations of
Definition 6.2 (a fact checked against the literal iterative construction in
:mod:`repro.topology.approximation` and its tests).

For each component the analysis records the data the consensus
characterizations need:

* the *valences*: which unanimous input values ``v`` occur among members
  (a component containing two different valences is "bivalent" — by
  Corollary 5.6 its persistence at every depth is exactly consensus
  impossibility);
* the *broadcasters*: processes heard by every process in every member
  (Definition 5.8 / Theorem 5.11 / Theorem 6.6);
* the broadcaster input values (Theorem 5.9 predicts they are constant per
  component — asserted here, making the theorem an executable invariant).

Columnar pipeline
-----------------
The analysis consumes the layer's flat columns directly — the
:class:`~repro.core.views.LayerTable` view-id column, the input-index
column, and the interner's origin-mask column — and produces columns: a
per-prefix component-id column (``comp_ids``) plus per-component member
index arrays.  Two equivalent paths sit behind the interner's
``layer_backend`` switch:

* ``"numpy"`` — cells key as ``view_id * n + p`` in one vectorized pass;
  connectivity is solved by pointer-jumping min-label propagation over the
  sorted key groups (a few ``reduceat`` sweeps, no per-cell Python), and
  the per-component masks/valences fold with ``reduceat`` as well;
* ``"python"`` — the batched union-find pass over the flat column (one
  dict probe per cell, inlined union by size with path halving).

Both paths order components canonically by smallest member index, so
component ids, member order, and every downstream decision table are
identical regardless of backend.  :class:`Component` objects stay thin
wrappers; their member *lists* (and any
:class:`~repro.topology.prefixspace.PrefixNode`) materialize lazily.
"""

from __future__ import annotations

from array import array
from typing import Iterator

from repro.core.graphword import full_mask
from repro.core.views import numpy_module, plain_ids
from repro.errors import AnalysisError
from repro.topology.prefixspace import PrefixNode, PrefixSpace

__all__ = ["Component", "ComponentAnalysis", "UnionFind"]

#: Below this many (prefix, process) cells the vectorized component pass
#: is not worth its fixed overhead (sparse-matrix construction, unique
#: passes); small layers run the Python pass.  Crossover measured around
#: ~1.5-2.5k cells on the lossy-link spaces.
_COMPONENT_NUMPY_MIN_CELLS = 2048

#: The vectorized pass encodes valence sets as int64 bitmaps; spaces with
#: more distinct unanimity values run the Python pass instead.
_NUMPY_MAX_VALENCES = 62


def _scipy_csgraph():
    """scipy's sparse connected-components, when installed (else None).

    scipy is strictly optional (``dependencies = []`` holds): with it, the
    bipartite (prefix, view-key) incidence solves in one C-level pass;
    without it the vectorized Shiloach–Vishkin fallback below runs.
    """
    try:
        from scipy.sparse import coo_matrix
        from scipy.sparse.csgraph import connected_components
    except ImportError:  # pragma: no cover - exercised where scipy is absent
        return None
    return coo_matrix, connected_components


class UnionFind:
    """Array-based union-find with path halving and union by size."""

    __slots__ = ("parent", "size")

    def __init__(self, count: int) -> None:
        self.parent = list(range(count))
        self.size = [1] * count

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]


class Component:
    """One connected component of a depth-``t`` layer.

    Member indices are held as whatever column the analysis produced (an
    int64 numpy array on the vectorized path, a list on the Python path);
    :attr:`member_indices` materializes — and caches — the plain-int list
    on first access, so columnar consumers never pay for it.
    """

    __slots__ = (
        "id",
        "depth",
        "valences",
        "broadcast_mask",
        "_space",
        "_members",
    )

    def __init__(
        self,
        component_id: int,
        depth: int,
        member_indices,
        valences: frozenset,
        broadcast_mask: int,
        space: PrefixSpace,
    ) -> None:
        self.id = component_id
        self.depth = depth
        self._members = member_indices
        self.valences = valences
        self.broadcast_mask = broadcast_mask
        self._space = space

    # -- membership -----------------------------------------------------

    @property
    def member_indices(self) -> list[int]:
        """The member prefix indices as a plain list (lazily materialized)."""
        members = self._members
        if not isinstance(members, list):
            members = self._members = list(
                members.tolist() if hasattr(members, "tolist") else members
            )
        return members

    def member_input_indices(self) -> Iterator[int]:
        """Input-vector index of every member, without node wrappers."""
        input_idx = self._space.layer_store(self.depth).input_idx
        for i in self._members:
            yield int(input_idx[i])

    def members(self) -> Iterator[PrefixNode]:
        """Iterate over the member prefix nodes."""
        layer = self._space.layer(self.depth)
        return (layer[i] for i in self._members)

    def __len__(self) -> int:
        return len(self._members)

    @property
    def representative(self) -> PrefixNode:
        """An arbitrary (first-indexed) member."""
        return self._space.layer(self.depth)[self._members[0]]

    # -- consensus-relevant structure ------------------------------------

    @property
    def is_bivalent(self) -> bool:
        """Whether members include two differently-valent prefixes."""
        return len(self.valences) >= 2

    @property
    def broadcasters(self) -> frozenset[int]:
        """Processes that have broadcast by depth ``t`` in *every* member."""
        n = self._space.adversary.n
        return frozenset(p for p in range(n) if self.broadcast_mask >> p & 1)

    @property
    def is_broadcastable(self) -> bool:
        """Whether some process has broadcast in every member (Thm 6.6 test)."""
        return self.broadcast_mask != 0

    def broadcaster_value(self, p: int):
        """The input value of broadcaster ``p`` (constant by Theorem 5.9)."""
        store = self._space.layer_store(self.depth)
        input_idx = store.input_idx
        input_vectors = self._space.input_vectors
        values = {
            input_vectors[input_idx[i]][p] for i in self._members
        }
        if len(values) != 1:
            raise AnalysisError(
                f"Theorem 5.9 violation: broadcaster {p} has values {values} "
                f"within one connected component"
            )
        return next(iter(values))

    def __repr__(self) -> str:
        return (
            f"Component(#{self.id}, depth={self.depth}, "
            f"size={len(self)}, valences={set(self.valences)}, "
            f"broadcasters={set(self.broadcasters)})"
        )


class ComponentAnalysis:
    """Components of one layer of a :class:`PrefixSpace`.

    Attributes
    ----------
    components:
        The :class:`Component` partition, ordered by smallest member index.
    comp_ids:
        Per-prefix component-id column (int64 numpy array on the
        vectorized path, list on the Python path) — the columnar handoff
        the decision-table builder consumes.

    Examples
    --------
    >>> from repro.adversaries.lossylink import lossy_link_no_hub
    >>> analysis = ComponentAnalysis(PrefixSpace(lossy_link_no_hub()), 1)
    >>> analysis.bivalent_components() == []
    True
    """

    def __init__(self, space: PrefixSpace, depth: int) -> None:
        self.space = space
        self.depth = depth
        store = space.layer_store(depth)
        table = store.levels
        interner = space.interner
        n = space.adversary.n
        np = numpy_module()
        count = len(table)
        # The vectorized pass folds valences as int64 bitmaps; instances
        # with more distinct unanimity values than fit take the Python
        # pass (arbitrary-precision sets).
        distinct_values = len(
            {v for v in space.unanimity_by_index if v is not None}
        )
        if (
            np is not None
            and interner.layer_backend == "numpy"
            and isinstance(interner._origin_mask, array)
            and distinct_values <= _NUMPY_MAX_VALENCES
            and count * n >= _COMPONENT_NUMPY_MIN_CELLS
        ):
            self._analyze_numpy(np, store, table, interner, n, count)
        else:
            self._analyze_python(store, table, interner, n, count)
        self._view_map: dict[tuple[int, int], int] | None = None

    # ------------------------------------------------------------------ #
    # The two component passes
    # ------------------------------------------------------------------ #

    def _analyze_python(self, store, table, interner, n: int, count: int) -> None:
        """Batched union-find over the flat layer column (pure Python)."""
        ids = plain_ids(table.ids)
        union_find = UnionFind(count)
        parent = union_find.parent
        size = union_find.size
        origin_masks = interner._origin_mask
        everyone = full_mask(n)
        # One pass: bucket cells by the packed key ``view_id * n + p`` (two
        # prefixes sharing a bucket are indistinguishable) and fold the
        # per-node broadcast mask while the views are at hand.
        buckets: dict[int, int] = {}
        bucket_get = buckets.get
        node_masks: list[int] = []
        node_masks_append = node_masks.append
        base = 0
        for index in range(count):
            common = everyone
            for p in range(n):
                vid = ids[base + p]
                common &= origin_masks[vid]
                key = vid * n + p
                first = bucket_get(key)
                if first is None:
                    buckets[key] = index
                    continue
                # Inline union by size with path halving.
                a, b = first, index
                while parent[a] != a:
                    parent[a] = a = parent[parent[a]]
                while parent[b] != b:
                    parent[b] = b = parent[parent[b]]
                if a != b:
                    if size[a] < size[b]:
                        a, b = b, a
                    parent[b] = a
                    size[a] += size[b]
            node_masks_append(common)
            base += n

        # Gather per-root data in a second pass over the columns.  Because
        # nodes are visited in index order, each root is first reached
        # through its smallest member, so the insertion order of
        # ``members_of`` is already the canonical (first-member) component
        # order — no sort needed.
        unanimity = self.space.unanimity_by_index
        input_idx = store.input_idx
        members_of: dict[int, list[int]] = {}
        valences_of: dict[int, set] = {}
        mask_of: dict[int, int] = {}
        for index, common in enumerate(node_masks):
            root = index
            while parent[root] != root:
                parent[root] = root = parent[parent[root]]
            members = members_of.get(root)
            if members is None:
                members_of[root] = [index]
                mask_of[root] = common
            else:
                members.append(index)
                mask_of[root] &= common
            value = unanimity[input_idx[index]]
            if value is not None:
                held = valences_of.get(root)
                if held is None:
                    valences_of[root] = {value}
                else:
                    held.add(value)

        empty: frozenset = frozenset()
        valences_get = valences_of.get
        space = self.space
        depth = self.depth
        self.components: list[Component] = []
        components_append = self.components.append
        component_of_root: dict[int, int] = {}
        for component_id, (root, members) in enumerate(members_of.items()):
            held = valences_get(root)
            components_append(
                Component(
                    component_id=component_id,
                    depth=depth,
                    member_indices=members,
                    valences=frozenset(held) if held else empty,
                    broadcast_mask=mask_of[root],
                    space=space,
                )
            )
            component_of_root[root] = component_id
        comp_ids = [0] * count
        for cid, component in enumerate(self.components):
            for index in component._members:
                comp_ids[index] = cid
        self.comp_ids = comp_ids
        # view bucket -> first node index (the universal algorithm's
        # lookup); the (p, view) -> component map is built lazily because
        # the solvability checker never queries it.
        self._buckets = buckets

    def _analyze_numpy(self, np, store, table, interner, n: int, count: int) -> None:
        """Vectorized component pass over the flat layer column.

        Cells key as ``view_id * n + p``; two prefixes are adjacent iff
        they share a key, i.e. connectivity is that of the bipartite
        (prefix, key) incidence.  With scipy installed the incidence
        solves in one C-level ``connected_components`` pass; otherwise a
        Shiloach–Vishkin-style loop runs in numpy (per round: key groups
        take the minimum root of their cells via ``reduceat``, the
        candidate hooks onto each prefix's *root*, and paths fully
        compress — hooking onto roots is what lets a whole plateau adopt
        a better label in one round, so convergence is logarithmic).
        Labels are then canonicalized by smallest member index, matching
        the Python pass ordering exactly.
        """
        mat = table.array()
        origin_masks = np.frombuffer(interner._origin_mask, dtype=np.int64)
        node_masks = np.bitwise_and.reduce(origin_masks[mat], axis=1)
        del origin_masks
        keys = (mat * n + np.arange(n, dtype=np.int64)).reshape(-1)
        csgraph = _scipy_csgraph()
        if csgraph is not None:
            coo_matrix, connected_components = csgraph
            # A layer's view ids sit at the top of the interner's id
            # space, so shifting by the minimum key keeps the node range
            # dense without paying for a full np.unique remap.
            min_key = int(keys.min())
            max_key = int(keys.max())
            cell_nodes = np.repeat(np.arange(count, dtype=np.int64), n)
            dim = count + (max_key - min_key) + 1
            incidence = coo_matrix(
                (
                    np.ones(len(keys), dtype=np.int8),
                    (cell_nodes, count + (keys - min_key)),
                ),
                shape=(dim, dim),
            )
            _, labels = connected_components(incidence, directed=False)
            labels = labels[:count]
        else:
            labels = self._sv_labels(np, keys, n, count)
        del keys

        # Canonical component order = order of smallest member index,
        # identical to the Python pass (and independent of the solver's
        # internal label numbering).
        roots, first, comp_ids = np.unique(
            labels, return_index=True, return_inverse=True
        )
        remap = np.empty(len(roots), dtype=np.int64)
        remap[np.argsort(first, kind="stable")] = np.arange(
            len(roots), dtype=np.int64
        )
        comp_ids = remap[comp_ids.reshape(-1)].astype(np.int64, copy=False)
        member_order = np.argsort(comp_ids, kind="stable")
        comp_sizes = np.bincount(comp_ids, minlength=len(roots))
        comp_starts = np.zeros(len(roots), dtype=np.int64)
        np.cumsum(comp_sizes[:-1], out=comp_starts[1:])
        comp_masks = np.bitwise_and.reduceat(node_masks[member_order], comp_starts)

        # Valence bitmaps: unanimity values code into small ints once per
        # space, then fold per component with one reduceat.
        space = self.space
        unanimity = space.unanimity_by_index
        value_list: list = []
        value_index: dict = {}
        codes = []
        for value in unanimity:
            if value is None:
                codes.append(-1)
                continue
            code = value_index.get(value)
            if code is None:
                code = value_index[value] = len(value_list)
                value_list.append(value)
            codes.append(code)
        unan_codes = np.array(codes, dtype=np.int64)
        node_codes = unan_codes[store.input_array()]
        node_bits = np.where(
            node_codes >= 0,
            np.left_shift(1, np.maximum(node_codes, 0)),
            0,
        )
        comp_bits = np.bitwise_or.reduceat(node_bits[member_order], comp_starts)

        members_split = np.split(member_order, comp_starts[1:].tolist())
        empty: frozenset = frozenset()
        depth = self.depth
        self.components = []
        components_append = self.components.append
        for cid in range(len(roots)):
            bits = int(comp_bits[cid])
            if bits:
                valences = frozenset(
                    value_list[v] for v in range(len(value_list)) if bits >> v & 1
                )
            else:
                valences = empty
            components_append(
                Component(
                    component_id=cid,
                    depth=depth,
                    member_indices=members_split[cid],
                    valences=valences,
                    broadcast_mask=int(comp_masks[cid]),
                    space=space,
                )
            )
        self.comp_ids = comp_ids
        # The (p, view) -> component lookup recomputes its key index
        # lazily from the store (cold path; the checker never calls it).
        self._buckets = None

    @staticmethod
    def _sv_labels(np, keys, n: int, count: int):
        """Shiloach–Vishkin-style connectivity in pure numpy (no scipy).

        Per round: every key group takes the minimum *root* among its
        cells (one ``reduceat`` over the key-sorted cells), every prefix
        takes the minimum over its keys, the candidate hooks onto the
        prefix's root (``np.minimum.at``), and parent pointers fully
        compress.  Hooking onto roots lets whole plateaus adopt a better
        label at once, so rounds are logarithmic in component diameter.
        """
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        boundary = np.empty(len(sorted_keys), dtype=bool)
        boundary[0] = True
        np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=boundary[1:])
        group_starts = np.flatnonzero(boundary)
        group_sizes = np.diff(np.append(group_starts, len(sorted_keys)))
        cell_node_sorted = order // n
        parent = np.arange(count, dtype=np.int64)
        while True:
            group_min = np.minimum.reduceat(
                parent[cell_node_sorted], group_starts
            )
            cell_min = np.empty(count * n, dtype=np.int64)
            cell_min[order] = np.repeat(group_min, group_sizes)
            cand = cell_min.reshape(count, n).min(axis=1)
            before = parent.copy()
            np.minimum.at(parent, before, cand)
            while True:
                compressed = parent[parent]
                if np.array_equal(compressed, parent):
                    break
                parent = compressed
            if np.array_equal(parent, before):
                return parent

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def component_of(self, node: PrefixNode) -> Component:
        """The component containing a node of this layer."""
        return self.components[int(self.comp_ids[node.index])]

    def component_of_view(self, p: int, view_id: int) -> Component | None:
        """The component determined by process ``p`` holding ``view_id``.

        Every admissible prefix in which ``p`` has this view lies in the
        returned component (that is what indistinguishability means); `None`
        if the view does not occur at this depth.
        """
        view_map = self._view_map
        if view_map is None:
            n = self.space.adversary.n
            comp_ids = self.comp_ids
            if self._buckets is not None:
                view_map = {
                    (key % n, key // n): int(comp_ids[first])
                    for key, first in self._buckets.items()
                }
            else:
                np = numpy_module()
                mat = self.space.layer_store(self.depth).levels.array()
                keys = (mat * n + np.arange(n, dtype=np.int64)).reshape(-1)
                uniq_keys, first_cells = np.unique(keys, return_index=True)
                reps = (first_cells // n).tolist()
                view_map = {
                    (key % n, key // n): int(comp_ids[rep])
                    for key, rep in zip(uniq_keys.tolist(), reps)
                }
            self._view_map = view_map
        cid = view_map.get((p, view_id))
        return None if cid is None else self.components[cid]

    def bivalent_components(self) -> list[Component]:
        """Components whose members include at least two valences."""
        return [c for c in self.components if c.is_bivalent]

    def non_broadcastable_components(self) -> list[Component]:
        """Components with no common broadcaster."""
        return [c for c in self.components if not c.is_broadcastable]

    def valent_components(self) -> list[Component]:
        """Components containing at least one unanimous prefix."""
        return [c for c in self.components if c.valences]

    def summary(self) -> dict:
        """Aggregate statistics for reports and benchmarks."""
        return {
            "depth": self.depth,
            "prefixes": len(self.space.layer(self.depth)),
            "components": len(self.components),
            "bivalent": len(self.bivalent_components()),
            "non_broadcastable": len(self.non_broadcastable_components()),
            "largest": max((len(c) for c in self.components), default=0),
        }

    def __repr__(self) -> str:
        info = self.summary()
        return (
            f"ComponentAnalysis(depth={info['depth']}, "
            f"components={info['components']}, bivalent={info['bivalent']})"
        )
