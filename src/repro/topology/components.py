"""Connected components of the depth-``t`` prefix space in the minimum topology.

Two depth-``t`` prefixes are *indistinguishable* when some process has the
same view in both through round ``t`` — equivalently, their ``d_min``
distance is below ``2^{-t}``, i.e. each lies in the other's ``2^{-t}``-ball.
The transitive closure of indistinguishability partitions the layer into
components; these are exactly the ``ε = 2^{-t}`` approximations of
Definition 6.2 (a fact checked against the literal iterative construction in
:mod:`repro.topology.approximation` and its tests).

For each component the analysis records the data the consensus
characterizations need:

* the *valences*: which unanimous input values ``v`` occur among members
  (a component containing two different valences is "bivalent" — by
  Corollary 5.6 its persistence at every depth is exactly consensus
  impossibility);
* the *broadcasters*: processes heard by every process in every member
  (Definition 5.8 / Theorem 5.11 / Theorem 6.6);
* the broadcaster input values (Theorem 5.9 predicts they are constant per
  component — asserted here, making the theorem an executable invariant).
"""

from __future__ import annotations

from typing import Iterator

from repro.core.graphword import full_mask
from repro.errors import AnalysisError
from repro.topology.prefixspace import PrefixNode, PrefixSpace

__all__ = ["Component", "ComponentAnalysis", "UnionFind"]


class UnionFind:
    """Array-based union-find with path halving and union by size."""

    __slots__ = ("parent", "size")

    def __init__(self, count: int) -> None:
        self.parent = list(range(count))
        self.size = [1] * count

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]


class Component:
    """One connected component of a depth-``t`` layer."""

    __slots__ = (
        "id",
        "depth",
        "member_indices",
        "valences",
        "broadcast_mask",
        "_space",
    )

    def __init__(
        self,
        component_id: int,
        depth: int,
        member_indices: list[int],
        valences: frozenset,
        broadcast_mask: int,
        space: PrefixSpace,
    ) -> None:
        self.id = component_id
        self.depth = depth
        self.member_indices = member_indices
        self.valences = valences
        self.broadcast_mask = broadcast_mask
        self._space = space

    # -- membership -----------------------------------------------------

    def members(self) -> Iterator[PrefixNode]:
        """Iterate over the member prefix nodes."""
        layer = self._space.layer(self.depth)
        return (layer[i] for i in self.member_indices)

    def __len__(self) -> int:
        return len(self.member_indices)

    @property
    def representative(self) -> PrefixNode:
        """An arbitrary (first-indexed) member."""
        return self._space.layer(self.depth)[self.member_indices[0]]

    # -- consensus-relevant structure ------------------------------------

    @property
    def is_bivalent(self) -> bool:
        """Whether members include two differently-valent prefixes."""
        return len(self.valences) >= 2

    @property
    def broadcasters(self) -> frozenset[int]:
        """Processes that have broadcast by depth ``t`` in *every* member."""
        n = self._space.adversary.n
        return frozenset(p for p in range(n) if self.broadcast_mask >> p & 1)

    @property
    def is_broadcastable(self) -> bool:
        """Whether some process has broadcast in every member (Thm 6.6 test)."""
        return self.broadcast_mask != 0

    def broadcaster_value(self, p: int):
        """The input value of broadcaster ``p`` (constant by Theorem 5.9)."""
        store = self._space.layer_store(self.depth)
        input_idx = store.input_idx
        input_vectors = self._space.input_vectors
        values = {
            input_vectors[input_idx[i]][p] for i in self.member_indices
        }
        if len(values) != 1:
            raise AnalysisError(
                f"Theorem 5.9 violation: broadcaster {p} has values {values} "
                f"within one connected component"
            )
        return next(iter(values))

    def __repr__(self) -> str:
        return (
            f"Component(#{self.id}, depth={self.depth}, "
            f"size={len(self.member_indices)}, valences={set(self.valences)}, "
            f"broadcasters={set(self.broadcasters)})"
        )


class ComponentAnalysis:
    """Components of one layer of a :class:`PrefixSpace`.

    Examples
    --------
    >>> from repro.adversaries.lossylink import lossy_link_no_hub
    >>> analysis = ComponentAnalysis(PrefixSpace(lossy_link_no_hub()), 1)
    >>> analysis.bivalent_components() == []
    True
    """

    def __init__(self, space: PrefixSpace, depth: int) -> None:
        self.space = space
        self.depth = depth
        store = space.layer_store(depth)
        levels = store.levels
        interner = space.interner
        n = space.adversary.n

        union_find = UnionFind(len(levels))
        parent = union_find.parent
        size = union_find.size
        origin_masks = interner._origin_mask
        everyone = full_mask(n)
        # One pass: bucket nodes by the packed key ``view_id * n + p`` (two
        # prefixes sharing a bucket are indistinguishable) and fold the
        # per-node broadcast mask while the views are at hand.
        buckets: dict[int, int] = {}
        bucket_get = buckets.get
        node_masks: list[int] = []
        node_masks_append = node_masks.append
        for index, views in enumerate(levels):
            common = everyone
            for p in range(n):
                vid = views[p]
                common &= origin_masks[vid]
                key = vid * n + p
                first = bucket_get(key)
                if first is None:
                    buckets[key] = index
                    continue
                # Inline union by size with path halving.
                a, b = first, index
                while parent[a] != a:
                    parent[a] = a = parent[parent[a]]
                while parent[b] != b:
                    parent[b] = b = parent[parent[b]]
                if a != b:
                    if size[a] < size[b]:
                        a, b = b, a
                    parent[b] = a
                    size[a] += size[b]
            node_masks_append(common)
        self._union_find = union_find

        # Gather per-root data in a second pass over the columns.  Because
        # nodes are visited in index order, each root is first reached
        # through its smallest member, so the insertion order of
        # ``members_of`` is already the canonical (first-member) component
        # order — no sort needed.
        unanimity = space.unanimity_by_index
        input_idx = store.input_idx
        members_of: dict[int, list[int]] = {}
        valences_of: dict[int, set] = {}
        mask_of: dict[int, int] = {}
        for index, common in enumerate(node_masks):
            root = index
            while parent[root] != root:
                parent[root] = root = parent[parent[root]]
            members = members_of.get(root)
            if members is None:
                members_of[root] = [index]
                mask_of[root] = common
            else:
                members.append(index)
                mask_of[root] &= common
            value = unanimity[input_idx[index]]
            if value is not None:
                held = valences_of.get(root)
                if held is None:
                    valences_of[root] = {value}
                else:
                    held.add(value)

        empty: frozenset = frozenset()
        valences_get = valences_of.get
        self.components: list[Component] = []
        components_append = self.components.append
        self._component_of_root: dict[int, int] = {}
        for component_id, (root, members) in enumerate(members_of.items()):
            held = valences_get(root)
            components_append(
                Component(
                    component_id=component_id,
                    depth=depth,
                    member_indices=members,
                    valences=frozenset(held) if held else empty,
                    broadcast_mask=mask_of[root],
                    space=space,
                )
            )
            self._component_of_root[root] = component_id

        # view bucket -> component id (the universal algorithm's lookup);
        # built lazily because the solvability checker never queries it.
        self._buckets = buckets
        self._view_map: dict[tuple[int, int], int] | None = None

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def component_of(self, node: PrefixNode) -> Component:
        """The component containing a node of this layer."""
        root = self._union_find.find(node.index)
        return self.components[self._component_of_root[root]]

    def component_of_view(self, p: int, view_id: int) -> Component | None:
        """The component determined by process ``p`` holding ``view_id``.

        Every admissible prefix in which ``p`` has this view lies in the
        returned component (that is what indistinguishability means); `None`
        if the view does not occur at this depth.
        """
        view_map = self._view_map
        if view_map is None:
            n = self.space.adversary.n
            find = self._union_find.find
            component_of_root = self._component_of_root
            view_map = {
                (key % n, key // n): component_of_root[find(first)]
                for key, first in self._buckets.items()
            }
            self._view_map = view_map
        cid = view_map.get((p, view_id))
        return None if cid is None else self.components[cid]

    def bivalent_components(self) -> list[Component]:
        """Components whose members include at least two valences."""
        return [c for c in self.components if c.is_bivalent]

    def non_broadcastable_components(self) -> list[Component]:
        """Components with no common broadcaster."""
        return [c for c in self.components if not c.is_broadcastable]

    def valent_components(self) -> list[Component]:
        """Components containing at least one unanimous prefix."""
        return [c for c in self.components if c.valences]

    def summary(self) -> dict:
        """Aggregate statistics for reports and benchmarks."""
        return {
            "depth": self.depth,
            "prefixes": len(self.space.layer(self.depth)),
            "components": len(self.components),
            "bivalent": len(self.bivalent_components()),
            "non_broadcastable": len(self.non_broadcastable_components()),
            "largest": max((len(c) for c in self.components), default=0),
        }

    def __repr__(self) -> str:
        info = self.summary()
        return (
            f"ComponentAnalysis(depth={info['depth']}, "
            f"components={info['components']}, bivalent={info['bivalent']})"
        )
