"""Layered enumeration of the admissible prefix space of ``PS``.

The paper's characterizations reduce to questions about finite prefixes: the
ball ``B_{2^{-t}}(a)`` in the minimum topology is determined by the depth-t
views, and for compact adversaries Theorem 6.6 explicitly reduces consensus
solvability to ``t``-prefixes.  :class:`PrefixSpace` materializes, layer by
layer, every admissible pair (input assignment, graph word of length ``t``)
together with its interned views — the depth-``t`` skeleton of the space
``PS`` of admissible process-time graph sequences.

Each node keeps the adversary's reachable state set, so extension by one
round enumerates exactly the admissible continuations (including the
liveness pruning for non-compact adversaries: prefixes that could never be
completed to an admissible infinite sequence are not generated — they are
not prefixes of points of ``PS`` at all).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.adversaries.base import MessageAdversary
from repro.core.inputs import all_assignments, binary_domain, validate_assignment
from repro.core.ptg import PTGPrefix
from repro.core.views import ViewInterner
from repro.errors import AnalysisError

__all__ = ["PrefixNode", "PrefixSpace"]


class PrefixNode:
    """One admissible prefix: input assignment + graph word + views + states."""

    __slots__ = ("index", "parent", "input_index", "prefix", "states")

    def __init__(
        self,
        index: int,
        parent: int | None,
        input_index: int,
        prefix: PTGPrefix,
        states: frozenset,
    ) -> None:
        self.index = index
        self.parent = parent
        self.input_index = input_index
        self.prefix = prefix
        self.states = states

    @property
    def inputs(self) -> tuple:
        """The input assignment of this prefix."""
        return self.prefix.inputs

    @property
    def depth(self) -> int:
        """The number of completed rounds."""
        return self.prefix.depth

    @property
    def unanimous_value(self):
        """The common input value, or ``None`` for mixed assignments."""
        return self.prefix.unanimous_value

    def __repr__(self) -> str:
        return (
            f"PrefixNode(#{self.index}, inputs={self.inputs!r}, "
            f"depth={self.depth})"
        )


class PrefixSpace:
    """The admissible prefixes of ``PS`` up to a growing depth.

    Parameters
    ----------
    adversary:
        The message adversary generating the space.
    input_vectors:
        The input assignments to consider; defaults to all assignments over
        the binary domain ``{0, 1}``.  (The paper's ``PS`` ranges over all
        assignments of the input domain.)
    interner:
        Optionally share a view interner with other analyses.
    max_nodes:
        Safety valve: :meth:`extend` raises once a layer would exceed this
        many prefixes.

    Examples
    --------
    >>> from repro.adversaries.lossylink import lossy_link_no_hub
    >>> space = PrefixSpace(lossy_link_no_hub())
    >>> space.ensure_depth(2)
    >>> len(space.layer(2))
    16
    """

    def __init__(
        self,
        adversary: MessageAdversary,
        input_vectors: Iterable[Sequence] | None = None,
        interner: ViewInterner | None = None,
        max_nodes: int = 2_000_000,
    ) -> None:
        self.adversary = adversary
        self.interner = interner or ViewInterner(adversary.n)
        if self.interner.n != adversary.n:
            raise AnalysisError("interner and adversary disagree on n")
        if input_vectors is None:
            vectors = all_assignments(adversary.n, binary_domain)
        else:
            domain = {v for vec in input_vectors for v in vec}
            vectors = tuple(
                validate_assignment(vec, adversary.n, domain)
                for vec in input_vectors
            )
        if not vectors:
            raise AnalysisError("a prefix space needs at least one assignment")
        if len(set(vectors)) != len(vectors):
            raise AnalysisError("duplicate input assignments")
        self.input_vectors = vectors
        self.max_nodes = max_nodes
        initial_states = frozenset(
            adversary.initial_states() & adversary.live_states()
        )
        if not initial_states:
            raise AnalysisError(
                f"adversary {adversary.name} admits no infinite sequences"
            )
        layer0 = [
            PrefixNode(
                index=i,
                parent=None,
                input_index=i,
                prefix=PTGPrefix(self.interner, vec),
                states=initial_states,
            )
            for i, vec in enumerate(vectors)
        ]
        self._layers: list[list[PrefixNode]] = [layer0]

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @property
    def depth(self) -> int:
        """The deepest fully constructed layer."""
        return len(self._layers) - 1

    def extend(self) -> None:
        """Construct the next layer (depth + 1)."""
        current = self._layers[-1]
        nxt: list[PrefixNode] = []
        adversary = self.adversary
        for node in current:
            for graph, states in adversary.admissible_extensions(node.states):
                if len(nxt) >= self.max_nodes:
                    raise AnalysisError(
                        f"prefix space exceeds max_nodes={self.max_nodes} at "
                        f"depth {self.depth + 1}; reduce depth or inputs"
                    )
                nxt.append(
                    PrefixNode(
                        index=len(nxt),
                        parent=node.index,
                        input_index=node.input_index,
                        prefix=node.prefix.extended(graph),
                        states=states,
                    )
                )
        if not nxt:
            raise AnalysisError(
                f"{adversary.name}: no admissible extension at depth {self.depth}"
            )
        self._layers.append(nxt)

    def ensure_depth(self, t: int) -> None:
        """Construct layers up to depth ``t``."""
        while self.depth < t:
            self.extend()

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #

    def layer(self, t: int) -> list[PrefixNode]:
        """All admissible prefixes of depth ``t`` (constructing if needed)."""
        self.ensure_depth(t)
        return self._layers[t]

    def node(self, t: int, index: int) -> PrefixNode:
        """The ``index``-th node of layer ``t``."""
        return self.layer(t)[index]

    def parent_of(self, t: int, index: int) -> PrefixNode | None:
        """The depth ``t - 1`` truncation of a node (None at the root)."""
        node = self.layer(t)[index]
        if node.parent is None:
            return None
        return self._layers[t - 1][node.parent]

    def unanimous_nodes(self, t: int) -> dict:
        """Map value -> list of unanimous (``v``-valent) nodes at depth ``t``."""
        result: dict = {}
        for node in self.layer(t):
            value = node.unanimous_value
            if value is not None:
                result.setdefault(value, []).append(node)
        return result

    def layer_sizes(self) -> list[int]:
        """Sizes of all constructed layers."""
        return [len(layer) for layer in self._layers]

    def find_node(self, t: int, inputs: Sequence, word) -> PrefixNode:
        """The node with the given inputs and graph word at depth ``t``."""
        inputs = tuple(inputs)
        graphs = tuple(word)
        for node in self.layer(t):
            if node.inputs == inputs and node.prefix.graphs == graphs:
                return node
        raise AnalysisError("no such admissible prefix")

    def __repr__(self) -> str:
        return (
            f"PrefixSpace({self.adversary.name}, depth={self.depth}, "
            f"sizes={self.layer_sizes()})"
        )
