"""Layered enumeration of the admissible prefix space of ``PS``.

The paper's characterizations reduce to questions about finite prefixes: the
ball ``B_{2^{-t}}(a)`` in the minimum topology is determined by the depth-t
views, and for compact adversaries Theorem 6.6 explicitly reduces consensus
solvability to ``t``-prefixes.  :class:`PrefixSpace` materializes, layer by
layer, every admissible pair (input assignment, graph word of length ``t``)
together with its interned views — the depth-``t`` skeleton of the space
``PS`` of admissible process-time graph sequences.

Each node keeps the adversary's reachable state set, so extension by one
round enumerates exactly the admissible continuations (including the
liveness pruning for non-compact adversaries: prefixes that could never be
completed to an admissible infinite sequence are not generated — they are
not prefixes of points of ``PS`` at all).

Storage layout
--------------
Layers are stored *columnar* (:class:`LayerStore`): parallel lists of
interned view levels, parent indices, input indices, round graphs, and
adversary state sets.  This is the representation the hot analyses
(components, decision tables, ε-approximations) iterate directly — one
tuple of interned view ids per prefix, no per-prefix Python objects.  The
:class:`PrefixNode` wrappers of the original API are materialized lazily
(and cached) when a consumer asks for them, with full-history
:class:`~repro.core.ptg.PTGPrefix` objects whose construction is amortized
O(1) per node through parent-history sharing.

Streaming and eviction
----------------------
Deep spaces are consumed frontier-by-frontier through
:meth:`PrefixSpace.iter_layers`, which constructs (and yields) one
:class:`LayerStore` at a time.  With the opt-in ``retain="frontier"``
eviction mode, only the newest layer keeps its heavy columns; as the
frontier advances, historical layers are *condensed* down to the columnar
history the layered analyses actually touch — parent links and input
indices.  The contract:

* ``parents``, ``input_idx``, and ``len(store)`` stay valid at every depth;
* ``levels``, ``graphs``, and ``states`` are only available on the frontier
  layer; touching them on a condensed layer raises
  :class:`~repro.errors.AnalysisError`;
* :class:`PrefixNode` / :class:`~repro.core.ptg.PTGPrefix` materialization
  needs the graph history of *every* ancestor layer, so it is unavailable
  in frontier mode altogether (it raises once any ancestor is condensed);
* frontier-mode extension skips the interner's ``(level, graph)`` memo so
  depth-10+ runs hold the frontier plus the interner's view tables and
  nothing else.

``retain="all"`` (the default) keeps every layer, exactly as before.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.adversaries.base import MessageAdversary
from repro.core.inputs import (
    all_assignments,
    binary_domain,
    unanimity_value,
    validate_assignment,
)
from repro.core.ptg import PTGPrefix
from repro.core.views import ViewInterner
from repro.errors import AnalysisError

__all__ = ["PrefixNode", "PrefixSpace", "LayerStore", "LayerView"]


class PrefixNode:
    """One admissible prefix: input assignment + graph word + views + states."""

    __slots__ = ("index", "parent", "input_index", "prefix", "states")

    def __init__(
        self,
        index: int,
        parent: int | None,
        input_index: int,
        prefix: PTGPrefix,
        states: frozenset,
    ) -> None:
        self.index = index
        self.parent = parent
        self.input_index = input_index
        self.prefix = prefix
        self.states = states

    @property
    def inputs(self) -> tuple:
        """The input assignment of this prefix."""
        return self.prefix.inputs

    @property
    def depth(self) -> int:
        """The number of completed rounds."""
        return self.prefix.depth

    @property
    def unanimous_value(self):
        """The common input value, or ``None`` for mixed assignments."""
        return self.prefix.unanimous_value

    def __repr__(self) -> str:
        return (
            f"PrefixNode(#{self.index}, inputs={self.inputs!r}, "
            f"depth={self.depth})"
        )


class LayerStore:
    """Columnar storage of one layer: parallel per-prefix lists.

    Attributes
    ----------
    levels:
        Per prefix, the tuple of interned view ids at this depth.
    parents:
        Per prefix, the index of its depth ``t - 1`` truncation (``-1`` on
        the root layer).
    input_idx:
        Per prefix, the index into ``space.input_vectors``.
    graphs:
        Per prefix, the communication graph of the last round (``None`` on
        the root layer).
    states:
        Per prefix, the adversary's reachable state set.
    """

    __slots__ = ("levels", "parents", "input_idx", "graphs", "states", "nodes", "count")

    def __init__(self, levels, parents, input_idx, graphs, states) -> None:
        self.levels: list[tuple[int, ...]] | None = levels
        self.parents: list[int] = parents
        self.input_idx: list[int] = input_idx
        self.graphs: list | None = graphs
        self.states: list[frozenset] | None = states
        #: Lazy cache of materialized :class:`PrefixNode` wrappers.
        self.nodes: list[PrefixNode | None] | None = [None] * len(levels)
        #: Layer size; survives :meth:`condense`.
        self.count: int = len(levels)

    def __len__(self) -> int:
        return self.count

    @property
    def condensed(self) -> bool:
        """Whether the heavy columns have been evicted (``retain="frontier"``)."""
        return self.levels is None

    def condense(self) -> None:
        """Drop the heavy columns, keeping parents/input indices and the size."""
        self.levels = None
        self.graphs = None
        self.states = None
        self.nodes = None


class LayerView(Sequence):
    """Sequence facade over one layer; nodes materialize on access."""

    __slots__ = ("_space", "_depth")

    def __init__(self, space: "PrefixSpace", depth: int) -> None:
        self._space = space
        self._depth = depth

    def __len__(self) -> int:
        return len(self._space._stores[self._depth])

    def __getitem__(self, item):
        if isinstance(item, slice):
            return [
                self._space._materialize(self._depth, i)
                for i in range(*item.indices(len(self)))
            ]
        size = len(self)
        if item < 0:
            item += size
        if not 0 <= item < size:
            raise IndexError(item)
        return self._space._materialize(self._depth, item)

    def __iter__(self) -> Iterator[PrefixNode]:
        materialize = self._space._materialize
        depth = self._depth
        for i in range(len(self)):
            yield materialize(depth, i)

    def __repr__(self) -> str:
        return f"LayerView(depth={self._depth}, size={len(self)})"


class PrefixSpace:
    """The admissible prefixes of ``PS`` up to a growing depth.

    Parameters
    ----------
    adversary:
        The message adversary generating the space.
    input_vectors:
        The input assignments to consider; defaults to all assignments over
        the binary domain ``{0, 1}``.  (The paper's ``PS`` ranges over all
        assignments of the input domain.)
    interner:
        Optionally share a view interner with other analyses.
    max_nodes:
        Safety valve: :meth:`extend` raises once a layer would exceed this
        many prefixes.
    retain:
        ``"all"`` (default) keeps every constructed layer; ``"frontier"``
        condenses historical layers to parents + input indices as the
        frontier advances (see module docstring for the eviction contract).
    memo_extensions:
        Whether layer extension populates the interner's ``(level, graph)``
        memo so other spaces sharing the interner reuse the work.  Defaults
        to ``None`` = "memoize exactly when an interner was passed in and
        layers are retained" (a shared interner signals cross-space reuse,
        e.g. the sweep engine; frontier mode keeps the memo off so memory
        stays frontier-bounded).
    layer_backend:
        Whole-layer kernel backend (``"numpy"``/``"python"``/``None`` for
        the import-time default) of the interner this space creates when
        none is shared in; ignored — the shared interner's own backend
        wins — when ``interner`` is given.

    Examples
    --------
    >>> from repro.adversaries.lossylink import lossy_link_no_hub
    >>> space = PrefixSpace(lossy_link_no_hub())
    >>> space.ensure_depth(2)
    >>> len(space.layer(2))
    16
    """

    def __init__(
        self,
        adversary: MessageAdversary,
        input_vectors: Iterable[Sequence] | None = None,
        interner: ViewInterner | None = None,
        max_nodes: int = 2_000_000,
        retain: str = "all",
        memo_extensions: bool | None = None,
        layer_backend: str | None = None,
    ) -> None:
        self.adversary = adversary
        if retain not in ("all", "frontier"):
            raise AnalysisError(f"retain must be 'all' or 'frontier', got {retain!r}")
        self.retain = retain
        if memo_extensions is None:
            memo_extensions = interner is not None and retain == "all"
        self.memo_extensions = memo_extensions
        # Not ``interner or ...``: an empty interner is falsy via __len__
        # and must still be adopted (the sweep engine shares fresh ones).
        if interner is None:
            interner = ViewInterner(adversary.n, layer_backend=layer_backend)
        self.interner = interner
        if self.interner.n != adversary.n:
            raise AnalysisError("interner and adversary disagree on n")
        if input_vectors is None:
            vectors = all_assignments(adversary.n, binary_domain)
        else:
            domain = {v for vec in input_vectors for v in vec}
            vectors = tuple(
                validate_assignment(vec, adversary.n, domain)
                for vec in input_vectors
            )
        if not vectors:
            raise AnalysisError("a prefix space needs at least one assignment")
        if len(set(vectors)) != len(vectors):
            raise AnalysisError("duplicate input assignments")
        self.input_vectors = vectors
        #: Unanimity value per input index (None for mixed assignments),
        #: precomputed so per-node valence queries are a tuple lookup.
        self.unanimity_by_index = tuple(unanimity_value(vec) for vec in vectors)
        self.max_nodes = max_nodes
        initial_states = frozenset(
            adversary.initial_states() & adversary.live_states()
        )
        if not initial_states:
            raise AnalysisError(
                f"adversary {adversary.name} admits no infinite sequences"
            )
        leaf_level = self.interner.leaf_level
        count = len(vectors)
        self._stores: list[LayerStore] = [
            LayerStore(
                levels=[leaf_level(vec) for vec in vectors],
                parents=[-1] * count,
                input_idx=list(range(count)),
                graphs=[None] * count,
                states=[initial_states] * count,
            )
        ]

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @property
    def depth(self) -> int:
        """The deepest fully constructed layer."""
        return len(self._stores) - 1

    def extend(self) -> None:
        """Construct the next layer (depth + 1).

        Parents are grouped by the adversary's reachable state set —
        oblivious adversaries collapse the whole layer into one group,
        stabilizing/eventually-forever adversaries into a few state-keyed
        groups — and each group's successor levels are interned by one
        :meth:`~repro.core.views.ViewInterner.extend_layer` call (the
        whole-layer kernel), instead of a per-parent loop.  Children are
        then emitted in the same parent-major, alphabet-minor order as
        always, so layer indexing is unchanged.
        """
        current = self._stores[-1]
        if current.condensed:
            raise AnalysisError("cannot extend: the frontier layer was condensed")
        adversary = self.adversary
        extensions = adversary.admissible_extensions
        alphabet_of = adversary.extension_alphabet
        extend_layer = self.interner.extend_layer
        memo = self.memo_extensions
        cur_levels = current.levels
        cur_inputs = current.input_idx
        cur_states = current.states
        # Group parent indices by state set (insertion order for
        # deterministic kernel-call order; state sets are cached frozensets
        # so grouping is dict probes on shared objects).
        groups: dict[frozenset, list[int]] = {}
        for i, node_states in enumerate(cur_states):
            members = groups.get(node_states)
            if members is None:
                groups[node_states] = [i]
            else:
                members.append(i)
        # The node budget is checkable before any interning happens: every
        # parent of a group contributes exactly one child per admissible
        # extension of its state set.
        count = sum(
            len(extensions(states)) * len(members)
            for states, members in groups.items()
        )
        if count > self.max_nodes:
            raise AnalysisError(
                f"prefix space exceeds max_nodes={self.max_nodes} at "
                f"depth {self.depth + 1}; reduce depth or inputs"
            )
        if count == 0:
            raise AnalysisError(
                f"{adversary.name}: no admissible extension at depth {self.depth}"
            )
        if len(groups) == 1:
            # Single-alphabet layer (every oblivious adversary): one kernel
            # call over the whole layer, columns assembled without any
            # per-child Python loop where list arithmetic can do it.
            node_states = next(iter(groups))
            exts = extensions(node_states)
            by_graph = extend_layer(cur_levels, alphabet_of(node_states), memo)
            width = len(exts)
            levels = [
                level for rowset in zip(*by_graph) for level in rowset
            ]
            parents = [i for i in range(len(cur_levels)) for _ in range(width)]
            input_idx = [inp for inp in cur_inputs for _ in range(width)]
            graphs = [graph for graph, _ in exts] * len(cur_levels)
            states_col = [nxt for _, nxt in exts] * len(cur_levels)
        else:
            # One whole-layer kernel call per state group.
            exts_of: list = [None] * len(cur_levels)
            rowset_of: list = [None] * len(cur_levels)
            for node_states, members in groups.items():
                exts = extensions(node_states)
                if not exts:
                    continue
                by_graph = extend_layer(
                    [cur_levels[i] for i in members],
                    alphabet_of(node_states),
                    memo,
                )
                for i, rowset in zip(members, zip(*by_graph)):
                    exts_of[i] = exts
                    rowset_of[i] = rowset
            levels = []
            parents = []
            input_idx = []
            graphs = []
            states_col = []
            levels_append = levels.append
            parents_append = parents.append
            input_append = input_idx.append
            graphs_append = graphs.append
            states_append = states_col.append
            for i, exts in enumerate(exts_of):
                if exts is None:
                    continue
                inp = cur_inputs[i]
                for (graph, nxt_states), level in zip(exts, rowset_of[i]):
                    levels_append(level)
                    parents_append(i)
                    input_append(inp)
                    graphs_append(graph)
                    states_append(nxt_states)
        self._stores.append(
            LayerStore(levels, parents, input_idx, graphs, states_col)
        )
        if self.retain == "frontier":
            self._stores[-2].condense()

    def ensure_depth(self, t: int) -> None:
        """Construct layers up to depth ``t``."""
        while self.depth < t:
            self.extend()

    def iter_layers(
        self, max_depth: int | None = None
    ) -> Iterator[tuple[int, LayerStore]]:
        """Stream ``(depth, LayerStore)`` pairs, constructing on demand.

        Yields layer 0, then extends one round at a time up to ``max_depth``
        (unbounded when ``None`` — the caller breaks out of the loop).
        Already-constructed layers are yielded first, so resuming iteration
        on a partially built space is cheap.  In ``retain="frontier"`` mode
        each yielded store is condensed as soon as the next layer is built,
        so consumers must finish with a layer before advancing — and
        re-iterating a space whose early layers were already condensed
        raises :class:`~repro.errors.AnalysisError` instead of silently
        yielding gutted stores.
        """
        t = 0
        while max_depth is None or t <= max_depth:
            if t > self.depth:
                self.extend()
            store = self._stores[t]
            if store.condensed:
                raise AnalysisError(
                    f"layer {t} was condensed (retain='frontier'); "
                    "iteration can only resume from the frontier layer "
                    f"(depth {self.depth})"
                )
            yield t, store
            t += 1

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #

    def layer_store(self, t: int) -> LayerStore:
        """The columnar data of layer ``t`` (constructing if needed).

        This is the fast-path API: analyses that only need view levels,
        input indices, or parent links should iterate the store's columns
        instead of materializing :class:`PrefixNode` objects.
        """
        self.ensure_depth(t)
        store = self._stores[t]
        if store.condensed:
            raise AnalysisError(
                f"layer {t} was condensed (retain='frontier'); only the "
                f"frontier layer (depth {self.depth}) retains its columns"
            )
        return store

    def layer(self, t: int) -> LayerView:
        """All admissible prefixes of depth ``t`` (constructing if needed)."""
        self.ensure_depth(t)
        return LayerView(self, t)

    def node(self, t: int, index: int) -> PrefixNode:
        """The ``index``-th node of layer ``t``."""
        self.ensure_depth(t)
        return self._materialize(t, index)

    def _materialize(self, t: int, index: int) -> PrefixNode:
        """Build (and cache) the node wrapper for one columnar entry."""
        store = self._stores[t]
        if store.condensed:
            raise AnalysisError(
                f"cannot materialize a node of condensed layer {t} "
                "(retain='frontier' drops levels/graphs below the frontier)"
            )
        node = store.nodes[index]
        if node is not None:
            return node
        if t == 0:
            prefix = PTGPrefix._make(
                self.interner,
                self.input_vectors[store.input_idx[index]],
                (),
                (store.levels[index],),
            )
            node = PrefixNode(index, None, store.input_idx[index], prefix, store.states[index])
        else:
            parent_index = store.parents[index]
            parent = self._materialize(t - 1, parent_index)
            parent_prefix = parent.prefix
            prefix = PTGPrefix._make(
                self.interner,
                parent_prefix.inputs,
                parent_prefix.graphs + (store.graphs[index],),
                parent_prefix._view_history + (store.levels[index],),
            )
            node = PrefixNode(
                index, parent_index, store.input_idx[index], prefix, store.states[index]
            )
        store.nodes[index] = node
        return node

    def parent_of(self, t: int, index: int) -> PrefixNode | None:
        """The depth ``t - 1`` truncation of a node (None at the root)."""
        self.ensure_depth(t)
        parent = self._stores[t].parents[index]
        if parent < 0:
            return None
        return self._materialize(t - 1, parent)

    def unanimous_nodes(self, t: int) -> dict:
        """Map value -> list of unanimous (``v``-valent) nodes at depth ``t``."""
        store = self.layer_store(t)
        unanimity = self.unanimity_by_index
        result: dict = {}
        for index, inp in enumerate(store.input_idx):
            value = unanimity[inp]
            if value is not None:
                result.setdefault(value, []).append(self._materialize(t, index))
        return result

    def layer_sizes(self) -> list[int]:
        """Sizes of all constructed layers."""
        return [len(store) for store in self._stores]

    def find_node(self, t: int, inputs: Sequence, word) -> PrefixNode:
        """The node with the given inputs and graph word at depth ``t``."""
        inputs = tuple(inputs)
        graphs = tuple(word)
        for node in self.layer(t):
            if node.inputs == inputs and node.prefix.graphs == graphs:
                return node
        raise AnalysisError("no such admissible prefix")

    def __repr__(self) -> str:
        return (
            f"PrefixSpace({self.adversary.name}, depth={self.depth}, "
            f"sizes={self.layer_sizes()})"
        )
