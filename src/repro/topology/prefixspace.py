"""Layered enumeration of the admissible prefix space of ``PS``.

The paper's characterizations reduce to questions about finite prefixes: the
ball ``B_{2^{-t}}(a)`` in the minimum topology is determined by the depth-t
views, and for compact adversaries Theorem 6.6 explicitly reduces consensus
solvability to ``t``-prefixes.  :class:`PrefixSpace` materializes, layer by
layer, every admissible pair (input assignment, graph word of length ``t``)
together with its interned views — the depth-``t`` skeleton of the space
``PS`` of admissible process-time graph sequences.

Each node keeps the adversary's reachable state set, so extension by one
round enumerates exactly the admissible continuations (including the
liveness pruning for non-compact adversaries: prefixes that could never be
completed to an admissible infinite sequence are not generated — they are
not prefixes of points of ``PS`` at all).

Storage layout
--------------
Layers are stored *columnar* (:class:`LayerStore`) and stay arrays end to
end: the view levels of a layer are one flat
:class:`~repro.core.views.LayerTable` column (``count * n`` interned view
ids), parent and input indices are machine-integer columns, and the
round-graph/state columns of single-alphabet layers are constant-width
tiles that never materialize per-child Python objects.  This is the
representation the hot analyses (components, decision tables,
ε-approximations) consume directly — the whole-layer extension kernel
produces it, the component analysis unions over it, and the decision-table
builder folds over it, so a solvability check never expands a layer into
per-prefix Python objects.  The :class:`PrefixNode` wrappers of the
original API are materialized lazily (and cached) when a consumer asks for
them, with full-history :class:`~repro.core.ptg.PTGPrefix` objects whose
construction is amortized O(1) per node through parent-history sharing.

Streaming and eviction
----------------------
Deep spaces are consumed frontier-by-frontier through
:meth:`PrefixSpace.iter_layers`, which constructs (and yields) one
:class:`LayerStore` at a time.  With the opt-in ``retain="frontier"``
eviction mode, only the newest layer keeps its heavy columns; as the
frontier advances, historical layers are *condensed* down to the columnar
history the layered analyses actually touch — parent links and input
indices.  The contract:

* ``parents``, ``input_idx``, and ``len(store)`` stay valid at every depth;
* ``levels``, ``graphs``, and ``states`` are only available on the frontier
  layer; touching them on a condensed layer raises
  :class:`~repro.errors.AnalysisError`;
* :class:`PrefixNode` / :class:`~repro.core.ptg.PTGPrefix` materialization
  needs the graph history of *every* ancestor layer, so it is unavailable
  in frontier mode altogether (it raises once any ancestor is condensed);
* frontier-mode extension skips the interner's ``(level, graph)`` memo so
  depth-14+ runs hold the frontier plus the interner's view tables and
  nothing else.

``retain="all"`` (the default) keeps every layer, exactly as before.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, Sequence

from repro.adversaries.base import MessageAdversary
from repro.core.inputs import (
    all_assignments,
    binary_domain,
    unanimity_value,
    validate_assignment,
)
from repro.core.ptg import PTGPrefix
from repro.core.views import (
    LayerTable,
    ViewInterner,
    int64_column,
    numpy_module,
)
from repro.errors import AnalysisError

__all__ = ["PrefixNode", "PrefixSpace", "LayerStore", "LayerView"]


class PrefixNode:
    """One admissible prefix: input assignment + graph word + views + states."""

    __slots__ = ("index", "parent", "input_index", "prefix", "states")

    def __init__(
        self,
        index: int,
        parent: int | None,
        input_index: int,
        prefix: PTGPrefix,
        states: frozenset,
    ) -> None:
        self.index = index
        self.parent = parent
        self.input_index = input_index
        self.prefix = prefix
        self.states = states

    @property
    def inputs(self) -> tuple:
        """The input assignment of this prefix."""
        return self.prefix.inputs

    @property
    def depth(self) -> int:
        """The number of completed rounds."""
        return self.prefix.depth

    @property
    def unanimous_value(self):
        """The common input value, or ``None`` for mixed assignments."""
        return self.prefix.unanimous_value

    def __repr__(self) -> str:
        return (
            f"PrefixNode(#{self.index}, inputs={self.inputs!r}, "
            f"depth={self.depth})"
        )


class _TiledColumn(Sequence):
    """A constant-tile column: ``pattern`` repeated ``repeats`` times.

    Single-alphabet layers repeat the same per-parent graph/state tile for
    every parent, so the column stores the tile once instead of one Python
    reference per child (at depth 14 that is the difference between a few
    dozen bytes and a 150 MB pointer list).  Reads behave exactly like the
    materialized list: ``column[i] == pattern[i % len(pattern)]``.
    """

    __slots__ = ("items", "repeats")

    def __init__(self, items: list, repeats: int) -> None:
        self.items = list(items)
        self.repeats = repeats

    def __len__(self) -> int:
        return len(self.items) * self.repeats

    def __getitem__(self, item):
        if isinstance(item, slice):
            return [self[i] for i in range(*item.indices(len(self)))]
        size = len(self)
        if item < 0:
            item += size
        if not 0 <= item < size:
            raise IndexError(item)
        return self.items[item % len(self.items)]

    def __iter__(self):
        items = self.items
        for _ in range(self.repeats):
            yield from items

    def __repr__(self) -> str:
        return f"_TiledColumn({self.items!r} x {self.repeats})"


class LayerStore:
    """Columnar storage of one layer: parallel per-prefix columns.

    Attributes
    ----------
    levels:
        The :class:`~repro.core.views.LayerTable` of this depth — one flat
        view-id column; ``levels[i]`` materializes the level tuple of
        prefix ``i`` on demand.
    parents:
        Per prefix, the index of its depth ``t - 1`` truncation (``-1`` on
        the root layer); an ``array('q')`` or int64 numpy column.
    input_idx:
        Per prefix, the index into ``space.input_vectors`` (same column
        kinds as ``parents``).
    graphs:
        Per prefix, the communication graph of the last round (``None`` on
        the root layer); a tiled column on single-alphabet layers.
    states:
        Per prefix, the adversary's reachable state set (tiled likewise).
    """

    __slots__ = ("levels", "parents", "input_idx", "graphs", "states", "nodes", "count")

    def __init__(self, levels, parents, input_idx, graphs, states) -> None:
        if not isinstance(levels, LayerTable) and levels is not None:
            levels = LayerTable.from_levels(
                len(levels[0]) if levels else 0, levels
            )
        self.levels: LayerTable | None = levels
        self.parents = parents
        self.input_idx = input_idx
        self.graphs = graphs
        self.states = states
        #: Lazy cache of materialized :class:`PrefixNode` wrappers (sparse:
        #: deep layers hold millions of prefixes, wrappers are rare).
        self.nodes: dict[int, PrefixNode] | None = {}
        #: Layer size; survives :meth:`condense`.
        self.count: int = len(levels) if levels is not None else 0

    def __len__(self) -> int:
        return self.count

    @property
    def condensed(self) -> bool:
        """Whether the heavy columns have been evicted (``retain="frontier"``)."""
        return self.levels is None

    def condense(self) -> None:
        """Drop the heavy columns, keeping parents/input indices and the size."""
        self.levels = None
        self.graphs = None
        self.states = None
        self.nodes = None

    def parent_array(self):
        """The parents column as an int64 numpy array (vectorized paths)."""
        return int64_column(self.parents)

    def input_array(self):
        """The input-index column as an int64 numpy array."""
        return int64_column(self.input_idx)


class LayerView(Sequence):
    """Sequence facade over one layer; nodes materialize on access."""

    __slots__ = ("_space", "_depth")

    def __init__(self, space: "PrefixSpace", depth: int) -> None:
        self._space = space
        self._depth = depth

    def __len__(self) -> int:
        return len(self._space._stores[self._depth])

    def __getitem__(self, item):
        if isinstance(item, slice):
            return [
                self._space._materialize(self._depth, i)
                for i in range(*item.indices(len(self)))
            ]
        size = len(self)
        if item < 0:
            item += size
        if not 0 <= item < size:
            raise IndexError(item)
        return self._space._materialize(self._depth, item)

    def __iter__(self) -> Iterator[PrefixNode]:
        materialize = self._space._materialize
        depth = self._depth
        for i in range(len(self)):
            yield materialize(depth, i)

    def __repr__(self) -> str:
        return f"LayerView(depth={self._depth}, size={len(self)})"


class PrefixSpace:
    """The admissible prefixes of ``PS`` up to a growing depth.

    Parameters
    ----------
    adversary:
        The message adversary generating the space.
    input_vectors:
        The input assignments to consider; defaults to all assignments over
        the binary domain ``{0, 1}``.  (The paper's ``PS`` ranges over all
        assignments of the input domain.)
    interner:
        Optionally share a view interner with other analyses.
    max_nodes:
        Safety valve: :meth:`extend` raises once a layer would exceed this
        many prefixes.
    retain:
        ``"all"`` (default) keeps every constructed layer; ``"frontier"``
        condenses historical layers to parents + input indices as the
        frontier advances (see module docstring for the eviction contract).
    memo_extensions:
        Whether layer extension populates the interner's ``(level, graph)``
        memo so other spaces sharing the interner reuse the work.  Defaults
        to ``None`` = "memoize exactly when an interner was passed in and
        layers are retained" (a shared interner signals cross-space reuse,
        e.g. the sweep engine; frontier mode keeps the memo off so memory
        stays frontier-bounded).
    layer_backend:
        Columnar-pipeline kernel backend (``"numpy"``/``"python"``/``None``
        for the import-time default) of the interner this space creates
        when none is shared in; ignored — the shared interner's own
        backend wins — when ``interner`` is given.  The same switch also
        selects the vectorized vs pure-Python paths of the component
        analysis and decision-table construction over this space's layers.
    plan_cache_size:
        Capacity of the created interner's per-alphabet extension-plan LRU
        (``None`` = library default; ignored when ``interner`` is given).
    extension_workers:
        Process count for the created interner's sharded whole-layer
        extension (``None``/``1`` = serial; ignored when ``interner`` is
        given — the shared interner's own knob wins).  Orthogonal to
        ``layer_backend``: only the numpy kernel shards, and results are
        bit-identical to the serial numpy kernel for any worker count.

    Examples
    --------
    >>> from repro.adversaries.lossylink import lossy_link_no_hub
    >>> space = PrefixSpace(lossy_link_no_hub())
    >>> space.ensure_depth(2)
    >>> len(space.layer(2))
    16
    """

    def __init__(
        self,
        adversary: MessageAdversary,
        input_vectors: Iterable[Sequence] | None = None,
        interner: ViewInterner | None = None,
        max_nodes: int = 2_000_000,
        retain: str = "all",
        memo_extensions: bool | None = None,
        layer_backend: str | None = None,
        plan_cache_size: int | None = None,
        extension_workers: int | None = None,
    ) -> None:
        self.adversary = adversary
        if retain not in ("all", "frontier"):
            raise AnalysisError(f"retain must be 'all' or 'frontier', got {retain!r}")
        self.retain = retain
        if memo_extensions is None:
            memo_extensions = interner is not None and retain == "all"
        self.memo_extensions = memo_extensions
        # Not ``interner or ...``: an empty interner is falsy via __len__
        # and must still be adopted (the sweep engine shares fresh ones).
        if interner is None:
            interner = ViewInterner(
                adversary.n,
                layer_backend=layer_backend,
                plan_cache_size=plan_cache_size,
                extension_workers=extension_workers,
            )
        self.interner = interner
        if self.interner.n != adversary.n:
            raise AnalysisError("interner and adversary disagree on n")
        if input_vectors is None:
            vectors = all_assignments(adversary.n, binary_domain)
        else:
            domain = {v for vec in input_vectors for v in vec}
            vectors = tuple(
                validate_assignment(vec, adversary.n, domain)
                for vec in input_vectors
            )
        if not vectors:
            raise AnalysisError("a prefix space needs at least one assignment")
        if len(set(vectors)) != len(vectors):
            raise AnalysisError("duplicate input assignments")
        self.input_vectors = vectors
        #: Unanimity value per input index (None for mixed assignments),
        #: precomputed so per-node valence queries are a tuple lookup.
        self.unanimity_by_index = tuple(unanimity_value(vec) for vec in vectors)
        self.max_nodes = max_nodes
        initial_states = frozenset(
            adversary.initial_states() & adversary.live_states()
        )
        if not initial_states:
            raise AnalysisError(
                f"adversary {adversary.name} admits no infinite sequences"
            )
        leaf_level = self.interner.leaf_level
        count = len(vectors)
        flat = array("q")
        for vec in vectors:
            flat.extend(leaf_level(vec))
        self._stores: list[LayerStore] = [
            LayerStore(
                levels=LayerTable(adversary.n, flat),
                parents=array("q", [-1]) * count,
                input_idx=array("q", range(count)),
                graphs=_TiledColumn([None], count),
                states=_TiledColumn([initial_states], count),
            )
        ]

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @property
    def depth(self) -> int:
        """The deepest fully constructed layer."""
        return len(self._stores) - 1

    def extend(self) -> None:
        """Construct the next layer (depth + 1).

        Parents are grouped by the adversary's reachable state set —
        oblivious adversaries collapse the whole layer into one group,
        stabilizing/eventually-forever adversaries into a few state-keyed
        groups — and each group's successor levels are interned by one
        whole-layer kernel call
        (:meth:`~repro.core.views.ViewInterner.extend_layer_table`), whose
        column output is interleaved straight into the child layer's flat
        columns.  Children are emitted in the same parent-major,
        alphabet-minor order as always, so layer indexing is unchanged.
        """
        current = self._stores[-1]
        if current.condensed:
            raise AnalysisError("cannot extend: the frontier layer was condensed")
        adversary = self.adversary
        extensions = adversary.admissible_extensions
        alphabet_of = adversary.extension_alphabet
        memo = self.memo_extensions
        cur_table = current.levels
        cur_states = current.states
        count = len(current)
        # Group parent indices by state set (insertion order for
        # deterministic kernel-call order; state sets are cached frozensets
        # so grouping is dict probes on shared objects).  Tiled state
        # columns with one distinct tile — every oblivious layer — skip the
        # per-parent pass entirely.
        groups: dict[frozenset, list[int] | None]
        if isinstance(cur_states, _TiledColumn) and len(set(cur_states.items)) == 1:
            groups = {cur_states.items[0]: None}  # None = the whole layer
        else:
            groups = {}
            for i, node_states in enumerate(cur_states):
                members = groups.get(node_states)
                if members is None:
                    groups[node_states] = [i]
                else:
                    members.append(i)
        # The node budget is checkable before any interning happens: every
        # parent of a group contributes exactly one child per admissible
        # extension of its state set.
        child_count = sum(
            len(extensions(states))
            * (count if members is None else len(members))
            for states, members in groups.items()
        )
        if child_count > self.max_nodes:
            raise AnalysisError(
                f"prefix space exceeds max_nodes={self.max_nodes} at "
                f"depth {self.depth + 1}; reduce depth or inputs"
            )
        if child_count == 0:
            raise AnalysisError(
                f"{adversary.name}: no admissible extension at depth {self.depth}"
            )
        if len(groups) == 1 and next(iter(groups.values())) is None:
            store = self._extend_single_group(
                cur_table, current, next(iter(groups)), memo
            )
        else:
            store = self._extend_grouped(cur_table, current, groups, memo)
        self._stores.append(store)
        if self.retain == "frontier":
            self._stores[-2].condense()

    def _extend_single_group(
        self, cur_table: LayerTable, current: LayerStore, node_states, memo: bool
    ) -> LayerStore:
        """One kernel call over the whole layer; columns interleave flat."""
        adversary = self.adversary
        exts = adversary.admissible_extensions(node_states)
        alphabet = adversary.extension_alphabet(node_states)
        interner = self.interner
        n = adversary.n
        count = len(cur_table)
        width = len(exts)
        if memo:
            # The (level, graph) memo is keyed by level tuples, so this
            # path materializes them (shared-interner interactive use).
            by_graph = interner.extend_layer(cur_table.tolist(), alphabet, True)
            flat = array("q")
            for i in range(count):
                for column in by_graph:
                    flat.extend(column[i])
            child_table = LayerTable(n, flat)
        else:
            tables = interner.extend_layer_table(cur_table, alphabet)
            child_table = _interleave_tables(n, count, tables)
        np = numpy_module()
        if np is not None and isinstance(child_table.ids, np.ndarray):
            parents = np.repeat(np.arange(count, dtype=np.int64), width)
            input_idx = np.repeat(current.input_array(), width)
        else:
            parents = array("q", bytes(8 * count * width))
            input_idx = array("q", bytes(8 * count * width))
            base = array("q", range(count))
            cur_inputs = current.input_idx
            if not isinstance(cur_inputs, array):
                cur_inputs = array("q", cur_inputs)
            for j in range(width):
                parents[j::width] = base
                input_idx[j::width] = cur_inputs
        return LayerStore(
            levels=child_table,
            parents=parents,
            input_idx=input_idx,
            graphs=_TiledColumn([graph for graph, _ in exts], count),
            states=_TiledColumn([nxt for _, nxt in exts], count),
        )

    def _extend_grouped(
        self, cur_table: LayerTable, current: LayerStore, groups: dict, memo: bool
    ) -> LayerStore:
        """One whole-layer kernel call per state group, merged parent-major."""
        adversary = self.adversary
        extensions = adversary.admissible_extensions
        alphabet_of = adversary.extension_alphabet
        interner = self.interner
        n = adversary.n
        count = len(cur_table)
        exts_of: list = [None] * count
        cols_of: list = [None] * count
        pos_of: list = [0] * count
        for node_states, members in groups.items():
            if members is None:
                members = range(count)
            exts = extensions(node_states)
            if not exts:
                continue
            sub = _gather_subtable(cur_table, members)
            alphabet = alphabet_of(node_states)
            if memo:
                by_graph = interner.extend_layer(sub.tolist(), alphabet, True)
                group_cols = [
                    LayerTable.from_levels(n, column).ids for column in by_graph
                ]
            else:
                group_cols = [
                    t.ids for t in interner.extend_layer_table(sub, alphabet)
                ]
            for mi, i in enumerate(members):
                exts_of[i] = exts
                cols_of[i] = group_cols
                pos_of[i] = mi
        flat = array("q")
        parents = array("q")
        input_idx = array("q")
        graphs: list = []
        states_col: list = []
        parents_append = parents.append
        input_append = input_idx.append
        graphs_append = graphs.append
        states_append = states_col.append
        cur_inputs = current.input_idx
        for i, exts in enumerate(exts_of):
            if exts is None:
                continue
            inp = cur_inputs[i]
            group_cols = cols_of[i]
            base = pos_of[i] * n
            for (graph, nxt_states), column in zip(exts, group_cols):
                chunk = column[base : base + n]
                flat.extend(
                    chunk.tolist() if not isinstance(chunk, (array, list)) else chunk
                )
                parents_append(i)
                input_append(inp)
                graphs_append(graph)
                states_append(nxt_states)
        return LayerStore(
            levels=LayerTable(n, flat),
            parents=parents,
            input_idx=input_idx,
            graphs=graphs,
            states=states_col,
        )

    def ensure_depth(self, t: int) -> None:
        """Construct layers up to depth ``t``."""
        while self.depth < t:
            self.extend()

    def iter_layers(
        self, max_depth: int | None = None
    ) -> Iterator[tuple[int, LayerStore]]:
        """Stream ``(depth, LayerStore)`` pairs, constructing on demand.

        Yields layer 0, then extends one round at a time up to ``max_depth``
        (unbounded when ``None`` — the caller breaks out of the loop).
        Already-constructed layers are yielded first, so resuming iteration
        on a partially built space is cheap.  In ``retain="frontier"`` mode
        each yielded store is condensed as soon as the next layer is built,
        so consumers must finish with a layer before advancing — and
        re-iterating a space whose early layers were already condensed
        raises :class:`~repro.errors.AnalysisError` instead of silently
        yielding gutted stores.
        """
        t = 0
        while max_depth is None or t <= max_depth:
            if t > self.depth:
                self.extend()
            store = self._stores[t]
            if store.condensed:
                raise AnalysisError(
                    f"layer {t} was condensed (retain='frontier'); "
                    "iteration can only resume from the frontier layer "
                    f"(depth {self.depth})"
                )
            yield t, store
            t += 1

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #

    def layer_store(self, t: int) -> LayerStore:
        """The columnar data of layer ``t`` (constructing if needed).

        This is the fast-path API: analyses that only need view levels,
        input indices, or parent links should iterate the store's columns
        instead of materializing :class:`PrefixNode` objects.
        """
        self.ensure_depth(t)
        store = self._stores[t]
        if store.condensed:
            raise AnalysisError(
                f"layer {t} was condensed (retain='frontier'); only the "
                f"frontier layer (depth {self.depth}) retains its columns"
            )
        return store

    def layer(self, t: int) -> LayerView:
        """All admissible prefixes of depth ``t`` (constructing if needed)."""
        self.ensure_depth(t)
        return LayerView(self, t)

    def node(self, t: int, index: int) -> PrefixNode:
        """The ``index``-th node of layer ``t``."""
        self.ensure_depth(t)
        return self._materialize(t, index)

    def _materialize(self, t: int, index: int) -> PrefixNode:
        """Build (and cache) the node wrapper for one columnar entry."""
        store = self._stores[t]
        if store.condensed:
            raise AnalysisError(
                f"cannot materialize a node of condensed layer {t} "
                "(retain='frontier' drops levels/graphs below the frontier)"
            )
        index = int(index)
        node = store.nodes.get(index)
        if node is not None:
            return node
        input_index = int(store.input_idx[index])
        if t == 0:
            prefix = PTGPrefix._make(
                self.interner,
                self.input_vectors[input_index],
                (),
                (store.levels[index],),
            )
            node = PrefixNode(index, None, input_index, prefix, store.states[index])
        else:
            parent_index = int(store.parents[index])
            parent = self._materialize(t - 1, parent_index)
            parent_prefix = parent.prefix
            prefix = PTGPrefix._make(
                self.interner,
                parent_prefix.inputs,
                parent_prefix.graphs + (store.graphs[index],),
                parent_prefix._view_history + (store.levels[index],),
            )
            node = PrefixNode(
                index, parent_index, input_index, prefix, store.states[index]
            )
        store.nodes[index] = node
        return node

    def parent_of(self, t: int, index: int) -> PrefixNode | None:
        """The depth ``t - 1`` truncation of a node (None at the root)."""
        self.ensure_depth(t)
        parent = int(self._stores[t].parents[index])
        if parent < 0:
            return None
        return self._materialize(t - 1, parent)

    def unanimous_nodes(self, t: int) -> dict:
        """Map value -> list of unanimous (``v``-valent) nodes at depth ``t``."""
        store = self.layer_store(t)
        unanimity = self.unanimity_by_index
        result: dict = {}
        for index, inp in enumerate(store.input_idx):
            value = unanimity[inp]
            if value is not None:
                result.setdefault(value, []).append(self._materialize(t, index))
        return result

    def layer_sizes(self) -> list[int]:
        """Sizes of all constructed layers."""
        return [len(store) for store in self._stores]

    def find_node(self, t: int, inputs: Sequence, word) -> PrefixNode:
        """The node with the given inputs and graph word at depth ``t``."""
        inputs = tuple(inputs)
        graphs = tuple(word)
        for node in self.layer(t):
            if node.inputs == inputs and node.prefix.graphs == graphs:
                return node
        raise AnalysisError("no such admissible prefix")

    def __repr__(self) -> str:
        return (
            f"PrefixSpace({self.adversary.name}, depth={self.depth}, "
            f"sizes={self.layer_sizes()})"
        )


def _interleave_tables(n: int, count: int, tables: list[LayerTable]) -> LayerTable:
    """Merge per-graph layer tables parent-major into one flat column.

    ``tables[j][i]`` becomes child ``i * width + j`` — a stack/ravel on the
    numpy backend, strided array-slice assignment on pure Python; no
    per-child tuples either way.
    """
    width = len(tables)
    if width == 1:
        return LayerTable(n, tables[0].ids)
    np = numpy_module()
    if np is not None and isinstance(tables[0].ids, np.ndarray):
        stacked = np.stack([t.array() for t in tables], axis=1)
        return LayerTable(n, stacked.reshape(-1))
    flat = array("q", bytes(8 * count * width * n))
    stride = width * n
    for j, t in enumerate(tables):
        col = t.ids
        if not isinstance(col, array):
            col = array("q", col)
        for p in range(n):
            flat[j * n + p :: stride] = col[p::n]
    return LayerTable(n, flat)


def _gather_subtable(table: LayerTable, members) -> LayerTable:
    """The sub-table of the given parent indices (order-preserving)."""
    n = table.n
    if isinstance(members, range) and members == range(len(table)):
        return table
    ids = table.ids
    np = numpy_module()
    if np is not None and isinstance(ids, np.ndarray):
        return LayerTable(n, ids.reshape(-1, n)[list(members)].reshape(-1))
    flat = array("q")
    for i in members:
        chunk = ids[i * n : (i + 1) * n]
        flat.extend(chunk)
    return LayerTable(n, flat)
