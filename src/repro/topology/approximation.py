"""The ε-approximation of Definition 6.2, implemented literally.

``PS^ε_z`` is defined by iterating ball unions: start from ``{z}``, repeatedly
add every admissible prefix within ``ε`` of a member, until a fixpoint.  For
``ε = 2^{-t}`` on the depth-``t`` layer this fixpoint coincides with the
connected component of the indistinguishability graph, which
:class:`~repro.topology.components.ComponentAnalysis` computes with
union-find.  This module keeps the *literal* iterative construction — useful
both as an executable rendering of the definition and as an independent
cross-check (the test suite asserts the two computations agree on every
example).

It also provides the per-value approximation ``PS^ε(v) = ∪ PS^ε_{z_v}`` and
Lemma 6.3's properties as executable checks.
"""

from __future__ import annotations

from repro.errors import AnalysisError
from repro.topology.prefixspace import PrefixNode, PrefixSpace

__all__ = ["EpsApproximation", "eps_ball", "eps_approximation_of_value"]


def eps_ball(space: PrefixSpace, depth: int, center: PrefixNode) -> list[PrefixNode]:
    """The ball ``B_{2^{-depth}}(center) ∩ PS`` on the depth-``depth`` layer.

    A prefix is in the ball iff some process's views agree with ``center``'s
    through round ``depth`` (i.e. ``d_min < 2^{-depth}``).
    """
    store = space.layer_store(depth)
    center_views = center.prefix.views(depth)
    n = space.adversary.n
    ball = []
    for index, views in enumerate(store.levels):
        if any(views[p] == center_views[p] for p in range(n)):
            ball.append(space.node(depth, index))
    return ball


class EpsApproximation:
    """The iterative construction ``PS^ε_z`` of Definition 6.2.

    Parameters
    ----------
    space:
        The admissible prefix space.
    depth:
        Determines ``ε = 2^{-depth}`` and the layer on which to work.
    seed:
        The starting prefix ``z``.

    Attributes
    ----------
    iterations:
        Number of ball-union rounds until the fixpoint (the ``m`` of
        Definition 6.2).
    member_indices:
        Indices of the members on the layer, in first-reached order.
    """

    def __init__(self, space: PrefixSpace, depth: int, seed: PrefixNode) -> None:
        self.space = space
        self.depth = depth
        self.seed = seed
        store = space.layer_store(depth)
        levels = store.levels
        if seed.depth != depth:
            raise AnalysisError("seed must live on the chosen layer")

        n = space.adversary.n
        # Index views once: packed (view id, p) key -> node indices.
        buckets: dict[int, list[int]] = {}
        for index, views in enumerate(levels):
            for p in range(n):
                buckets.setdefault(views[p] * n + p, []).append(index)

        member_flags = [False] * len(levels)
        member_flags[seed.index] = True
        frontier = [seed.index]
        order = [seed.index]
        iterations = 0
        while frontier:
            iterations += 1
            nxt: list[int] = []
            for index in frontier:
                views = levels[index]
                for p in range(n):
                    for other in buckets[views[p] * n + p]:
                        if not member_flags[other]:
                            member_flags[other] = True
                            nxt.append(other)
                            order.append(other)
            frontier = nxt
        self.iterations = iterations
        self.member_indices = order

    def members(self) -> list[PrefixNode]:
        """The member prefixes, in the order the construction reached them."""
        layer = self.space.layer(self.depth)
        return [layer[i] for i in self.member_indices]

    def __contains__(self, node: PrefixNode) -> bool:
        return node.index in set(self.member_indices)

    def __len__(self) -> int:
        return len(self.member_indices)

    def contains_valence(self, value) -> bool:
        """Whether some unanimous-``value`` prefix belongs to the set."""
        return any(node.unanimous_value == value for node in self.members())

    def __repr__(self) -> str:
        return (
            f"EpsApproximation(depth={self.depth}, size={len(self)}, "
            f"iterations={self.iterations})"
        )


def eps_approximation_of_value(
    space: PrefixSpace, depth: int, value
) -> list[PrefixNode]:
    """``PS^ε(v)``: the union of ``PS^ε_{z_v}`` over all ``v``-valent seeds.

    Definition 6.2's per-value approximation, computed by seeding the
    iteration at every unanimous-``value`` prefix of the layer.
    """
    seeds = space.unanimous_nodes(depth).get(value, [])
    if not seeds:
        raise AnalysisError(f"no unanimous-{value!r} prefix at depth {depth}")
    seen: set[int] = set()
    result: list[PrefixNode] = []
    for seed in seeds:
        if seed.index in seen:
            continue
        approx = EpsApproximation(space, depth, seed)
        for node in approx.members():
            if node.index not in seen:
                seen.add(node.index)
                result.append(node)
    return result
