"""Exact distances between ultimately periodic sequences; fair/unfair limits.

The non-compact side of the paper (Definition 5.16, Corollary 5.19,
Section 6.3) is about *limits*: infinite sequences approached by runs from
two different decision sets.  Ultimately periodic ("lasso") sequences
``x · stem · cycle^ω`` make these limits computable:

* the set ``Eq_t = {p : V_p(α^t) = V_p(β^t)}`` of processes that cannot yet
  distinguish two sequences evolves *deterministically*:
  ``Eq_{t+1} = {p : In_{G^α_{t+1}}(p) = In_{G^β_{t+1}}(p) ⊆ Eq_t}``,
  and is monotonically decreasing (views are nested);
* on a pair of lassos the joint state (position in α, position in β, Eq)
  lives in a finite space, so the evolution reaches a cycle after finitely
  many rounds, at which point every surviving process keeps its view
  equality *forever*.

This yields exact values of ``d_p`` and ``d_min`` on lasso pairs — including
the exact statement "distance zero", which no finite-prefix computation
could certify — and hence an effective test for the paper's *unfair pairs*
(two limits at ``d_min`` distance 0 approached from different decision sets)
and *fair sequences* (a common limit).
"""

from __future__ import annotations

from math import ldexp
from typing import Sequence

from repro.adversaries.base import MessageAdversary
from repro.adversaries.compactness import limit_closure
from repro.core.digraph import Digraph
from repro.core.graphword import GraphWord
from repro.core.inputs import unanimity_value
from repro.core.ptg import PTGPrefix
from repro.core.views import ViewInterner
from repro.errors import AnalysisError

__all__ = [
    "UltimatelyPeriodic",
    "EqEvolution",
    "eq_evolution",
    "d_p_periodic",
    "d_min_periodic",
    "views_equal_forever",
    "is_excluded_limit",
    "UnfairPairReport",
    "check_unfair_pair",
]


class UltimatelyPeriodic:
    """An ultimately periodic sequence ``(inputs, stem · cycle^ω)``.

    Examples
    --------
    >>> from repro.core.digraph import arrow
    >>> up = UltimatelyPeriodic((0, 1), [arrow("<-")], [arrow("->")])
    >>> up.graph_at(1).name
    '<-'
    >>> up.graph_at(5).name
    '->'
    """

    __slots__ = ("inputs", "stem", "cycle")

    def __init__(
        self,
        inputs: Sequence,
        stem: Sequence[Digraph] | GraphWord,
        cycle: Sequence[Digraph] | GraphWord,
    ) -> None:
        cycle_graphs = tuple(cycle)
        if not cycle_graphs:
            raise AnalysisError("an ultimately periodic sequence needs a cycle")
        stem_graphs = tuple(stem)
        n = cycle_graphs[0].n
        for g in stem_graphs + cycle_graphs:
            if g.n != n:
                raise AnalysisError("all graphs must share n")
        self.inputs = tuple(inputs)
        if len(self.inputs) != n:
            raise AnalysisError("inputs length must equal n")
        self.stem = GraphWord(stem_graphs, n=n)
        self.cycle = GraphWord(cycle_graphs, n=n)

    @property
    def n(self) -> int:
        """Number of processes."""
        return self.cycle.n

    @property
    def unanimous_value(self):
        """The common input value, or ``None`` for mixed assignments."""
        return unanimity_value(self.inputs)

    def graph_at(self, t: int) -> Digraph:
        """The communication graph of round ``t`` (1-based)."""
        if t < 1:
            raise AnalysisError("rounds are 1-based")
        if t <= len(self.stem):
            return self.stem[t - 1]
        return self.cycle[(t - len(self.stem) - 1) % len(self.cycle)]

    def word_prefix(self, t: int) -> GraphWord:
        """The first ``t`` graphs as a word."""
        return GraphWord([self.graph_at(s) for s in range(1, t + 1)], n=self.n)

    def ptg_prefix(self, interner: ViewInterner, t: int) -> PTGPrefix:
        """The depth-``t`` process-time graph prefix of this sequence."""
        return PTGPrefix(interner, self.inputs, self.word_prefix(t).graphs)

    def pumped(self, k: int, new_cycle: Sequence[Digraph] | GraphWord) -> "UltimatelyPeriodic":
        """Unroll ``k`` cycle repetitions into the stem, then follow ``new_cycle``.

        ``up.pumped(k, w)`` is the approaching sequence that agrees with
        ``up`` for ``len(stem) + k * len(cycle)`` rounds and then behaves as
        ``w^ω`` — exactly the construction of Figure 5's approaching runs.
        """
        if k < 0:
            raise AnalysisError("pump count must be nonnegative")
        stem = self.stem.graphs + self.cycle.graphs * k
        return UltimatelyPeriodic(self.inputs, stem, tuple(new_cycle))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UltimatelyPeriodic):
            return NotImplemented
        return (
            self.inputs == other.inputs
            and self.stem == other.stem
            and self.cycle == other.cycle
        )

    def __hash__(self) -> int:
        return hash((self.inputs, self.stem, self.cycle))

    def __repr__(self) -> str:
        return (
            f"UltimatelyPeriodic(inputs={self.inputs!r}, stem={self.stem!r}, "
            f"cycle={self.cycle!r})"
        )


class EqEvolution:
    """Result of running the Eq-set automaton on a lasso pair.

    Attributes
    ----------
    divergence:
        ``{p: t}`` — the first round at which ``p``'s views differ; processes
        absent from the mapping never distinguish the sequences.
    survivors:
        The processes whose views agree *forever* (exact statement).
    profile:
        The Eq-set trajectory until the joint state first repeats.
    """

    __slots__ = ("divergence", "survivors", "profile")

    def __init__(
        self,
        divergence: dict[int, int],
        survivors: frozenset[int],
        profile: list[frozenset[int]],
    ) -> None:
        self.divergence = divergence
        self.survivors = survivors
        self.profile = profile

    def __repr__(self) -> str:
        return (
            f"EqEvolution(survivors={set(self.survivors)}, "
            f"divergence={self.divergence})"
        )


def eq_evolution(a: UltimatelyPeriodic, b: UltimatelyPeriodic) -> EqEvolution:
    """Run the deterministic Eq-set evolution to its (finite) cycle.

    The joint state is (position of α in its lasso, position of β, Eq-set);
    once it repeats, the Eq-set is constant forever because it is
    monotonically decreasing.
    """
    if a.n != b.n:
        raise AnalysisError("sequences must share n")
    n = a.n
    alive = frozenset(p for p in range(n) if a.inputs[p] == b.inputs[p])
    divergence = {p: 0 for p in range(n) if p not in alive}
    profile = [alive]

    def position(up: UltimatelyPeriodic, t: int) -> int:
        # Position descriptor of round t+1 within the lasso of `up`.
        if t < len(up.stem):
            return t
        return len(up.stem) + (t - len(up.stem)) % len(up.cycle)

    seen: set[tuple[int, int, frozenset]] = set()
    t = 0
    while True:
        state = (position(a, t), position(b, t), alive)
        if state in seen:
            break
        seen.add(state)
        ga = a.graph_at(t + 1)
        gb = b.graph_at(t + 1)
        nxt = frozenset(
            p
            for p in alive
            if ga.in_neighbors(p) == gb.in_neighbors(p)
            and ga.in_neighbors(p) <= alive
        )
        t += 1
        for p in alive - nxt:
            divergence[p] = t
        alive = nxt
        profile.append(alive)
    return EqEvolution(divergence, alive, profile)


def d_p_periodic(a: UltimatelyPeriodic, b: UltimatelyPeriodic, p: int) -> float:
    """Exact ``d_p`` between two ultimately periodic sequences."""
    evolution = eq_evolution(a, b)
    if p in evolution.survivors:
        return 0.0
    return ldexp(1.0, -evolution.divergence[p])


def d_min_periodic(a: UltimatelyPeriodic, b: UltimatelyPeriodic) -> float:
    """Exact ``d_min`` between two ultimately periodic sequences.

    ``0.0`` here is an *exact* statement: some process's views agree at
    every finite time.
    """
    evolution = eq_evolution(a, b)
    if evolution.survivors:
        return 0.0
    return ldexp(1.0, -max(evolution.divergence.values()))


def views_equal_forever(
    a: UltimatelyPeriodic, b: UltimatelyPeriodic
) -> frozenset[int]:
    """The processes whose views agree at every time (may be empty)."""
    return eq_evolution(a, b).survivors


def is_excluded_limit(adversary: MessageAdversary, up: UltimatelyPeriodic) -> bool:
    """Whether ``up`` is a limit of admissible prefixes yet not admissible.

    These are exactly the points the message adversary must exclude for
    consensus to become solvable in the non-compact setting
    (Corollary 5.19, Section 6.3): every finite prefix of ``up`` is an
    admissible prefix, but the infinite sequence violates the liveness
    condition.
    """
    closure = limit_closure(adversary)
    return closure.admits_lasso(up.stem, up.cycle) and not adversary.admits_lasso(
        up.stem, up.cycle
    )


class UnfairPairReport:
    """Diagnosis of a candidate fair sequence / unfair pair (Def. 5.16)."""

    __slots__ = (
        "distance",
        "survivors",
        "left_admissible",
        "right_admissible",
        "left_excluded_limit",
        "right_excluded_limit",
    )

    def __init__(self, **kwargs) -> None:
        for key in self.__slots__:
            setattr(self, key, kwargs[key])

    @property
    def is_unfair_pair(self) -> bool:
        """Distance-zero pair of limits (a fair sequence when they coincide)."""
        return self.distance == 0.0

    def __repr__(self) -> str:
        return (
            f"UnfairPairReport(distance={self.distance}, "
            f"survivors={set(self.survivors)}, "
            f"left_admissible={self.left_admissible}, "
            f"right_admissible={self.right_admissible})"
        )


def check_unfair_pair(
    adversary: MessageAdversary,
    left: UltimatelyPeriodic,
    right: UltimatelyPeriodic,
) -> UnfairPairReport:
    """Measure a candidate unfair pair against an adversary.

    For a solvable non-compact adversary the paper predicts: the pair has
    ``d_min`` distance 0 and at least the valence-crossing limits are
    excluded (not admissible) — Corollary 5.19.
    """
    evolution = eq_evolution(left, right)
    distance = 0.0 if evolution.survivors else ldexp(
        1.0, -max(evolution.divergence.values())
    )
    return UnfairPairReport(
        distance=distance,
        survivors=evolution.survivors,
        left_admissible=adversary.admits_lasso(left.stem, left.cycle),
        right_admissible=adversary.admits_lasso(right.stem, right.cycle),
        left_excluded_limit=is_excluded_limit(adversary, left),
        right_excluded_limit=is_excluded_limit(adversary, right),
    )
