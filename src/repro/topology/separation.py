"""Set distances and separation of decision sets (Theorems 5.13/5.14, Fig. 4/5).

For compact adversaries the decision sets of a correct algorithm are compact
and at positive ``d_min`` distance (Corollary 6.1); for non-compact
adversaries they may approach each other with distance 0 (Figure 5).  These
helpers measure such distances on depth-``t`` layers, where ``0.0`` means
"indistinguishable through depth ``t``" — by compactness (Theorem 5.13) a
distance that stays positive as ``t`` grows witnesses genuine separation,
while a distance decaying like ``2^{-Θ(t)}`` reproduces the Figure 5
phenomenon.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.distances import d_min
from repro.errors import AnalysisError
from repro.topology.prefixspace import PrefixNode

__all__ = [
    "node_set_distance",
    "node_set_diameter",
    "are_separated",
    "distance_matrix",
]


def node_set_distance(
    left: Sequence[PrefixNode],
    right: Sequence[PrefixNode],
    dist: Callable = d_min,
) -> float:
    """``inf { dist(a, b) }`` over the two node sets (Definition 5.12)."""
    if not left or not right:
        raise AnalysisError("set distance needs nonempty node sets")
    best = float("inf")
    for a in left:
        for b in right:
            value = dist(a.prefix, b.prefix)
            if value < best:
                best = value
                if best == 0.0:
                    return 0.0
    return best


def node_set_diameter(
    members: Sequence[PrefixNode], dist: Callable = d_min
) -> float:
    """``sup { dist(a, b) }`` over the node set (Definition 5.7)."""
    if not members:
        raise AnalysisError("diameter needs a nonempty node set")
    worst = 0.0
    for i, a in enumerate(members):
        for b in members[i + 1 :]:
            value = dist(a.prefix, b.prefix)
            if value > worst:
                worst = value
                if worst >= 1.0:
                    return worst
    return worst


def are_separated(
    left: Sequence[PrefixNode],
    right: Sequence[PrefixNode],
    dist: Callable = d_min,
) -> bool:
    """Whether the sets have positive distance at this depth."""
    return node_set_distance(left, right, dist) > 0.0


def distance_matrix(
    groups: dict, dist: Callable = d_min
) -> dict[tuple, float]:
    """Pairwise set distances between named node groups.

    ``groups`` maps labels to node lists; the result maps unordered label
    pairs to distances.  Used by the Figure 4/5 benchmarks to print the
    decision-set distance tables.
    """
    labels = sorted(groups, key=repr)
    result: dict[tuple, float] = {}
    for i, a in enumerate(labels):
        for b in labels[i + 1 :]:
            result[(a, b)] = node_set_distance(groups[a], groups[b], dist)
    return result
