"""Topological structure of the admissible prefix space.

Implements the paper's Section 4-6 machinery on finite objects: layered
prefix spaces, indistinguishability components in the minimum topology,
ε-approximations (Definition 6.2), set distances/separation, and exact
distance computations on ultimately periodic sequences for the fair/unfair
limit analysis (Definition 5.16).
"""

from repro.topology.approximation import (
    EpsApproximation,
    eps_approximation_of_value,
    eps_ball,
)
from repro.topology.components import Component, ComponentAnalysis, UnionFind
from repro.topology.limits import (
    EqEvolution,
    UltimatelyPeriodic,
    UnfairPairReport,
    check_unfair_pair,
    d_min_periodic,
    d_p_periodic,
    eq_evolution,
    is_excluded_limit,
    views_equal_forever,
)
from repro.topology.prefixspace import PrefixNode, PrefixSpace
from repro.topology.separation import (
    are_separated,
    distance_matrix,
    node_set_diameter,
    node_set_distance,
)

__all__ = [
    "Component",
    "ComponentAnalysis",
    "EpsApproximation",
    "EqEvolution",
    "PrefixNode",
    "PrefixSpace",
    "UltimatelyPeriodic",
    "UnfairPairReport",
    "UnionFind",
    "are_separated",
    "check_unfair_pair",
    "d_min_periodic",
    "d_p_periodic",
    "distance_matrix",
    "eps_approximation_of_value",
    "eps_ball",
    "eq_evolution",
    "is_excluded_limit",
    "node_set_diameter",
    "node_set_distance",
    "views_equal_forever",
]
