"""Pluggable sweep backends: serial, process pool, and file-based manifests.

The sweep engine classifies a family of adversaries by fanning independent
:func:`~repro.consensus.solvability.check_consensus` calls somewhere.  The
*where* is a :class:`SweepBackend`:

* :class:`SerialBackend` — everything inline in this process; the fully
  deterministic reference path the other backends are pinned against.
* :class:`ProcessBackend` — the strided ``multiprocessing`` fan-out (shard
  ``k`` runs jobs ``k, k + w, k + 2w, ...``), as introduced by the sharded
  engine revision.
* :class:`ManifestBackend` — the distributed-runner interface: jobs are
  written to per-shard *manifest* files (JSON lists of serializable
  :class:`~repro.specs.AdversarySpec` descriptions — never pickled live
  objects), each shard is executed by an independent
  ``repro-consensus sweep --manifest shard_k.json`` subprocess, and the
  per-shard JSONL outputs are merged.  Because the manifest is plain JSON
  and the shard runner is a CLI invocation, the same three files (manifest
  in, JSONL out, merge) are exactly what a remote fleet needs — nothing in
  a shard run refers back to this process.

All backends return the same :class:`~repro.records.RunRecord` list,
sorted by job index, and accept ``record_timing=False`` to zero the
run-dependent observability fields (``elapsed_s`` wall-clock and
``views_interned`` interner-reuse counts) — this makes equal-spec runs
byte-identical across backends *and shard counts*, which the tests (and
the fault-tolerance guarantees of :mod:`repro.fleet`) assert.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Iterable, Protocol, Sequence, runtime_checkable

from repro.adversaries.base import MessageAdversary
from repro.consensus.solvability import CheckOptions
from repro.core.views import ViewInterner, _WORKER_CAP_ENV
from repro.errors import AnalysisError
from repro.records import RunRecord, certificate_summary, read_jsonl, write_jsonl
from repro.schemas import SWEEP_MANIFEST
from repro.specs import AdversarySpec

__all__ = [
    "MANIFEST_SCHEMA",
    "SweepJob",
    "SweepBackend",
    "SerialBackend",
    "ProcessBackend",
    "ManifestBackend",
    "iter_job_records",
    "jobs_for",
    "retry_jobs",
    "write_manifest",
    "load_manifest",
    "run_manifest",
]

#: Schema tag of shard manifest files (defined in :mod:`repro.schemas`).
MANIFEST_SCHEMA = SWEEP_MANIFEST


class SweepJob:
    """One unit of sweep work: classify an adversary up to ``max_depth``.

    A job carries a live ``adversary``, a serializable ``spec``
    (:class:`~repro.specs.AdversarySpec`), or both.  Spec-carrying jobs
    build their adversary lazily — on whichever worker runs them — which
    is what lets :class:`ManifestBackend` ship jobs as JSON.
    """

    __slots__ = ("index", "max_depth", "tags", "spec", "_adversary")

    def __init__(
        self,
        index: int,
        adversary: MessageAdversary | None = None,
        max_depth: int = 6,
        tags: dict[str, Any] | None = None,
        spec: AdversarySpec | None = None,
    ) -> None:
        if adversary is None and spec is None:
            raise AnalysisError("a sweep job needs an adversary or a spec")
        self.index = index
        self.max_depth = max_depth
        #: JSON-able metadata carried through to the record (e.g. family
        #: name, sample seed).
        self.tags = {} if tags is None else tags
        self.spec = spec
        self._adversary = adversary

    @property
    def adversary(self) -> MessageAdversary:
        """The live adversary (built from the spec on first access)."""
        if self._adversary is None:
            assert self.spec is not None  # constructor invariant
            self._adversary = self.spec.build()
        return self._adversary

    def resolved_spec(self) -> AdversarySpec:
        """The job's spec, deriving one from the live adversary if needed.

        Raises :class:`~repro.errors.AdversaryError` for adversary types
        with no canonical serialization — those jobs cannot cross a
        manifest boundary.
        """
        if self.spec is None:
            assert self._adversary is not None  # constructor invariant
            self.spec = AdversarySpec.from_adversary(self._adversary)
        return self.spec

    def to_dict(self) -> dict[str, Any]:
        """Manifest form of the job (requires a resolvable spec)."""
        return {
            "index": self.index,
            "max_depth": self.max_depth,
            "tags": self.tags,
            "spec": self.resolved_spec().to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SweepJob":
        return cls(
            data["index"],
            max_depth=data["max_depth"],
            tags=data.get("tags"),
            spec=AdversarySpec.from_dict(data["spec"]),
        )

    def __repr__(self) -> str:
        described = (
            self._adversary.name if self._adversary is not None else repr(self.spec)
        )
        return f"SweepJob(#{self.index}, {described}, max_depth={self.max_depth})"


def jobs_for(
    adversaries: Iterable[MessageAdversary | AdversarySpec],
    max_depth: int = 6,
    tags: dict[str, Any] | None = None,
) -> list[SweepJob]:
    """Wrap a family of adversaries (or specs) as indexed sweep jobs."""
    jobs = []
    for index, item in enumerate(adversaries):
        shared = None if tags is None else dict(tags)
        if isinstance(item, AdversarySpec):
            jobs.append(
                SweepJob(
                    index, max_depth=max_depth, tags=shared, spec=item,
                )
            )
        else:
            jobs.append(SweepJob(index, item, max_depth, shared))
    return jobs


def retry_jobs(
    records: Iterable[RunRecord],
    extra_depth: int | None = None,
    max_depth: int | None = None,
    statuses: tuple[str, ...] = ("undecided",),
) -> tuple[list[SweepJob], list[RunRecord]]:
    """Re-queue the undecided frontier of a sweep at a deeper budget.

    ``undecided@d`` records are exactly the scenarios where more depth (or
    a new prover) could earn a verdict; this turns them back into jobs.
    Pass exactly one of ``extra_depth`` (new budget = record's
    ``max_depth`` + ``extra_depth``, the ``--max-depth +2`` CLI form) or
    ``max_depth`` (absolute new budget).  Only records whose status is in
    ``statuses`` are re-queued, and only when the retry can tell the
    checker something new: records without a serialized spec cannot be
    rebuilt, and records whose new budget would not exceed their original
    one would just reproduce the same undecided verdict — both land in
    ``skipped`` instead of a job.  Returns ``(jobs, skipped)``: the retry
    jobs (original indices and tags preserved, retry provenance added to
    the tags) and the matching records that were not re-queued, so
    callers can report rather than silently drop them.
    """
    if (extra_depth is None) == (max_depth is None):
        raise AnalysisError(
            "retry_jobs needs exactly one of extra_depth or max_depth"
        )
    if extra_depth is not None and extra_depth <= 0:
        raise AnalysisError("retry_jobs extra_depth must deepen the budget")
    jobs: list[SweepJob] = []
    skipped: list[RunRecord] = []
    for record in records:
        if record.status not in statuses:
            continue
        if extra_depth is not None:
            depth = record.max_depth + extra_depth
        else:
            assert max_depth is not None  # exactly-one check above
            depth = max_depth
        if record.spec is None or depth <= record.max_depth:
            skipped.append(record)
            continue
        tags = dict(record.tags)
        tags["retry_of_max_depth"] = record.max_depth
        jobs.append(
            SweepJob(
                record.index,
                max_depth=depth,
                tags=tags,
                spec=AdversarySpec.from_dict(record.spec),
            )
        )
    return jobs, skipped


def _validate_jobs(jobs: Sequence[SweepJob]) -> list[SweepJob]:
    jobs = list(jobs)
    if len({job.index for job in jobs}) != len(jobs):
        raise AnalysisError("sweep jobs must carry distinct indices")
    return jobs


def iter_job_records(
    shard: int,
    jobs: Sequence[SweepJob],
    options: CheckOptions | None = None,
    record_timing: bool = True,
) -> Iterator[RunRecord]:
    """Run one shard's jobs inline, yielding each record as it finishes.

    Interners are shared per process count across the shard's jobs, as
    always.  The streaming shape is what the fleet worker consumes — it
    appends each record to its shard output (and checks its lease)
    between checks, so a killed worker leaves a readable record prefix
    rather than nothing.  With ``record_timing=False`` the two
    run-dependent observability fields (``elapsed_s`` and
    ``views_interned`` — the latter depends on how jobs were sharded
    across interners) are zeroed, so equal-spec runs are byte-identical
    across backends and shard counts.
    """
    from repro.consensus.solvability import check_consensus_with_options

    base = options or CheckOptions()
    interners: dict[int, ViewInterner] = {}
    for job in jobs:
        adversary = job.adversary
        interner = interners.get(adversary.n)
        if interner is None:
            interner = interners[adversary.n] = ViewInterner(
                adversary.n,
                layer_backend=base.layer_backend,
                plan_cache_size=base.plan_cache_size,
                extension_workers=base.extension_workers,
            )
        before = len(interner)
        start = time.perf_counter()
        result = check_consensus_with_options(
            adversary, base.replace(max_depth=job.max_depth), interner=interner
        )
        elapsed = time.perf_counter() - start
        spec = job.spec
        yield RunRecord(
            index=job.index,
            adversary=adversary.name,
            n=adversary.n,
            alphabet=len(adversary.alphabet()),
            max_depth=job.max_depth,
            status=result.status.value,
            certified_depth=result.certified_depth,
            certificate=certificate_summary(result),
            elapsed_s=elapsed if record_timing else 0.0,
            views_interned=(len(interner) - before) if record_timing else 0,
            shard=shard,
            tags=job.tags,
            family=spec.family if spec is not None else None,
            seed=spec.seed if spec is not None else None,
            spec=spec.to_dict() if spec is not None else None,
        )


def _run_jobs(
    shard: int,
    jobs: Sequence[SweepJob],
    options: CheckOptions | None = None,
    record_timing: bool = True,
) -> list[RunRecord]:
    """Run one shard's jobs inline (the eager form of the iterator)."""
    return list(iter_job_records(shard, jobs, options, record_timing))


@runtime_checkable
class SweepBackend(Protocol):
    """Anything that can execute a list of sweep jobs.

    Implementations return one :class:`~repro.records.RunRecord` per job,
    sorted by job index.  ``options`` carries the checker configuration
    shared by all jobs (each job's ``max_depth`` still wins for its own
    depth bound, preserving per-job deepening limits).
    """

    def run(
        self,
        jobs: Sequence[SweepJob],
        options: CheckOptions | None = None,
    ) -> list[RunRecord]:
        ...


class SerialBackend:
    """Run every job inline in this process (the reference backend)."""

    def __init__(self, record_timing: bool = True) -> None:
        self.record_timing = record_timing

    def run(
        self,
        jobs: Sequence[SweepJob],
        options: CheckOptions | None = None,
    ) -> list[RunRecord]:
        jobs = _validate_jobs(jobs)
        records = _run_jobs(0, jobs, options, self.record_timing)
        records.sort(key=lambda record: record.index)
        return records


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork on Linux (cheap, shares the graph intern table).

    Elsewhere use the platform default: fork is unsafe with threads on
    macOS (CPython itself switched that default to spawn), and spawn
    requires only that jobs and records pickle, which they do.
    """
    if sys.platform == "linux":
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _run_shard(
    payload: tuple[int, Sequence[SweepJob], CheckOptions, bool],
) -> list[RunRecord]:
    """Top-level worker entry point (must be picklable for spawn contexts).

    Clamps per-check extension workers to 1 before running: the sweep
    already owns the machine's parallelism at job granularity, so a check
    forking its own layer-extension workers inside a pool worker would
    silently oversubscribe to ``workers x extension_workers`` processes.
    The env guard reaches every interner the shard creates (the cap is
    read at dispatch time) without mutating the options it records.
    """
    shard, jobs, options, record_timing = payload
    os.environ[_WORKER_CAP_ENV] = "1"
    return _run_jobs(shard, jobs, options, record_timing)


class ProcessBackend:
    """Fan shards across a local ``multiprocessing`` pool.

    Shard ``k`` runs jobs ``k, k + workers, k + 2*workers, ...`` — strided,
    deterministic: a sweep's record set is a pure function of
    ``(jobs, workers)``.  Jobs cross the process boundary by pickling; jobs
    that carry only a spec ship the spec and build on the worker.
    """

    def __init__(self, workers: int, record_timing: bool = True) -> None:
        if workers < 1:
            raise AnalysisError("ProcessBackend needs workers >= 1")
        self.workers = workers
        self.record_timing = record_timing

    def run(
        self,
        jobs: Sequence[SweepJob],
        options: CheckOptions | None = None,
    ) -> list[RunRecord]:
        jobs = _validate_jobs(jobs)
        workers = min(self.workers, len(jobs))
        if workers <= 1:
            records = _run_jobs(0, jobs, options, self.record_timing)
        else:
            shards = [
                (k, jobs[k::workers], options, self.record_timing)
                for k in range(workers)
            ]
            with _pool_context().Pool(workers) as pool:
                shard_records = pool.map(_run_shard, shards)
            records = [record for shard in shard_records for record in shard]
        records.sort(key=lambda record: record.index)
        return records


# --------------------------------------------------------------------- #
# Manifest backend: the file-based interface for distributed runners
# --------------------------------------------------------------------- #


def write_manifest(
    jobs: Sequence[SweepJob],
    path: str | Path,
    shard: int = 0,
    options: CheckOptions | None = None,
    record_timing: bool = True,
) -> Path:
    """Write one shard's jobs as a self-contained JSON manifest.

    The manifest embeds everything an independent runner needs: the shard
    id (stamped into the records), the full checker options, and one
    serializable spec per job.  Jobs holding only live adversaries are
    converted via :meth:`SweepJob.resolved_spec`, which fails loudly for
    adversary types without a canonical serialization.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": MANIFEST_SCHEMA,
        "shard": shard,
        "options": (options or CheckOptions()).to_dict(),
        "record_timing": record_timing,
        "jobs": [job.to_dict() for job in _validate_jobs(jobs)],
    }
    path.write_text(json.dumps(payload, sort_keys=True, indent=1) + "\n",
                    encoding="utf-8")
    return path


def load_manifest(path: str | Path) -> dict[str, Any]:
    """Parse and validate a shard manifest; jobs come back as ``SweepJob``."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if data.get("schema") != MANIFEST_SCHEMA:
        raise AnalysisError(
            f"{path}: not a sweep manifest (schema {data.get('schema')!r}, "
            f"expected {MANIFEST_SCHEMA!r})"
        )
    return {
        "shard": data.get("shard", 0),
        "options": CheckOptions.from_dict(data.get("options", {})),
        "record_timing": data.get("record_timing", True),
        "jobs": [SweepJob.from_dict(job) for job in data["jobs"]],
    }


def run_manifest(path: str | Path, out: str | Path | None = None) -> list[RunRecord]:
    """Execute a shard manifest inline and write its JSONL output.

    This is what ``repro-consensus sweep --manifest shard.json`` calls; the
    default output path replaces the manifest's suffix with ``.jsonl``.
    """
    manifest = load_manifest(path)
    records = _run_jobs(
        manifest["shard"],
        manifest["jobs"],
        manifest["options"],
        manifest["record_timing"],
    )
    records.sort(key=lambda record: record.index)
    out = Path(out) if out is not None else Path(path).with_suffix(".jsonl")
    write_jsonl(records, out)
    return records


class ManifestBackend:
    """Run shards as independent ``repro-consensus sweep --manifest`` CLIs.

    ``run`` writes ``shard_k.json`` manifests under ``workdir``, launches
    one subprocess per shard (all concurrently), and merges the per-shard
    ``shard_k.jsonl`` outputs.  No pickled object ever crosses the process
    boundary — shard runners rebuild every adversary from its spec — so
    the same manifest files can be executed by workers on other machines
    and their JSONL merged identically.

    Parameters
    ----------
    workdir:
        Directory for manifests and shard outputs (created; files are left
        in place afterwards as the sweep's audit trail).
    shards:
        Number of shard manifests (capped by the job count).  Striding
        matches :class:`ProcessBackend`, so equal-spec runs of both
        backends produce identical record sets.
    python:
        Interpreter for shard subprocesses (default: this interpreter).
    record_timing:
        Forwarded into the manifests; ``False`` zeroes per-record timings,
        making same-seed runs byte-identical across backends.
    """

    def __init__(
        self,
        workdir: str | Path,
        shards: int = 2,
        python: str | None = None,
        record_timing: bool = True,
    ) -> None:
        if shards < 1:
            raise AnalysisError("ManifestBackend needs shards >= 1")
        self.workdir = Path(workdir)
        self.shards = shards
        self.python = python or sys.executable
        self.record_timing = record_timing

    def _subprocess_env(self) -> dict[str, str]:
        # Shard runners import repro via ``-m repro.cli``; make sure the
        # package that spawned them is importable even from a source tree
        # that was never pip-installed.
        import repro

        package_root = str(Path(repro.__file__).resolve().parents[1])
        env = os.environ.copy()
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not existing else package_root + os.pathsep + existing
        )
        if self.shards > 1:
            # Same oversubscription guard as _run_shard: concurrent shard
            # subprocesses own the parallelism, so per-check extension
            # workers inside them are clamped to the serial path.
            env[_WORKER_CAP_ENV] = "1"
        return env

    def shard_paths(self, shard: int) -> tuple[Path, Path]:
        """The (manifest, jsonl) file pair of one shard."""
        return (
            self.workdir / f"shard_{shard}.json",
            self.workdir / f"shard_{shard}.jsonl",
        )

    def run(
        self,
        jobs: Sequence[SweepJob],
        options: CheckOptions | None = None,
    ) -> list[RunRecord]:
        jobs = _validate_jobs(jobs)
        if not jobs:
            return []
        shards = min(self.shards, len(jobs))
        self.workdir.mkdir(parents=True, exist_ok=True)
        pairs = []
        for k in range(shards):
            manifest_path, out_path = self.shard_paths(k)
            write_manifest(
                jobs[k::shards],
                manifest_path,
                shard=k,
                options=options,
                record_timing=self.record_timing,
            )
            pairs.append((manifest_path, out_path))
        env = self._subprocess_env()
        processes = [
            subprocess.Popen(
                [
                    self.python, "-m", "repro.cli", "sweep",
                    "--manifest", str(manifest_path), "--out", str(out_path),
                ],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                env=env,
                text=True,
            )
            for manifest_path, out_path in pairs
        ]
        failures = []
        for (manifest_path, _), process in zip(pairs, processes):
            _, stderr = process.communicate()
            if process.returncode != 0:
                failures.append(
                    f"shard {manifest_path.name} exited "
                    f"{process.returncode}:\n{stderr.strip()}"
                )
        if failures:
            raise AnalysisError(
                "manifest shard run(s) failed:\n" + "\n".join(failures)
            )
        records = [
            record
            for _, out_path in pairs
            for record in read_jsonl(out_path)
        ]
        records.sort(key=lambda record: record.index)
        return records
