"""The repo-specific rule set of ``repro-lint``.

Each rule machine-checks one invariant that previous revisions stated
only in prose or tests — and that was violated at least once before being
caught late.  Rules R1/R3/R5/R6/R7 are ``repro_only``: they encode facts
about the ``repro`` package layout and are skipped for modules outside
it.  R2/R4/R8 are generic enough to run on any Python source handed to
the linter (including test helpers).

See the README "Static analysis & invariants" section for the catalogue
with rationale; per-rule options live under
``[tool.repro-lint.rules.<ID>]`` in ``pyproject.toml``.
"""

from __future__ import annotations

import ast
import re
from typing import Any, Iterable, Iterator

from repro.tools.lint.engine import Finding, LintContext, Rule, register_rule

__all__ = [
    "NumpyImportRule",
    "SharedMemoryLifecycleRule",
    "SeededRandomnessRule",
    "OptionalTruthinessRule",
    "SchemaLiteralRule",
    "ColumnarHotPathRule",
    "BackendParityRule",
    "BareExceptMutableDefaultRule",
    "AtomicStateWriteRule",
]


def _qualname(node: ast.AST) -> str | None:
    """Dotted name of a Name/Attribute chain (``os.urandom``), else None."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def _call_name(node: ast.Call) -> str | None:
    """The called name: last path component of the function expression."""
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _iter_functions(
    tree: ast.AST,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _handler_catches_import_error(handler: ast.ExceptHandler) -> bool:
    names: list[str] = []
    node = handler.type
    if node is None:
        return True
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.append(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.append(sub.attr)
    return any(
        name in ("ImportError", "ModuleNotFoundError", "Exception", "BaseException")
        for name in names
    )


# --------------------------------------------------------------------- #
# R1 — numpy stays optional
# --------------------------------------------------------------------- #


@register_rule
class NumpyImportRule(Rule):
    """R1: ``numpy`` may only be imported lazily or import-guarded.

    ``dependencies = []`` is a published contract: ``pip install .``
    followed by ``import repro`` must work with numpy absent.  A bare
    module-level ``import numpy`` anywhere in the package silently breaks
    that the moment the module lands on an import path.  Kernel modules
    named in ``kernel_modules`` are allowed an *eager* module-level
    import (none currently need one); everywhere else the import must sit
    inside a function or under ``try: ... except ImportError``.
    """

    id = "R1"
    name = "numpy-optional"
    description = (
        "numpy must be imported lazily (inside a function) or guarded by "
        "try/except ImportError outside designated kernel modules"
    )
    repro_only = True
    defaults: dict[str, Any] = {"kernel_modules": []}

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        options = self.options(ctx)
        designated = ctx.module in options["kernel_modules"]
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                targets = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                targets = [node.module] if node.module is not None else []
            else:
                continue
            if not any(
                name == "numpy" or name.startswith("numpy.") for name in targets
            ):
                continue
            if designated:
                continue
            lazy = ctx.enclosing_function(node) is not None
            guarded = False
            child: ast.AST = node
            for ancestor in ctx.ancestors(node):
                if (
                    isinstance(ancestor, ast.Try)
                    and child in ancestor.body
                    and any(
                        _handler_catches_import_error(handler)
                        for handler in ancestor.handlers
                    )
                ):
                    guarded = True
                    break
                child = ancestor
            if lazy or guarded:
                continue
            yield self.finding(
                ctx,
                node,
                "module-level numpy import breaks the no-deps install "
                "(dependencies = []); import it inside a function, guard it "
                "with try/except ImportError, or designate this module in "
                "[tool.repro-lint.rules.R1] kernel-modules",
            )


# --------------------------------------------------------------------- #
# R2 — shared-memory segment lifecycle
# --------------------------------------------------------------------- #


class _SegmentCleanup:
    """One close()/unlink()/helper call on a created segment name."""

    __slots__ = ("target", "kind", "node", "guard")

    def __init__(self, target: str, kind: str, node: ast.AST, guard: ast.Try | None):
        self.target = target
        self.kind = kind  # "close" | "unlink" | "helper"
        self.node = node
        self.guard = guard


@register_rule
class SharedMemoryLifecycleRule(Rule):
    """R2: every ``SharedMemory(create=True)`` is released on all paths.

    A leaked ``/dev/shm`` segment outlives the process; at sweep scale
    that is an unbounded resource leak.  The rule requires, per created
    segment:

    1. an ``unlink()`` (or a call to a self-guarding cleanup helper from
       ``cleanup_helpers``) somewhere in the creating function;
    2. the creation to be *covered*: either inside the ``try`` body of a
       ``try/finally`` whose ``finally`` releases the segment, or
       immediately before such a ``try`` with no statement in between
       that can raise (any intervening call — e.g. creating a *second*
       segment — can leak the first);
    3. independent release: inside the ``finally``, a raw ``close``/
       ``unlink`` of one segment must not precede another segment's
       release in the same unguarded suite, because the first raising
       (``BufferError``) would skip the second.  Helper calls are exempt
       — helpers are expected to swallow their own errors.
    """

    id = "R2"
    name = "shm-lifecycle"
    description = (
        "SharedMemory(create=True) segments need close()/unlink() reachable "
        "on all exit paths of the creating function"
    )
    defaults: dict[str, Any] = {
        "factory_names": ["SharedMemory"],
        "cleanup_helpers": ["_release_segment"],
    }

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        options = self.options(ctx)
        factories = set(options["factory_names"])
        helpers = set(options["cleanup_helpers"])
        for function in _iter_functions(ctx.tree):
            creations = self._creations(function, factories)
            if not creations:
                continue
            cleanups = self._cleanups(ctx, function, helpers)
            for name, assign in creations:
                yield from self._check_segment(
                    ctx, function, name, assign, cleanups, helpers
                )

    @staticmethod
    def _creations(
        function: ast.AST, factories: set[str]
    ) -> list[tuple[str, ast.Assign]]:
        found = []
        for node in ast.walk(function):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            value = node.value
            if not isinstance(target, ast.Name) or not isinstance(value, ast.Call):
                continue
            if _call_name(value) not in factories:
                continue
            creates = any(
                kw.arg == "create"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in value.keywords
            )
            if creates:
                found.append((target.id, node))
        return found

    @staticmethod
    def _cleanups(
        ctx: LintContext, function: ast.AST, helpers: set[str]
    ) -> list[_SegmentCleanup]:
        cleanups = []
        for node in ast.walk(function):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("close", "unlink")
                and isinstance(node.func.value, ast.Name)
            ):
                cleanups.append(
                    _SegmentCleanup(
                        node.func.value.id, node.func.attr, node, None
                    )
                )
            elif isinstance(node.func, ast.Name) and node.func.id in helpers:
                for arg in node.args:
                    if isinstance(arg, ast.Name):
                        cleanups.append(
                            _SegmentCleanup(arg.id, "helper", node, None)
                        )
        return cleanups

    def _check_segment(
        self,
        ctx: LintContext,
        function: ast.AST,
        name: str,
        assign: ast.Assign,
        cleanups: list[_SegmentCleanup],
        helpers: set[str],
    ) -> Iterator[Finding]:
        releases = [
            c for c in cleanups if c.target == name and c.kind in ("unlink", "helper")
        ]
        if not releases:
            yield self.finding(
                ctx,
                assign,
                f"shared-memory segment {name!r} is created but never "
                f"unlink()ed in this function; release it in a finally block",
            )
            return
        protector = self._protecting_try(ctx, name, assign, helpers)
        if protector is None:
            yield self.finding(
                ctx,
                assign,
                f"shared-memory segment {name!r} has no try/finally covering "
                f"its creation; an exception before cleanup leaks the segment",
            )
            return
        trybody, risky = protector
        for statement in risky:
            yield self.finding(
                ctx,
                statement,
                f"statement between the creation of segment {name!r} and its "
                f"protecting try can raise and leak the segment; move the "
                f"creation into its own try/finally",
            )
        yield from self._check_finally_order(ctx, trybody, name, helpers)

    def _protecting_try(
        self,
        ctx: LintContext,
        name: str,
        assign: ast.Assign,
        helpers: set[str],
    ) -> tuple[ast.Try, list[ast.stmt]] | None:
        """The try/finally releasing ``name``, plus risky gap statements."""
        # Case 1: the creation sits inside the try body of a protecting try.
        for ancestor in ctx.ancestors(assign):
            if isinstance(ancestor, ast.Try) and self._releases(
                ancestor.finalbody, name, helpers
            ):
                statement = ctx.enclosing_statement(assign)
                if statement in ancestor.body or any(
                    a in ancestor.body for a in ctx.ancestors(assign)
                ):
                    return ancestor, []
        # Case 2: the creation immediately precedes a protecting sibling try.
        suite = ctx.enclosing_suite(assign)
        if suite is None:
            return None
        statement = ctx.enclosing_statement(assign)
        if statement not in suite:
            return None
        index = suite.index(statement)
        for follower_index in range(index + 1, len(suite)):
            follower = suite[follower_index]
            if isinstance(follower, ast.Try) and self._releases(
                follower.finalbody, name, helpers
            ):
                risky = [
                    stmt
                    for stmt in suite[index + 1 : follower_index]
                    if any(isinstance(sub, ast.Call) for sub in ast.walk(stmt))
                ]
                return follower, risky
        return None

    @staticmethod
    def _releases(finalbody: list[ast.stmt], name: str, helpers: set[str]) -> bool:
        for stmt in finalbody:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "unlink"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == name
                ):
                    return True
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in helpers
                    and any(
                        isinstance(arg, ast.Name) and arg.id == name
                        for arg in node.args
                    )
                ):
                    return True
        return False

    def _check_finally_order(
        self, ctx: LintContext, protector: ast.Try, name: str, helpers: set[str]
    ) -> Iterator[Finding]:
        """Flag raw cleanup of another segment sequenced before ours."""
        ordered: list[_SegmentCleanup] = []
        for stmt in protector.finalbody:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                cleanup: _SegmentCleanup | None = None
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("close", "unlink")
                    and isinstance(node.func.value, ast.Name)
                ):
                    cleanup = _SegmentCleanup(
                        node.func.value.id, node.func.attr, node, None
                    )
                elif isinstance(node.func, ast.Name) and node.func.id in helpers:
                    for arg in node.args:
                        if isinstance(arg, ast.Name):
                            ordered.append(
                                _SegmentCleanup(arg.id, "helper", node, None)
                            )
                    continue
                if cleanup is not None:
                    cleanup.guard = self._guard_within(ctx, node, protector)
                    ordered.append(cleanup)
        ordered.sort(
            key=lambda c: (getattr(c.node, "lineno", 0), getattr(c.node, "col_offset", 0))
        )
        for position, cleanup in enumerate(ordered):
            if cleanup.target != name or cleanup.kind != "unlink":
                continue
            for earlier in ordered[:position]:
                if earlier.target == name or earlier.kind == "helper":
                    continue
                if earlier.guard is cleanup.guard:
                    yield self.finding(
                        ctx,
                        cleanup.node,
                        f"cleanup of segment {name!r} is skipped if the "
                        f"preceding {earlier.kind}() of {earlier.target!r} "
                        f"raises; release each segment under its own "
                        f"try (or via a self-guarding helper)",
                    )
                    break

    @staticmethod
    def _guard_within(
        ctx: LintContext, node: ast.AST, boundary: ast.Try
    ) -> ast.Try | None:
        """The innermost handler-carrying Try between node and boundary."""
        for ancestor in ctx.ancestors(node):
            if ancestor is boundary:
                return None
            if isinstance(ancestor, ast.Try) and ancestor.handlers:
                return ancestor
        return None


# --------------------------------------------------------------------- #
# R3 — deterministic randomness
# --------------------------------------------------------------------- #


@register_rule
class SeededRandomnessRule(Rule):
    """R3: kernels draw randomness only through explicit ``random.Random``.

    Checker results must be pure functions of (spec, seed) — that is what
    makes sweep records reproducible across backends and machines.  The
    module-level ``random.*`` functions share hidden global state,
    ``os.urandom``/``secrets``/``uuid4`` are entropy by definition, and
    wall-clock reads (``time.time``) smuggle nondeterminism in through
    the back door.  Timing *measurement* (``perf_counter`` and friends)
    stays allowed.

    Modules listed in ``clock_modules`` are exempt from the wall-clock
    ban only (randomness stays banned): infrastructure like lease
    deadlines genuinely needs wall time, and funneling every such read
    through one designated module keeps the exemption auditable.
    """

    id = "R3"
    name = "seeded-randomness"
    description = (
        "no unseeded random.* / os.urandom / secrets / wall-clock entropy; "
        "thread an explicit random.Random(seed) instead"
    )
    repro_only = True
    defaults: dict[str, Any] = {
        "allowed_random_attrs": ["Random"],
        "banned_time_attrs": ["time", "time_ns"],
        "clock_modules": [],
    }

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        options = self.options(ctx)
        allowed_random = set(options["allowed_random_attrs"])
        banned_time = set(options["banned_time_attrs"])
        if ctx.module in set(options["clock_modules"]):
            # The designated clock funnel: wall-clock reads are its whole
            # purpose, so drop the time bans but keep every entropy ban.
            banned_time = set()
        advice = "; thread an explicit random.Random(seed) instead"
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    bad = [
                        alias.name
                        for alias in node.names
                        if alias.name not in allowed_random
                    ]
                    if bad:
                        yield self.finding(
                            ctx,
                            node,
                            f"importing unseeded randomness "
                            f"({', '.join(bad)}) from random{advice}",
                        )
                elif node.module == "os" and any(
                    alias.name == "urandom" for alias in node.names
                ):
                    yield self.finding(
                        ctx, node, f"os.urandom is raw entropy{advice}"
                    )
                elif node.module == "time" and any(
                    alias.name in banned_time for alias in node.names
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"wall-clock time in kernel code is hidden "
                        f"nondeterminism{advice}",
                    )
                elif node.module == "secrets":
                    yield self.finding(
                        ctx, node, f"secrets is entropy by definition{advice}"
                    )
                continue
            if not isinstance(node, ast.Call):
                continue
            qualname = _qualname(node.func)
            if qualname is None:
                continue
            if qualname.startswith("random."):
                attr = qualname.split(".", 1)[1]
                if attr not in allowed_random:
                    yield self.finding(
                        ctx,
                        node,
                        f"{qualname} uses the shared global RNG{advice}",
                    )
            elif qualname == "os.urandom":
                yield self.finding(ctx, node, f"os.urandom is raw entropy{advice}")
            elif qualname.startswith("secrets."):
                yield self.finding(
                    ctx, node, f"{qualname} is entropy by definition{advice}"
                )
            elif qualname in ("uuid.uuid1", "uuid.uuid4"):
                yield self.finding(
                    ctx, node, f"{qualname} is unseeded entropy{advice}"
                )
            elif qualname.startswith("time."):
                attr = qualname.split(".", 1)[1]
                if attr in banned_time:
                    yield self.finding(
                        ctx,
                        node,
                        f"{qualname} reads the wall clock — hidden "
                        f"nondeterminism in kernel code{advice}",
                    )


# --------------------------------------------------------------------- #
# R4 — no truthiness on possibly-empty parameters
# --------------------------------------------------------------------- #

_CONTAINER_NAMES = {
    "dict",
    "Dict",
    "defaultdict",
    "OrderedDict",
    "Counter",
    "list",
    "List",
    "set",
    "Set",
    "frozenset",
    "FrozenSet",
    "tuple",
    "Tuple",
    "Mapping",
    "MutableMapping",
    "MutableSequence",
    "Sequence",
    "Iterable",
    "Collection",
    "AbstractSet",
}


def _annotation_expr(annotation: ast.expr) -> ast.expr | None:
    """Resolve string annotations to expression nodes (best effort)."""
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            parsed = ast.parse(annotation.value, mode="eval")
        except SyntaxError:
            return None
        return parsed.body
    return annotation


def _union_members(annotation: ast.expr) -> list[ast.expr]:
    """Flatten ``A | B | None`` / ``Optional[A]`` / ``Union[A, B]``."""
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        return _union_members(annotation.left) + _union_members(annotation.right)
    if isinstance(annotation, ast.Subscript):
        base = _qualname(annotation.value)
        tail = base.rsplit(".", 1)[-1] if base is not None else None
        if tail == "Optional":
            return _union_members(annotation.slice) + [ast.Constant(value=None)]
        if tail == "Union":
            inner = annotation.slice
            if isinstance(inner, ast.Tuple):
                members: list[ast.expr] = []
                for element in inner.elts:
                    members.extend(_union_members(element))
                return members
            return _union_members(inner)
    return [annotation]


def _base_type_name(annotation: ast.expr) -> str | None:
    """The unparameterized head name: ``dict[str, int]`` -> ``dict``."""
    if isinstance(annotation, ast.Subscript):
        annotation = annotation.value
    qualname = _qualname(annotation)
    if qualname is None:
        return None
    return qualname.rsplit(".", 1)[-1]


@register_rule
class OptionalTruthinessRule(Rule):
    """R4: no truthiness on parameters typed ``<container> | None``.

    ``interner or ViewInterner(...)`` silently replaced a shared-but-
    empty interner in an earlier revision, because an empty container is
    falsy exactly like ``None``.  For parameters whose annotation unions
    ``None`` with a container-ish type (anything with an "empty" state:
    builtins, ``typing`` ABCs, and the ``extra_container_types`` from
    config, e.g. ``ViewInterner``), ``x or default`` / ``if x:`` /
    ``if not x:`` must become ``is None`` checks.  Uses after the
    parameter's first rebinding are not flagged — by then the ``None``
    case has typically been normalized away.
    """

    id = "R4"
    name = "optional-truthiness"
    description = (
        "use 'is None', not truthiness, on parameters typed as "
        "Optional containers/interners (the historical 'interner or ...' bug)"
    )
    defaults: dict[str, Any] = {"extra_container_types": ["ViewInterner", "LayerTable"]}

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        options = self.options(ctx)
        containers = _CONTAINER_NAMES | set(options["extra_container_types"])
        for function in _iter_functions(ctx.tree):
            flagged = self._optional_container_params(function, containers)
            if not flagged:
                continue
            rebind_line = self._first_rebind_lines(function, flagged)
            for name, use in self._truthiness_uses(function, flagged):
                if use.lineno > rebind_line.get(name, float("inf")):
                    continue
                yield self.finding(
                    ctx,
                    use,
                    f"truthiness of parameter {name!r} (typed as an optional "
                    f"container) conflates None with empty — test "
                    f"'{name} is None' instead",
                )

    @staticmethod
    def _optional_container_params(
        function: ast.FunctionDef | ast.AsyncFunctionDef, containers: set[str]
    ) -> set[str]:
        flagged = set()
        arguments = function.args
        for arg in (
            *arguments.posonlyargs,
            *arguments.args,
            *arguments.kwonlyargs,
        ):
            if arg.annotation is None:
                continue
            annotation = _annotation_expr(arg.annotation)
            if annotation is None:
                continue
            members = _union_members(annotation)
            has_none = any(
                isinstance(m, ast.Constant) and m.value is None for m in members
            )
            has_container = any(
                _base_type_name(m) in containers
                for m in members
                if not isinstance(m, ast.Constant)
            )
            if has_none and has_container:
                flagged.add(arg.arg)
        return flagged

    @staticmethod
    def _first_rebind_lines(
        function: ast.FunctionDef | ast.AsyncFunctionDef, names: set[str]
    ) -> dict[str, int]:
        lines: dict[str, int] = {}
        for node in ast.walk(function):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign, ast.NamedExpr)):
                targets = [node.target]
            for target in targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name) and sub.id in names:
                        line = lines.get(sub.id)
                        if line is None or node.lineno < line:
                            lines[sub.id] = node.lineno
        return lines

    @staticmethod
    def _truthiness_uses(
        function: ast.FunctionDef | ast.AsyncFunctionDef, names: set[str]
    ) -> Iterator[tuple[str, ast.Name]]:
        def bare(expr: ast.expr | None) -> ast.Name | None:
            if isinstance(expr, ast.Name) and expr.id in names:
                return expr
            return None

        for node in ast.walk(function):
            candidates: list[ast.expr | None] = []
            if isinstance(node, (ast.If, ast.While, ast.IfExp)):
                candidates.append(node.test)
            elif isinstance(node, ast.BoolOp):
                # `x and ...` narrows to non-empty on purpose sometimes,
                # but for Optional params both `or` and `and` hide the
                # None/empty distinction, so both count.
                candidates.extend(node.values[:-1] if isinstance(node.op, ast.Or)
                                  else node.values)
            elif isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
                candidates.append(node.operand)
            elif isinstance(node, ast.Assert):
                candidates.append(node.test)
            elif isinstance(node, ast.comprehension):
                candidates.extend(node.ifs)
            for candidate in candidates:
                use = bare(candidate)
                if use is not None:
                    yield use.id, use


# --------------------------------------------------------------------- #
# R5 — schema strings live in repro/schemas.py only
# --------------------------------------------------------------------- #

_SCHEMA_LITERAL_RE = re.compile(r"^repro\.[a-z0-9-]+/[0-9]+$")


@register_rule
class SchemaLiteralRule(Rule):
    """R5: ``repro.*/N`` schema tags may only be spelled in the registry.

    Versioned schema tags are dispatch keys for every serialized artifact
    the library reads or writes.  Spelling one inline means a version
    bump must find every copy; the registry module makes the bump a
    one-line change.  Docstrings are exempt (prose, not dispatch).
    """

    id = "R5"
    name = "schema-registry"
    description = (
        "literal 'repro.<doc>/<N>' schema strings may only appear in the "
        "schema registry module (repro/schemas.py)"
    )
    repro_only = True
    defaults: dict[str, Any] = {"registry_modules": ["repro.schemas"]}

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        options = self.options(ctx)
        if ctx.module in options["registry_modules"]:
            return
        docstrings = self._docstring_nodes(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Constant) or not isinstance(node.value, str):
                continue
            if node in docstrings:
                continue
            if _SCHEMA_LITERAL_RE.match(node.value):
                yield self.finding(
                    ctx,
                    node,
                    f"schema literal {node.value!r} outside the registry; "
                    f"import the constant from repro.schemas instead",
                )

    @staticmethod
    def _docstring_nodes(tree: ast.Module) -> set[ast.Constant]:
        nodes: set[ast.Constant] = set()
        for scope in ast.walk(tree):
            if not isinstance(
                scope,
                (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef),
            ):
                continue
            body = scope.body
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                nodes.add(body[0].value)
        return nodes


# --------------------------------------------------------------------- #
# R6 — columnar hot paths stay columnar
# --------------------------------------------------------------------- #


@register_rule
class ColumnarHotPathRule(Rule):
    """R6: no per-element object materialization in columnar kernels.

    The columnar pipeline's performance contract is that a layer is
    arrays end to end; one ``space.node(...)`` or ``PrefixNode(...)``
    inside a hot loop quietly reintroduces the per-prefix object churn
    the rewrite removed.  Materialization stays legal in error branches —
    a failing check may pay anything to format a good message — which the
    rule recognizes as: the call sits under a ``raise``, inside an
    ``except`` handler, or in a suite that raises.
    """

    id = "R6"
    name = "columnar-hot-path"
    description = (
        "no PrefixNode/PTGPrefix/.node() materialization inside designated "
        "columnar hot-path functions, except on error-raise branches"
    )
    repro_only = True
    defaults: dict[str, Any] = {
        # "module::function" designations; "module::*" covers every
        # function of the module.
        "hot_functions": [
            "repro.core.views::extend_layer_table",
            "repro.core.views::_extend_layer_python",
            "repro.core.views::_extend_layer_numpy",
            "repro.core.views::_extend_layer_numpy_mp",
            "repro.core.views::_finish_layer_numpy",
            "repro.core.views::_intern_rows_numpy",
            "repro.core.parallel::map_layer_shards",
            "repro.core.parallel::_map_shard",
            "repro.topology.components::_analyze_python",
            "repro.topology.components::_analyze_numpy",
            "repro.topology.components::_sv_labels",
            "repro.consensus.decision::_validate_python",
            "repro.consensus.decision::_validate_numpy",
            "repro.consensus.decision::_decision_maps_python",
            "repro.consensus.decision::_decision_maps_numpy",
            "repro.consensus.decision::_assign_values_numpy",
        ],
        "banned_constructors": ["PrefixNode", "PTGPrefix"],
        "banned_methods": ["node"],
    }

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        options = self.options(ctx)
        hot: set[str] = set()
        wildcard = False
        for designation in options["hot_functions"]:
            module, _, function = designation.partition("::")
            if module != ctx.module:
                continue
            if function == "*":
                wildcard = True
            elif function:
                hot.add(function)
        if not hot and not wildcard:
            return
        constructors = set(options["banned_constructors"])
        methods = set(options["banned_methods"])
        for function in _iter_functions(ctx.tree):
            if not wildcard and function.name not in hot:
                continue
            for node in ast.walk(function):
                if not isinstance(node, ast.Call):
                    continue
                banned = (
                    isinstance(node.func, ast.Name) and node.func.id in constructors
                ) or (
                    isinstance(node.func, ast.Attribute) and node.func.attr in methods
                )
                if not banned or self._in_error_branch(ctx, node):
                    continue
                what = (
                    node.func.id
                    if isinstance(node.func, ast.Name)
                    else f".{node.func.attr}()"
                )
                yield self.finding(
                    ctx,
                    node,
                    f"{what} materializes per-element objects inside columnar "
                    f"hot path {function.name!r}; keep the layer in arrays "
                    f"(object materialization is allowed only on error-raise "
                    f"branches)",
                )

    @staticmethod
    def _in_error_branch(ctx: LintContext, node: ast.Call) -> bool:
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, (ast.Raise, ast.ExceptHandler)):
                return True
        suite = ctx.enclosing_suite(node)
        if suite is not None and any(isinstance(s, ast.Raise) for s in suite):
            return True
        return False


# --------------------------------------------------------------------- #
# R7 — numpy kernels keep python-backend parity
# --------------------------------------------------------------------- #

_NUMPY_KERNEL_RE = re.compile(r"^(?P<stem>_?[A-Za-z0-9_]*?)_numpy(?:_mp)?$")


@register_rule
class BackendParityRule(Rule):
    """R7: every ``_*_numpy`` kernel has a python-backend counterpart.

    The ``layer_backend`` switch promises that numpy is an accelerator,
    never a semantic fork: whatever the vectorized kernel computes, a
    pure-python twin computes identically (the hypothesis suites pin the
    equivalence).  A ``_foo_numpy`` without ``_foo_python`` (or plain
    ``_foo``) in the same module is a parity hole the without-numpy leg
    cannot test.  Genuinely numpy-only internals (sub-steps of the
    vectorized path with no scalar analogue) must be exempted explicitly
    in config, where the reviewer can see the list grow.
    """

    id = "R7"
    name = "backend-parity"
    description = (
        "_*_numpy kernel functions need a registered python-backend "
        "counterpart (_*_python or the bare stem) in the same module"
    )
    repro_only = True
    defaults: dict[str, Any] = {
        "exempt": [
            # numpy-only sub-steps of the vectorized extension kernel: the
            # python backend interns rows through a different (scalar)
            # code path that the layer-kernel equivalence suite pins.
            "repro.core.views::_intern_rows_numpy",
            "repro.core.views::_finish_layer_numpy",
        ]
    }

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        options = self.options(ctx)
        exempt = {
            designation.partition("::")[2]
            for designation in options["exempt"]
            if designation.partition("::")[0] in (ctx.module, "*")
        }
        names = {
            function.name for function in _iter_functions(ctx.tree)
        }
        for function in _iter_functions(ctx.tree):
            match = _NUMPY_KERNEL_RE.match(function.name)
            if match is None or function.name in exempt:
                continue
            stem = match.group("stem")
            if not stem or stem in ("_", "_use"):
                continue
            counterparts = (f"{stem}_python", f"{stem}_py", stem)
            if any(candidate in names for candidate in counterparts):
                continue
            yield self.finding(
                ctx,
                function,
                f"numpy kernel {function.name!r} has no python-backend "
                f"counterpart ({stem}_python); add one or exempt it in "
                f"[tool.repro-lint.rules.R7]",
            )


# --------------------------------------------------------------------- #
# R8 — bare except / mutable default arguments
# --------------------------------------------------------------------- #

_MUTABLE_FACTORIES = {"list", "dict", "set", "bytearray", "defaultdict", "Counter"}


@register_rule
class BareExceptMutableDefaultRule(Rule):
    """R8: no bare ``except:`` and no mutable default arguments.

    A bare ``except:`` swallows ``KeyboardInterrupt``/``SystemExit`` and
    turns worker shutdown into a hang; a mutable default is shared
    process-wide state masquerading as a per-call fresh value — in a
    library built around deterministic, side-effect-free checks, both
    are always bugs.
    """

    id = "R8"
    name = "bare-except-mutable-default"
    description = "no bare except clauses; no mutable default argument values"

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare 'except:' catches KeyboardInterrupt/SystemExit; "
                    "catch Exception (or something narrower) instead",
                )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defaults = [
                    *node.args.defaults,
                    *(d for d in node.args.kw_defaults if d is not None),
                ]
                for default in defaults:
                    if self._mutable(default):
                        yield self.finding(
                            ctx,
                            default,
                            f"mutable default argument in {node.name!r} is "
                            f"shared across calls; default to None and "
                            f"construct inside the function",
                        )

    @staticmethod
    def _mutable(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = _call_name(node)
            return name in _MUTABLE_FACTORIES and not node.args and not node.keywords
        return False


# --------------------------------------------------------------------- #
# R9 — crash-safe state writes in the fleet runner
# --------------------------------------------------------------------- #


@register_rule
class AtomicStateWriteRule(Rule):
    """R9: persistent state is written only through the atomic funnel.

    The correctness story of both state-writing subsystems — the fleet
    runner and the content-addressed result store — is that any process
    can be SIGKILLed between any two instructions and the on-disk state
    stays readable.  That holds because every write goes through the
    crash-safe shapes in :mod:`repro.io.atomic` (write-temp-then-rename,
    exclusive hard-link create, fsynced append; re-exported by
    ``repro.fleet.files`` for compatibility).  A bare
    ``open(path, "w")`` anywhere else in those packages reintroduces
    torn files — silently, and only under the exact crash timing the
    chaos harness exists to produce.  So: modules under
    ``state_modules`` may not open files for writing at all, except the
    designated ``io_modules`` that implement the funnel.
    """

    id = "R9"
    name = "atomic-state-write"
    description = (
        "state modules (repro.fleet, repro.store) must write via the "
        "repro.io.atomic funnel (write-temp-then-rename / exclusive "
        "create / fsynced append), never a bare open(path, 'w')"
    )
    repro_only = True
    defaults: dict[str, Any] = {
        "state_modules": ["repro.fleet", "repro.store"],
        "io_modules": ["repro.fleet.files", "repro.io.atomic"],
    }

    #: Mode characters that make an ``open`` call a write.
    _WRITE_MODES = frozenset("wax+")

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        options = self.options(ctx)
        if ctx.module in set(options["io_modules"]):
            return
        if not any(
            ctx.module == prefix or ctx.module.startswith(prefix + ".")
            for prefix in options["state_modules"]
        ):
            return
        advice = (
            "; route the write through repro.io.atomic so a kill at any "
            "instruction leaves readable state"
        )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualname = _qualname(node.func)
            name = _call_name(node)
            if name in ("write_text", "write_bytes"):
                yield self.finding(
                    ctx,
                    node,
                    f".{name}() truncates in place — a kill mid-call "
                    f"leaves a torn file{advice}",
                )
                continue
            if name != "open":
                continue
            # Builtin open(path, mode) has the mode second; the
            # pathlib/file-object .open(mode) method has it first.
            position = 1 if qualname == "open" else 0
            mode = next(
                (kw.value for kw in node.keywords if kw.arg == "mode"),
                node.args[position] if len(node.args) > position else None,
            )
            if mode is None:
                continue  # default "r"
            if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
                if not self._WRITE_MODES.intersection(mode.value):
                    continue
                yield self.finding(
                    ctx,
                    node,
                    f"open(..., {mode.value!r}) writes state directly — "
                    f"not crash-safe{advice}",
                )
            else:
                yield self.finding(
                    ctx,
                    node,
                    f"open() with a dynamic mode cannot be verified "
                    f"read-only{advice}",
                )
