"""``repro-lint``: AST-based invariant checking for this repository.

The linter machine-checks invariants that the library's correctness and
reproducibility story depends on but ordinary linters cannot see —
numpy optionality, shared-memory lifecycle, seeded randomness, the
Optional-container truthiness bug class, the schema-tag registry,
columnar hot-path purity, and numpy/python backend parity.

Entry points: the ``repro-lint`` console script,
``python -m repro.tools.lint``, or programmatically::

    from repro.tools.lint import lint_source, run_lint

Importing this package imports :mod:`repro.tools.lint.rules` for its
side effect of populating the rule registry.
"""

from repro.tools.lint.config import LintConfig, find_pyproject
from repro.tools.lint.engine import (
    PARSE_ERROR,
    RULES,
    Finding,
    LintContext,
    Rule,
    findings_document,
    iter_rules,
    lint_file,
    lint_source,
    register_rule,
    render_findings,
    run_lint,
)
from repro.tools.lint.pragmas import Pragmas, parse_pragmas

from repro.tools.lint import rules as _rules  # noqa: F401  (registry side effect)

__all__ = [
    "Finding",
    "LintConfig",
    "LintContext",
    "PARSE_ERROR",
    "Pragmas",
    "RULES",
    "Rule",
    "find_pyproject",
    "findings_document",
    "iter_rules",
    "lint_file",
    "lint_source",
    "parse_pragmas",
    "register_rule",
    "render_findings",
    "run_lint",
]
