"""The ``repro-lint`` command-line interface.

Usage::

    repro-lint [paths...]            # defaults to src/
    repro-lint --json src/repro      # machine-readable repro.lint-report/1
    repro-lint --list-rules          # the rule catalogue
    python -m repro.tools.lint ...   # same entry point

Exit status: 0 when no error-severity findings, 1 when there are, 2 on
usage errors.  Configuration is read from the nearest ``pyproject.toml``
(``[tool.repro-lint]``) unless ``--pyproject`` points elsewhere or
``--no-config`` skips loading entirely.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.tools.lint.config import LintConfig, find_pyproject
from repro.tools.lint.engine import (
    findings_document,
    iter_rules,
    render_findings,
    run_lint,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant checker for the repro codebase: optional-"
            "numpy hygiene, shared-memory lifecycle, seeded randomness, "
            "Optional-container truthiness, schema-literal registry, "
            "columnar hot-path purity, backend parity, and general "
            "except/default hygiene."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable repro.lint-report/1 document",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--disable",
        metavar="RULES",
        help="comma-separated rule ids to skip (adds to config)",
    )
    parser.add_argument(
        "--pyproject",
        metavar="PATH",
        help="pyproject.toml to read [tool.repro-lint] from "
        "(default: nearest one above the first path)",
    )
    parser.add_argument(
        "--no-config",
        action="store_true",
        help="ignore pyproject.toml and run with built-in defaults",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _load_config(args: argparse.Namespace, parser: argparse.ArgumentParser) -> LintConfig:
    if args.no_config:
        config = LintConfig()
    else:
        pyproject = (
            Path(args.pyproject)
            if args.pyproject is not None
            else find_pyproject(args.paths[0] if args.paths else ".")
        )
        if args.pyproject is not None and not pyproject.is_file():
            parser.error(f"--pyproject: no such file: {pyproject}")
        if pyproject is None:
            config = LintConfig()
        else:
            try:
                config = LintConfig.from_pyproject(pyproject)
            except RuntimeError as exc:  # tomllib missing (Python 3.10)
                parser.error(str(exc))
            except ValueError as exc:
                parser.error(f"invalid [tool.repro-lint] config: {exc}")
    if args.disable:
        extra = {rule.strip() for rule in args.disable.split(",") if rule.strip()}
        config = LintConfig(
            disable=tuple(config.disabled | extra),
            exclude=config.exclude,
            severity=config.severity,
            rules={rule_id: config.rule_options(rule_id) for rule_id in _rule_ids()},
        )
    return config


def _rule_ids() -> list[str]:
    return [rule.id for rule in iter_rules()]


def _list_rules() -> str:
    lines = []
    for rule in iter_rules():
        scope = "repro-only" if rule.repro_only else "all files"
        lines.append(f"{rule.id}  {rule.name}  [{scope}]")
        lines.append(f"    {rule.description}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    select = None
    if args.select:
        select = {rule.strip() for rule in args.select.split(",") if rule.strip()}
        unknown = select - set(_rule_ids())
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        parser.error(f"no such path(s): {', '.join(missing)}")
    config = _load_config(args, parser)
    findings, files_checked = run_lint(args.paths, config=config, select=select)
    if args.json:
        document = findings_document(findings, files_checked)
        print(json.dumps(document, indent=2, sort_keys=False))
    else:
        print(render_findings(findings, files_checked))
    errors = sum(1 for finding in findings if finding.severity == "error")
    return 1 if errors else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
