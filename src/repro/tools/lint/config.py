"""Linter configuration: ``[tool.repro-lint]`` in ``pyproject.toml``.

The config surface is deliberately small:

``disable``
    Rule ids switched off entirely.
``exclude``
    ``fnmatch`` glob patterns over posix-style file paths to skip.
``[tool.repro-lint.severity]``
    Per-rule severity override (``"error"`` or ``"warning"``); only
    error-severity findings fail the run.
``[tool.repro-lint.rules.<ID>]``
    Per-rule options (allowlists, designated-module lists).  Keys may be
    written with hyphens; they are normalized to underscores before the
    rule sees them.

Rules carry their own defaults, so an empty config is a working config.
``tomllib`` ships with Python 3.11+; on 3.10 the pyproject loader is
unavailable and callers must pass a :class:`LintConfig` explicitly (the
CLI reports this as a usage error rather than crashing).
"""

from __future__ import annotations

from fnmatch import fnmatch
from pathlib import Path
from typing import Any, Mapping

try:
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - Python 3.10
    tomllib = None  # type: ignore[assignment]

__all__ = ["LintConfig", "find_pyproject"]

_SEVERITIES = ("error", "warning")


def _normalize_options(options: Mapping[str, Any]) -> dict[str, Any]:
    return {key.replace("-", "_"): value for key, value in options.items()}


class LintConfig:
    """Resolved linter configuration (see module docstring for the keys)."""

    def __init__(
        self,
        disable: tuple[str, ...] = (),
        exclude: tuple[str, ...] = (),
        severity: Mapping[str, str] | None = None,
        rules: Mapping[str, Mapping[str, Any]] | None = None,
    ) -> None:
        self.disabled = frozenset(disable)
        self.exclude = tuple(exclude)
        self.severity = dict(severity) if severity is not None else {}
        for rule_id, level in self.severity.items():
            if level not in _SEVERITIES:
                raise ValueError(
                    f"severity for {rule_id} must be one of {_SEVERITIES}, "
                    f"got {level!r}"
                )
        self._rules = (
            {rule_id: _normalize_options(options) for rule_id, options in rules.items()}
            if rules is not None
            else {}
        )

    def rule_options(self, rule_id: str) -> dict[str, Any]:
        """The configured option overrides for one rule (may be empty)."""
        return self._rules.get(rule_id, {})

    def excluded(self, path: Path) -> bool:
        """Whether a file is excluded from linting by path pattern."""
        posix = path.as_posix()
        return any(
            fnmatch(posix, pattern) or fnmatch(path.name, pattern)
            for pattern in self.exclude
        )

    @classmethod
    def from_pyproject(cls, path: str | Path) -> "LintConfig":
        """Load the ``[tool.repro-lint]`` table of a ``pyproject.toml``.

        A pyproject without the table yields the all-defaults config.
        """
        if tomllib is None:
            raise RuntimeError(
                "reading pyproject.toml needs tomllib (Python 3.11+); "
                "construct a LintConfig directly on older interpreters"
            )
        with Path(path).open("rb") as handle:
            document = tomllib.load(handle)
        table = document.get("tool", {}).get("repro-lint", {})
        return cls(
            disable=tuple(table.get("disable", ())),
            exclude=tuple(table.get("exclude", ())),
            severity=table.get("severity", {}),
            rules=table.get("rules", {}),
        )

    def __repr__(self) -> str:
        return (
            f"LintConfig(disabled={sorted(self.disabled)}, "
            f"rules={sorted(self._rules)})"
        )


def find_pyproject(start: str | Path) -> Path | None:
    """The nearest ``pyproject.toml`` at or above ``start``."""
    current = Path(start).resolve()
    if current.is_file():
        current = current.parent
    for directory in (current, *current.parents):
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None
