"""The ``repro-lint`` engine: findings, rule registry, file runner.

A :class:`Rule` inspects one parsed module (:class:`LintContext`) and
yields :class:`Finding` objects.  The engine owns everything around the
rules: discovering files, parsing, pragma suppression
(:mod:`repro.tools.lint.pragmas`), per-rule configuration and severity
(:mod:`repro.tools.lint.config`), and rendering human or machine-readable
(:data:`repro.schemas.LINT_REPORT`) output.

Rules register themselves with :func:`register_rule`; the registry is the
single source of the rule catalogue for the CLI, the docs, and the tests.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.schemas import LINT_REPORT
from repro.tools.lint.config import LintConfig
from repro.tools.lint.pragmas import Pragmas, parse_pragmas

__all__ = [
    "Finding",
    "LintContext",
    "Rule",
    "RULES",
    "register_rule",
    "iter_rules",
    "lint_source",
    "lint_file",
    "run_lint",
    "module_name_for",
    "findings_document",
    "render_findings",
]

#: Pseudo-rule id used for files the parser rejects.
PARSE_ERROR = "E0"


class Finding:
    """One rule violation at one source location."""

    __slots__ = ("rule", "name", "severity", "path", "line", "col", "message")

    def __init__(
        self,
        rule: str,
        name: str,
        severity: str,
        path: str,
        line: int,
        col: int,
        message: str,
    ) -> None:
        self.rule = rule
        self.name = name
        self.severity = severity
        self.path = path
        self.line = line
        self.col = col
        self.message = message

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "name": self.name,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: {self.rule} "
            f"[{self.severity}] {self.message}"
        )

    def __repr__(self) -> str:
        return f"Finding({self.rule} @ {self.path}:{self.line}: {self.message!r})"


class LintContext:
    """One module as the rules see it: AST plus navigation helpers."""

    def __init__(
        self,
        path: str,
        module: str,
        source: str,
        tree: ast.Module,
        config: LintConfig,
    ) -> None:
        self.path = path
        self.module = module
        self.source = source
        self.tree = tree
        self.config = config
        self._parents: dict[ast.AST, ast.AST] | None = None

    @property
    def in_repro_package(self) -> bool:
        """Whether the module lives inside the ``repro`` package."""
        return self.module == "repro" or self.module.startswith("repro.")

    def parent_map(self) -> dict[ast.AST, ast.AST]:
        """Child -> parent links for the whole tree (built lazily, cached)."""
        if self._parents is None:
            parents: dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """The ancestor chain of ``node``, nearest first."""
        parents = self.parent_map()
        current = parents.get(node)
        while current is not None:
            yield current
            current = parents.get(current)

    def enclosing_suite(self, node: ast.AST) -> list[ast.stmt] | None:
        """The statement list that directly contains ``node``'s statement."""
        statement = self.enclosing_statement(node)
        if statement is None:
            return None
        parent = self.parent_map().get(statement)
        if parent is None:
            return None
        for _, value in ast.iter_fields(parent):
            if isinstance(value, list) and statement in value:
                return value
        return None

    def enclosing_statement(self, node: ast.AST) -> ast.stmt | None:
        """The innermost statement containing ``node`` (itself, if one)."""
        current: ast.AST | None = node
        while current is not None and not isinstance(current, ast.stmt):
            current = self.parent_map().get(current)
        return current

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None


class Rule:
    """Base class of every lint rule.

    Subclasses set the class attributes and implement :meth:`check`.
    ``options`` is the rule's :attr:`defaults` merged with any
    ``[tool.repro-lint.rules.<ID>]`` overrides; ``repro_only`` rules are
    skipped for modules outside the ``repro`` package (repo-invariant
    rules make no sense on arbitrary files).
    """

    id: str = ""
    name: str = ""
    description: str = ""
    default_severity: str = "error"
    repro_only: bool = False
    defaults: dict[str, Any] = {}

    def options(self, ctx: LintContext) -> dict[str, Any]:
        merged = dict(self.defaults)
        merged.update(ctx.config.rule_options(self.id))
        return merged

    def severity(self, ctx: LintContext) -> str:
        return ctx.config.severity.get(self.id, self.default_severity)

    def finding(self, ctx: LintContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            name=self.name,
            severity=self.severity(ctx),
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        raise NotImplementedError


#: The rule registry: id -> rule instance, in registration order.
RULES: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry (id must be unique)."""
    rule = cls()
    if not rule.id or not rule.name:
        raise ValueError(f"rule {cls.__name__} needs an id and a name")
    if rule.id in RULES:
        raise ValueError(f"duplicate rule id {rule.id}")
    RULES[rule.id] = rule
    return cls


def iter_rules() -> tuple[Rule, ...]:
    """All registered rules, in id order."""
    return tuple(RULES[rule_id] for rule_id in sorted(RULES))


def module_name_for(path: Path) -> str:
    """Best-effort dotted module name of a file, from ``__init__.py`` chains.

    ``src/repro/core/views.py`` maps to ``repro.core.views`` regardless of
    where the source tree is checked out; files outside any package fall
    back to their stem.
    """
    path = Path(path)
    parts = [] if path.name == "__init__.py" else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").is_file():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def lint_source(
    source: str,
    path: str = "<string>",
    module: str | None = None,
    config: LintConfig | None = None,
    select: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint one source string; the core entry point the tests drive.

    ``module`` scopes the ``repro_only`` rules (pass a dotted name like
    ``repro.core.views`` to opt fixture code into them); ``select``
    restricts to a subset of rule ids.
    """
    config = config if config is not None else LintConfig()
    module = module if module is not None else module_name_for(Path(path))
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule=PARSE_ERROR,
                name="parse-error",
                severity="error",
                path=path,
                line=exc.lineno if exc.lineno is not None else 1,
                col=(exc.offset if exc.offset is not None else 0) + 1,
                message=f"cannot parse: {exc.msg}",
            )
        ]
    pragmas: Pragmas = parse_pragmas(source)
    ctx = LintContext(path=path, module=module, source=source, tree=tree, config=config)
    selected = set(select) if select is not None else None
    findings: list[Finding] = []
    for rule in iter_rules():
        if selected is not None and rule.id not in selected:
            continue
        if rule.id in config.disabled:
            continue
        if rule.repro_only and not ctx.in_repro_package:
            continue
        for finding in rule.check(ctx):
            if pragmas.suppressed(finding.rule, finding.line):
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings


def lint_file(
    path: str | Path,
    config: LintConfig | None = None,
    select: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint one file on disk."""
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    return lint_source(
        source,
        path=path.as_posix(),
        module=module_name_for(path),
        config=config,
        select=select,
    )


def _discover(paths: Iterable[str | Path], config: LintConfig) -> list[Path]:
    files: list[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            files.extend(sorted(entry.rglob("*.py")))
        else:
            files.append(entry)
    return [path for path in files if not config.excluded(path)]


def run_lint(
    paths: Iterable[str | Path],
    config: LintConfig | None = None,
    select: Iterable[str] | None = None,
) -> tuple[list[Finding], int]:
    """Lint files and directories; returns ``(findings, files_checked)``."""
    config = config if config is not None else LintConfig()
    files = _discover(paths, config)
    findings: list[Finding] = []
    for path in files:
        findings.extend(lint_file(path, config=config, select=select))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, len(files)


def findings_document(findings: list[Finding], files_checked: int) -> dict[str, Any]:
    """The machine-readable report (stable ``--json`` shape).

    Key stability is part of the contract: downstream tooling reads
    ``schema`` / ``files_checked`` / ``errors`` / ``warnings`` /
    ``counts_by_rule`` / ``findings``, and the tests pin exactly this set.
    """
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return {
        "schema": LINT_REPORT,
        "files_checked": files_checked,
        "errors": sum(1 for f in findings if f.severity == "error"),
        "warnings": sum(1 for f in findings if f.severity == "warning"),
        "counts_by_rule": dict(sorted(counts.items())),
        "findings": [finding.to_dict() for finding in findings],
    }


def render_findings(findings: list[Finding], files_checked: int) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [finding.render() for finding in findings]
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    if findings:
        lines.append("")
    lines.append(
        f"{len(findings)} finding(s) ({errors} error(s), {warnings} "
        f"warning(s)) in {files_checked} file(s)"
    )
    return "\n".join(lines)
