"""``# repro-lint: disable=RULE`` pragma parsing.

Two forms are recognized, both as comments so they never affect runtime
behavior:

* line pragmas — ``some_code()  # repro-lint: disable=R4`` suppresses the
  named rules (comma-separated, or ``all``) for findings reported on that
  physical line;
* file pragmas — ``# repro-lint: disable-file=R1`` anywhere in the file
  suppresses the named rules for the whole file.

Every pragma is expected to carry a justification in the surrounding
comment; the acceptance bar for this repo is a handful of pragmas total,
so each one should explain why the invariant genuinely does not apply.
"""

from __future__ import annotations

import io
import re
import tokenize

__all__ = ["Pragmas", "parse_pragmas"]

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\s]+)"
)


class Pragmas:
    """The pragma suppressions of one source file."""

    __slots__ = ("file_rules", "line_rules")

    def __init__(
        self,
        file_rules: set[str] | None = None,
        line_rules: dict[int, set[str]] | None = None,
    ) -> None:
        #: Rules disabled for the whole file (may contain ``"all"``).
        self.file_rules: set[str] = file_rules if file_rules is not None else set()
        #: Line number -> rules disabled on that line.
        self.line_rules: dict[int, set[str]] = (
            line_rules if line_rules is not None else {}
        )

    def suppressed(self, rule_id: str, line: int) -> bool:
        """Whether a finding of ``rule_id`` at ``line`` is pragma-disabled."""
        if "all" in self.file_rules or rule_id in self.file_rules:
            return True
        rules = self.line_rules.get(line)
        if rules is None:
            return False
        return "all" in rules or rule_id in rules

    def count(self) -> int:
        """Total number of pragma comments parsed (for reporting)."""
        return len(self.line_rules) + (1 if self.file_rules else 0)


def parse_pragmas(source: str) -> Pragmas:
    """Extract the pragma suppressions from ``source``.

    Tokenizes rather than greps, so ``#`` characters inside string
    literals can never be misread as pragmas.  Unreadable sources yield
    no pragmas — the caller reports the syntax error separately.
    """
    pragmas = Pragmas()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            token for token in tokens if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return pragmas
    for token in comments:
        match = _PRAGMA_RE.search(token.string)
        if match is None:
            continue
        rules = {
            rule.strip() for rule in match.group("rules").split(",") if rule.strip()
        }
        if not rules:
            continue
        if match.group("kind") == "disable-file":
            pragmas.file_rules |= rules
        else:
            line = token.start[0]
            pragmas.line_rules.setdefault(line, set()).update(rules)
    return pragmas
