"""``python -m repro.tools.lint`` — alias for the ``repro-lint`` script."""

import sys

from repro.tools.lint.cli import main

sys.exit(main())
