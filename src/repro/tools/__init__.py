"""Developer tooling shipped with the library.

Nothing under :mod:`repro.tools` is imported by the runtime kernels; the
subpackages are standalone utilities (static analysis, maintenance
scripts) that happen to live in-tree so they version together with the
invariants they enforce.
"""
