"""Topological characterization of consensus under general message adversaries.

An executable reproduction of Nowak, Schmid, Winkler (PODC 2019,
arXiv:1905.09590).  The library provides:

* :mod:`repro.core` — communication graphs, process-time graphs, interned
  full-information views, and the paper's distance functions ``d_P``,
  ``d_min``, ``d_max`` (Sections 2-4);
* :mod:`repro.adversaries` — message adversaries: oblivious sets, safety
  automata (the compact/limit-closed class), and non-compact eventually
  stabilizing families (Section 6);
* :mod:`repro.topology` — prefix spaces, indistinguishability components,
  ε-approximations (Definition 6.2), set distances and fair/unfair limits
  (Definition 5.16);
* :mod:`repro.consensus` — the solvability checker implementing
  Theorems 5.5/5.11/6.6/6.7, broadcastability analysis, decision-table
  universal algorithms, impossibility provers and literature baselines;
* :mod:`repro.simulation` — a synchronous lock-step simulator that runs the
  universal algorithm (and others) against admissible graph sequences;
* :mod:`repro.api` — the stable experiment surface: serializable
  :class:`~repro.specs.AdversarySpec` scenario descriptions,
  :class:`~repro.consensus.solvability.CheckOptions`,
  :class:`~repro.api.Session`, pluggable sweep backends
  (:mod:`repro.backends`), the unified :class:`~repro.records.RunRecord`
  schema, and the :mod:`repro.analysis` report layer.

Quickstart
----------
>>> from repro import arrow, ObliviousAdversary, check_consensus
>>> solvable = check_consensus(ObliviousAdversary(2, [arrow("->"), arrow("<-")]))
>>> solvable.status.name
'SOLVABLE'

Or, through the session API:

>>> from repro import AdversarySpec, CheckOptions, Session
>>> session = Session(CheckOptions(max_depth=6))
>>> session.check(AdversarySpec("oblivious", {"n": 2, "graphs": [2, 4]})).solvable
True
"""

from repro._version import __version__
from repro.core import (
    Digraph,
    GraphWord,
    PTGPrefix,
    ViewInterner,
    all_assignments,
    arrow,
    d_max,
    d_min,
    d_p,
    d_view,
    unanimous,
)

__all__ = [
    "AdversarySpec",
    "CheckOptions",
    "Digraph",
    "GraphWord",
    "PTGPrefix",
    "RunRecord",
    "Session",
    "ViewInterner",
    "all_assignments",
    "arrow",
    "d_max",
    "d_min",
    "d_p",
    "d_view",
    "unanimous",
    "__version__",
]

#: Names lazily re-exported from the high-level API (avoids import cycles
#: and keeps ``import repro`` light).
_API_NAMES = {
    "AdversarySpec",
    "CheckOptions",
    "Session",
    "RunRecord",
    "SweepJob",
    "SweepBackend",
    "SerialBackend",
    "ProcessBackend",
    "ManifestBackend",
    "run_sweep",
    "jobs_for",
    "retry_jobs",
    "read_jsonl",
    "write_jsonl",
    "register_family",
    "families",
    "summarize",
    "render_report",
}


def __getattr__(name: str):
    """Lazily re-export the high-level API to avoid import cycles."""
    if name in {"ObliviousAdversary", "SafetyAdversary", "MessageAdversary"}:
        import repro.adversaries as _adv

        return getattr(_adv, name)
    if name in {"check_consensus", "SolvabilityStatus"}:
        import repro.consensus as _cons

        return getattr(_cons, name)
    if name == "SweepRecord":
        # Deprecation alias: the unified RunRecord schema.
        import repro.records as _records

        return _records.RunRecord
    if name in _API_NAMES:
        import repro.api as _api

        return getattr(_api, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
