"""Topological characterization of consensus under general message adversaries.

An executable reproduction of Nowak, Schmid, Winkler (PODC 2019,
arXiv:1905.09590).  The library provides:

* :mod:`repro.core` — communication graphs, process-time graphs, interned
  full-information views, and the paper's distance functions ``d_P``,
  ``d_min``, ``d_max`` (Sections 2-4);
* :mod:`repro.adversaries` — message adversaries: oblivious sets, safety
  automata (the compact/limit-closed class), and non-compact eventually
  stabilizing families (Section 6);
* :mod:`repro.topology` — prefix spaces, indistinguishability components,
  ε-approximations (Definition 6.2), set distances and fair/unfair limits
  (Definition 5.16);
* :mod:`repro.consensus` — the solvability checker implementing
  Theorems 5.5/5.11/6.6/6.7, broadcastability analysis, decision-table
  universal algorithms, impossibility provers and literature baselines;
* :mod:`repro.simulation` — a synchronous lock-step simulator that runs the
  universal algorithm (and others) against admissible graph sequences.

Quickstart
----------
>>> from repro import arrow, ObliviousAdversary, check_consensus
>>> solvable = check_consensus(ObliviousAdversary(2, [arrow("->"), arrow("<-")]))
>>> solvable.status.name
'SOLVABLE'
"""

from repro._version import __version__
from repro.core import (
    Digraph,
    GraphWord,
    PTGPrefix,
    ViewInterner,
    all_assignments,
    arrow,
    d_max,
    d_min,
    d_p,
    d_view,
    unanimous,
)

__all__ = [
    "Digraph",
    "GraphWord",
    "PTGPrefix",
    "ViewInterner",
    "all_assignments",
    "arrow",
    "d_max",
    "d_min",
    "d_p",
    "d_view",
    "unanimous",
    "__version__",
]


def __getattr__(name: str):
    """Lazily re-export the high-level API to avoid import cycles."""
    if name in {"ObliviousAdversary", "SafetyAdversary", "MessageAdversary"}:
        import repro.adversaries as _adv

        return getattr(_adv, name)
    if name in {"check_consensus", "SolvabilityStatus"}:
        import repro.consensus as _cons

        return getattr(_cons, name)
    if name in {"SweepJob", "SweepRecord", "run_sweep"}:
        import repro.sweep as _sweep

        return getattr(_sweep, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
