"""The persistent, content-addressed :class:`~repro.records.RunRecord` store.

Layout (under one store root)::

    objects/<key[:2]>/<key>.json   -- one cached record per cache key
    journal.jsonl                  -- append-only put journal (recency order)

Each object file is a self-describing :data:`~repro.schemas.RESULT_STORE`
document embedding the key, the canonical pre-hash payload it was derived
from, and the *normalized* record: the run-dependent fields (``index``,
``shard``, ``elapsed_s``, ``views_interned``, ``tags`` and the census's
cross-validation verdicts) are zeroed on the way in, so a cached record is
a pure function of the cache key — two processes that cache the same
(spec, options) pair write byte-identical objects, and a served hit is
byte-identical to a fresh ``record_timing=False`` run.

The object *path* is the index: a hit probe is one ``os.stat`` (memoized
per store instance after the first sighting), never a directory scan.
All writes go through the crash-safe funnel (:mod:`repro.io.atomic`,
enforced by repro-lint rule R9): objects land by temp-then-rename, the
journal grows by fsynced whole lines, and journal compaction after GC is
an atomic text replace — a SIGKILL at any instruction leaves a store that
reads cleanly.

Staleness is structural, not temporal (the store keeps no clocks, per
lint rule R3): an object whose embedded schema tag, kernel epoch, or key
disagrees with this library — or that does not parse — is *stale*,
counted and treated as a miss, and swept by :meth:`ResultStore.gc`.
Recency for eviction is journal order: later put = more recently
computed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterator

from repro.consensus.solvability import CheckOptions
from repro.errors import AnalysisError
from repro.io.atomic import append_line, atomic_write_json, atomic_write_text, read_lines
from repro.records import RunRecord
from repro.schemas import RESULT_STORE, RUN_RECORD
from repro.specs import AdversarySpec
from repro.store.keys import KERNEL_EPOCH, cache_key, key_payload

__all__ = [
    "ResultStore",
    "normalize_record",
]

#: Record fields zeroed before storage (and therefore absent from what a
#: cache hit can tell you): everything that depends on *how* the run
#: happened rather than on what the checker concluded.
_NORMALIZED_FIELDS: dict[str, Any] = {
    "index": 0,
    "shard": 0,
    "elapsed_s": 0.0,
    "views_interned": 0,
    "tags": {},
    "oracle": None,
    "cgp": None,
}


def normalize_record(record: RunRecord) -> RunRecord:
    """A copy of ``record`` with every run-dependent field zeroed.

    This is the storage form: equal verdicts from different sweeps,
    shards, or backends normalize to equal records, which is what makes
    the store content-addressed rather than merely memoizing.
    """
    data = record.to_dict()
    data.update(_NORMALIZED_FIELDS)
    return RunRecord.from_dict(data)


class ResultStore:
    """Disk-backed cache of solvability verdicts, keyed by content.

    One instance owns one store root.  Hit/miss/stale/put counters are
    per-instance (session observability); the objects and journal are
    shared state that any number of concurrent processes may extend —
    every write shape is crash-safe and last-writer-wins is harmless
    because equal keys imply equal normalized objects.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.journal_path = self.root / "journal.jsonl"
        self.hits = 0
        self.misses = 0
        self.stale = 0
        self.puts = 0
        #: Keys this instance has confirmed on disk — the O(1) probe memo.
        #: Absence is never memoized: another process may put at any time.
        self._present: set[str] = set()

    # ------------------------------------------------------------- #
    # Addressing
    # ------------------------------------------------------------- #

    def key_for(self, spec: AdversarySpec, options: CheckOptions) -> str:
        """The cache key of one (spec, options) pair (see :mod:`.keys`)."""
        return cache_key(spec, options)

    def object_path(self, key: str) -> Path:
        """Where the object for ``key`` lives (whether or not it exists)."""
        return self.objects_dir / key[:2] / f"{key}.json"

    def probe(self, key: str) -> bool:
        """O(1) existence check; mutates no hit/miss counters."""
        if key in self._present:
            return True
        if self.object_path(key).exists():
            self._present.add(key)
            return True
        return False

    # ------------------------------------------------------------- #
    # Get / put
    # ------------------------------------------------------------- #

    def get(
        self, spec: AdversarySpec, options: CheckOptions
    ) -> RunRecord | None:
        """The cached normalized record, or ``None`` (miss or stale).

        A present-but-unusable object — unparsable, or carrying a schema
        tag, kernel epoch, or key other than this library's — counts as
        *stale* (and as a miss to the caller); ``gc`` sweeps those.
        """
        key = cache_key(spec, options)
        record = self._load(key)
        if record is None:
            self.misses += 1
            return None
        self.hits += 1
        return record

    def get_by_key(self, key: str) -> RunRecord | None:
        """Keyed variant of :meth:`get` for callers that pre-hash
        (the query service coalesces in-flight work by key)."""
        record = self._load(key)
        if record is None:
            self.misses += 1
            return None
        self.hits += 1
        return record

    def _load(self, key: str) -> RunRecord | None:
        path = self.object_path(key)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        try:
            document = json.loads(text)
            if not isinstance(document, dict):
                raise ValueError("object document is not a JSON object")
            if (
                document.get("schema") != RESULT_STORE
                or document.get("kernel_epoch") != KERNEL_EPOCH
                or document.get("record_schema") != RUN_RECORD
                or document.get("key") != key
            ):
                raise ValueError("object belongs to another store version")
            record = RunRecord.from_dict(document["record"])
        except (ValueError, KeyError, TypeError):
            self.stale += 1
            return None
        self._present.add(key)
        return record

    def put(
        self,
        spec: AdversarySpec,
        options: CheckOptions,
        record: RunRecord,
    ) -> str:
        """Cache one verdict; returns the key it was stored under.

        The record is normalized first (see :func:`normalize_record`), so
        callers may hand over their sweep records as-is.  Concurrent puts
        of the same key are benign: both writers produce the identical
        object and the rename is atomic.
        """
        key = cache_key(spec, options)
        path = self.object_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_json(
            path,
            {
                "schema": RESULT_STORE,
                "kernel_epoch": KERNEL_EPOCH,
                "record_schema": RUN_RECORD,
                "key": key,
                "payload": key_payload(spec, options),
                "record": normalize_record(record).to_dict(),
            },
        )
        self.root.mkdir(parents=True, exist_ok=True)
        append_line(
            self.journal_path,
            json.dumps({"op": "put", "key": key}, sort_keys=True),
        )
        self._present.add(key)
        self.puts += 1
        return key

    # ------------------------------------------------------------- #
    # Maintenance: stats / gc / verify
    # ------------------------------------------------------------- #

    def _iter_objects(self) -> Iterator[Path]:
        if not self.objects_dir.is_dir():
            return
        for bucket in sorted(self.objects_dir.iterdir()):
            if not bucket.is_dir():
                continue
            for path in sorted(bucket.glob("*.json")):
                yield path

    def _journal_keys(self) -> list[str]:
        """Put order from the journal, deduplicated to last occurrence.

        Tolerates one torn trailing line (mid-append kill) and skips
        unparsable lines — the journal is a recency hint, not ground
        truth; the objects directory is.
        """
        lines = read_lines(self.journal_path) or []
        order: dict[str, int] = {}
        for position, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                key = entry["key"]
            except (ValueError, KeyError, TypeError):
                continue
            if isinstance(key, str):
                order[key] = position  # later put wins: most recent
        return sorted(order, key=order.__getitem__)

    def stats(self) -> dict[str, Any]:
        """Session counters plus on-disk object count and byte size."""
        objects = 0
        size = 0
        for path in self._iter_objects():
            objects += 1
            size += path.stat().st_size
        return {
            "root": str(self.root),
            "kernel_epoch": KERNEL_EPOCH,
            "record_schema": RUN_RECORD,
            "objects": objects,
            "bytes": size,
            "hits": self.hits,
            "misses": self.misses,
            "stale": self.stale,
            "puts": self.puts,
        }

    def verify(self) -> dict[str, Any]:
        """Full integrity scan: every object re-keyed from its payload.

        For each object the canonical hash of the embedded payload is
        recomputed and compared against the filename — a content-
        addressing check no mere schema validation provides.  Returns a
        report dict; mutates nothing.
        """
        checked = 0
        problems: list[dict[str, str]] = []
        for path in self._iter_objects():
            checked += 1
            problem = self._verify_object(path)
            if problem is not None:
                problems.append({"path": str(path), "problem": problem})
        return {"checked": checked, "ok": not problems, "problems": problems}

    def _verify_object(self, path: Path) -> str | None:
        import hashlib

        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return "unparsable object document"
        if not isinstance(document, dict):
            return "object document is not a JSON object"
        if document.get("schema") != RESULT_STORE:
            return f"wrong schema tag {document.get('schema')!r}"
        if document.get("kernel_epoch") != KERNEL_EPOCH:
            return f"kernel epoch {document.get('kernel_epoch')!r} != {KERNEL_EPOCH}"
        if document.get("record_schema") != RUN_RECORD:
            return f"record schema {document.get('record_schema')!r} != {RUN_RECORD!r}"
        key = document.get("key")
        if key != path.stem:
            return f"embedded key {key!r} != filename {path.stem!r}"
        payload = document.get("payload")
        if not isinstance(payload, dict):
            return "missing canonical payload"
        canonical = json.loads(json.dumps(payload, sort_keys=True))
        encoded = json.dumps(
            canonical, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        digest = hashlib.sha256(encoded).hexdigest()
        if digest != key:
            return f"payload hashes to {digest[:12]}..., not the stored key"
        try:
            record = RunRecord.from_dict(document["record"])
        except (KeyError, TypeError):
            return "embedded record does not parse"
        if normalize_record(record).to_dict() != record.to_dict():
            return "embedded record is not normalized"
        return None

    def gc(
        self,
        max_objects: int | None = None,
        max_bytes: int | None = None,
    ) -> dict[str, Any]:
        """Evict stale objects, then (optionally) trim to a budget.

        Pass one eviction budget at most.  Stale objects — wrong epoch,
        wrong schema, unparsable — always go, regardless of budget.
        Budget eviction drops the *least recently put* keys (journal
        order; keys the journal never saw count as oldest).  The journal
        is compacted afterwards to exactly the surviving keys, in
        recency order, via one atomic replace.
        """
        if max_objects is not None and max_bytes is not None:
            raise AnalysisError("gc takes at most one of max_objects/max_bytes")
        if max_objects is not None and max_objects < 0:
            raise AnalysisError("gc max_objects must be >= 0")
        if max_bytes is not None and max_bytes < 0:
            raise AnalysisError("gc max_bytes must be >= 0")

        removed_stale = 0
        survivors: dict[str, Path] = {}
        for path in self._iter_objects():
            if self._verify_object(path) is not None:
                path.unlink(missing_ok=True)
                self._present.discard(path.stem)
                removed_stale += 1
            else:
                survivors[path.stem] = path

        # Oldest-first eviction order: journal recency, with never-
        # journaled keys (foreign writers, lost journals) evicted first
        # in sorted-key order for determinism.
        recency = self._journal_keys()
        journaled = [key for key in recency if key in survivors]
        unjournaled = sorted(key for key in survivors if key not in set(recency))
        oldest_first = unjournaled + journaled

        removed_evicted = 0
        if max_objects is not None:
            evict = oldest_first[: max(0, len(oldest_first) - max_objects)]
            removed_evicted = self._evict(evict, survivors)
        elif max_bytes is not None:
            total = sum(path.stat().st_size for path in survivors.values())
            evict = []
            for key in oldest_first:
                if total <= max_bytes:
                    break
                total -= survivors[key].stat().st_size
                evict.append(key)
            removed_evicted = self._evict(evict, survivors)

        compacted = [key for key in oldest_first if key in survivors]
        text = "".join(
            json.dumps({"op": "put", "key": key}, sort_keys=True) + "\n"
            for key in compacted
        )
        self.root.mkdir(parents=True, exist_ok=True)
        atomic_write_text(self.journal_path, text)
        self._prune_empty_buckets()
        return {
            "removed_stale": removed_stale,
            "removed_evicted": removed_evicted,
            "remaining": len(survivors),
        }

    def _evict(self, keys: list[str], survivors: dict[str, Path]) -> int:
        removed = 0
        for key in keys:
            survivors.pop(key).unlink(missing_ok=True)
            self._present.discard(key)
            removed += 1
        return removed

    def _prune_empty_buckets(self) -> None:
        if not self.objects_dir.is_dir():
            return
        for bucket in self.objects_dir.iterdir():
            if bucket.is_dir() and not any(bucket.iterdir()):
                bucket.rmdir()
