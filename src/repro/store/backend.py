"""A caching decorator over any :class:`~repro.backends.SweepBackend`.

:class:`CachedBackend` splits a job list into cache hits and misses:
hits are served straight from the :class:`~repro.store.cache.ResultStore`
(no checker work at all — the interner never sees them), misses fan out
to the wrapped backend exactly as they would have without the cache, and
every cacheable miss result is written back, so the next equal-spec sweep
is all hits.

Key derivation mirrors :func:`~repro.backends.iter_job_records` exactly:
each job's effective options are ``base.replace(max_depth=job.max_depth)``
— the per-job depth wins, everything else comes from the sweep-wide
options.  Jobs whose adversary has no canonical serialization
(``resolved_spec`` raises) cannot be content-addressed; they pass through
to the wrapped backend uncached, counted in ``uncacheable``.

Served hits carry the *requesting* job's ``index`` and ``tags`` over the
stored normalized record, with timing fields zeroed — byte-identical to
what a ``record_timing=False`` serial run of the same jobs produces.
(Wrap a ``record_timing=False`` inner backend when a sweep must be
byte-stable across its own hot/cold boundary; with timing on, misses
carry real timings while hits are zero, which is visible and deliberate.)
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.backends import SerialBackend, SweepBackend, SweepJob, _validate_jobs
from repro.consensus.solvability import CheckOptions
from repro.errors import AdversaryError
from repro.records import RunRecord
from repro.specs import AdversarySpec
from repro.store.cache import ResultStore

__all__ = ["CachedBackend"]


class CachedBackend:
    """Serve sweep jobs from a result store; fan misses to ``inner``.

    Parameters
    ----------
    store:
        The :class:`ResultStore` (or a path, which opens one).
    inner:
        The backend that computes misses; defaults to a
        ``record_timing=False`` :class:`~repro.backends.SerialBackend`,
        the configuration under which hot and cold records are
        byte-identical.
    """

    def __init__(
        self,
        store: ResultStore | str | Path,
        inner: SweepBackend | None = None,
    ) -> None:
        self.store = store if isinstance(store, ResultStore) else ResultStore(store)
        self.inner = inner if inner is not None else SerialBackend(record_timing=False)
        #: Jobs passed through uncached because their adversary has no
        #: canonical spec (session observability, like the store counters).
        self.uncacheable = 0

    def run(
        self,
        jobs: Sequence[SweepJob],
        options: CheckOptions | None = None,
    ) -> list[RunRecord]:
        jobs = _validate_jobs(jobs)
        base = options or CheckOptions()
        records: list[RunRecord] = []
        pending: list[SweepJob] = []
        cacheable: dict[int, tuple[AdversarySpec, CheckOptions]] = {}
        for job in jobs:
            try:
                spec = job.resolved_spec()
            except AdversaryError:
                self.uncacheable += 1
                pending.append(job)
                continue
            effective = base.replace(max_depth=job.max_depth)
            cached = self.store.get(spec, effective)
            if cached is not None:
                records.append(_serve(cached, job))
            else:
                cacheable[job.index] = (spec, effective)
                pending.append(job)
        if pending:
            computed = self.inner.run(pending, base)
            for record in computed:
                addressed = cacheable.get(record.index)
                if addressed is not None:
                    spec, effective = addressed
                    self.store.put(spec, effective, record)
            records.extend(computed)
        records.sort(key=lambda record: record.index)
        return records


def _serve(cached: RunRecord, job: SweepJob) -> RunRecord:
    """Rehydrate a normalized stored record for one requesting job.

    Only the two request-scoped fields differ between equal-key jobs:
    the caller's job ``index`` and its ``tags``.  Everything else —
    including the zeroed timing fields — comes from the store, which is
    exactly the ``record_timing=False`` serial shape.
    """
    data = cached.to_dict()
    data["index"] = job.index
    data["tags"] = dict(job.tags)
    return RunRecord.from_dict(data)
