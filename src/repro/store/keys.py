"""Canonical cache-key derivation for the content-addressed result store.

A cached verdict may only be served when *nothing that could change the
verdict* differs from the run that produced it.  The cache key is
therefore a SHA-256 over a canonical JSON document of exactly four
ingredients:

1. the serialized :class:`~repro.specs.AdversarySpec` (family + params +
   seed — the complete description of the adversary);
2. the *semantic* subset of :class:`~repro.consensus.solvability.
   CheckOptions` (:data:`SEMANTIC_OPTION_FIELDS`): the fields that can
   change a verdict or certificate.  Observability and accelerator knobs
   (``layer_backend``, ``extension_workers``, ``plan_cache_size``,
   ``memo_extensions``) are deliberately excluded — backend parity is a
   tested invariant of the library, so a record computed by the numpy
   kernel is byte-identical (timing zeroed) to the pure-python one and
   may be served to either;
3. the run-record schema version (:data:`repro.schemas.RUN_RECORD`) —
   a schema bump must never serve old-shape records;
4. the checker :data:`KERNEL_EPOCH` — bumped whenever checker semantics
   change in a way the schema version does not capture (a prover fix, a
   certificate change).  Bumping it orphans every existing entry: old
   objects simply stop being addressable and are swept by ``cache gc``.

Canonicalization: ``json.dumps(..., sort_keys=True)`` with compact
separators over JSON-normalized values, so dict insertion order, int vs
float spelling, and pickle/json round-trips of the spec cannot perturb
the key.  The key is a pure function of its four ingredients — identical
across processes and machines, which the cache-key stability tests pin.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.consensus.solvability import CheckOptions
from repro.schemas import RUN_RECORD
from repro.specs import AdversarySpec

__all__ = [
    "KERNEL_EPOCH",
    "SEMANTIC_OPTION_FIELDS",
    "cache_key",
    "key_payload",
    "semantic_options",
]

#: Monotone counter over checker *semantics*.  Bump on any change that can
#: alter a verdict, a certificate, or a recorded depth without changing
#: the record schema itself; every bump invalidates the whole store (old
#: entries become unaddressable garbage, collected by ``cache gc``).
KERNEL_EPOCH = 1

#: The :class:`CheckOptions` fields that participate in the cache key —
#: exactly those that can change what the checker concludes, as opposed
#: to how fast or how observably it concludes it.
SEMANTIC_OPTION_FIELDS: tuple[str, ...] = (
    "max_depth",
    "max_nodes",
    "use_impossibility_provers",
    "use_broadcaster_certificate",
)


def semantic_options(options: CheckOptions) -> dict[str, Any]:
    """The key-relevant slice of a :class:`CheckOptions`, as a dict."""
    full = options.to_dict()
    return {field: full[field] for field in SEMANTIC_OPTION_FIELDS}


def key_payload(spec: AdversarySpec, options: CheckOptions) -> dict[str, Any]:
    """The canonical pre-hash document behind :func:`cache_key`.

    Exposed separately so tests (and ``cache verify`` diagnostics) can
    inspect exactly what a key commits to.
    """
    return {
        "kernel_epoch": KERNEL_EPOCH,
        "record_schema": RUN_RECORD,
        "spec": spec.to_dict(),
        "options": semantic_options(options),
    }


def cache_key(spec: AdversarySpec, options: CheckOptions) -> str:
    """Hex SHA-256 cache key of one (adversary spec, checker options) pair.

    Stable across processes, param-dict orderings, and serialization
    round-trips: the payload is JSON-normalized (``json.loads`` of a
    ``json.dumps``) before hashing, so any two specs that serialize to
    the same JSON produce the same key.
    """
    payload = key_payload(spec, options)
    # Normalize through a JSON round-trip first: tuples become lists,
    # ints stay ints, and anything non-JSON fails loudly here rather
    # than hashing an unstable repr.
    canonical = json.loads(json.dumps(payload, sort_keys=True))
    encoded = json.dumps(
        canonical, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()
