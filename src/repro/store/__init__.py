"""Content-addressed persistent result store: hot checks become lookups.

The three pieces:

* :mod:`repro.store.keys` — canonical cache-key derivation: a SHA-256
  over (adversary spec, semantic checker options, record-schema version,
  kernel epoch), stable across processes and serialization round-trips;
* :mod:`repro.store.cache` — :class:`ResultStore`, the crash-safe
  on-disk cache (``objects/<k[:2]>/<k>.json`` + put journal) with
  hit/miss/stale counters, GC, and full integrity verification;
* :mod:`repro.store.backend` — :class:`CachedBackend`, which wraps any
  sweep backend so repeated equal-spec sweeps do zero checker work.

Every write goes through the :mod:`repro.io.atomic` funnel (lint R9).
"""

from __future__ import annotations

from repro.store.backend import CachedBackend
from repro.store.cache import ResultStore, normalize_record
from repro.store.keys import (
    KERNEL_EPOCH,
    SEMANTIC_OPTION_FIELDS,
    cache_key,
    key_payload,
    semantic_options,
)

__all__ = [
    "KERNEL_EPOCH",
    "SEMANTIC_OPTION_FIELDS",
    "CachedBackend",
    "ResultStore",
    "cache_key",
    "key_payload",
    "normalize_record",
    "semantic_options",
]
