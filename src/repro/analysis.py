"""Aggregation and reporting over sweep record streams.

A million-scenario census is only as useful as the questions you can ask
of its output.  This module turns any stream of
:class:`~repro.records.RunRecord` — a fresh in-memory sweep, a merged
manifest run, an archived JSONL file from an earlier revision — into a
:class:`SweepReport`: status and certificate histograms, per-family and
per-``(n, |D|)`` pivot tables, the undecided frontier (the scenarios that
exhausted their depth budget, i.e. where to spend more compute next), and
the slowest jobs.  ``repro-consensus report records.jsonl`` renders it
from the command line; :func:`repro.consensus.census` rows and
:func:`~repro.sweep.run_sweep` results feed it directly.

>>> from repro.records import RunRecord
>>> record = RunRecord(index=0, adversary="X", n=2, alphabet=2, max_depth=4,
...     status="solvable", certified_depth=1, certificate="decision-table@1",
...     elapsed_s=0.01, views_interned=5, shard=0)
>>> summarize([record]).status_counts["solvable"]
1
"""

from __future__ import annotations

import heapq
from collections import Counter
from pathlib import Path
from typing import Iterable

from repro.records import RunRecord, read_jsonl
from repro.schemas import SWEEP_REPORT

__all__ = [
    "CrossValidation",
    "SweepReport",
    "certificate_kind",
    "summarize",
    "render_report",
    "report_jsonl",
    "json_report_jsonl",
]


def _explored_depth(record: RunRecord) -> int:
    """Deepest explored depth of an undecided record.

    Undecided results carry it only in the certificate string
    (``undecided@6`` — ``certified_depth`` is None by definition); legacy
    ``"-"`` certificates report -1, sorting after every annotated record.
    """
    certificate = record.certificate or ""
    if "@" in certificate:
        _, _, depth = certificate.partition("@")
        try:
            return int(depth)
        except ValueError:
            return -1
    return -1


def certificate_kind(certificate: str | None) -> str:
    """The certificate family of a record's certificate string.

    Strips instance detail: ``decision-table@3`` → ``decision-table``,
    ``broadcaster p1`` → ``broadcaster``, ``undecided@6`` → ``undecided``;
    the impossibility witness kinds and the legacy ``"-"`` placeholder
    pass through unchanged.
    """
    if not certificate:
        return "-"
    return certificate.split("@", 1)[0].split(" ", 1)[0]


class CrossValidation:
    """Agreement mining for one baseline column (``cgp`` or ``oracle``).

    Census records carry the verdict of a baseline next to the checker's
    certified status; this accumulator counts where they coincide and
    keeps every disagreeing record — for the CGP reconstruction heuristic
    the disagreements *are* the census's scientific output (Section 6.2:
    exactly where the heuristic diverges from the certified checker).
    """

    __slots__ = ("label", "checked", "agree", "unresolved", "disagreements")

    def __init__(self, label: str) -> None:
        self.label = label
        #: Records carrying this baseline's verdict at all.
        self.checked = 0
        #: Checker decided and matches the baseline.
        self.agree = 0
        #: Baseline present but the checker ran out of budget (undecided).
        self.unresolved = 0
        #: Records where a decided checker contradicts the baseline.
        self.disagreements: list[RunRecord] = []

    @property
    def disagree(self) -> int:
        return len(self.disagreements)

    def add(self, record: RunRecord, verdict: bool | None) -> None:
        if verdict is None:
            return
        self.checked += 1
        solvable = record.solvable
        if solvable is None:
            self.unresolved += 1
        elif solvable == verdict:
            self.agree += 1
        else:
            self.disagreements.append(record)

    def disagreements_by_family(self) -> Counter:
        """Family label -> number of disagreeing records."""
        return Counter(record.family_label for record in self.disagreements)

    def to_dict(self) -> dict:
        """JSON-able form (the ``report --json`` CrossValidation section)."""
        return {
            "label": self.label,
            "checked": self.checked,
            "agree": self.agree,
            "disagree": self.disagree,
            "unresolved": self.unresolved,
            "disagreements_by_family": dict(self.disagreements_by_family()),
            "disagreements": [record.to_dict() for record in self.disagreements],
        }

    def __repr__(self) -> str:
        return (
            f"CrossValidation({self.label}: checked={self.checked}, "
            f"agree={self.agree}, disagree={self.disagree}, "
            f"unresolved={self.unresolved})"
        )


class SweepReport:
    """Aggregated view of one record stream (see :func:`summarize`)."""

    __slots__ = (
        "total",
        "status_counts",
        "certificate_counts",
        "by_family",
        "by_shape",
        "undecided",
        "slowest",
        "total_elapsed_s",
        "top",
        "cgp",
        "oracle",
    )

    def __init__(
        self,
        total: int,
        status_counts: Counter,
        certificate_counts: Counter,
        by_family: dict[str, Counter],
        by_shape: dict[tuple[int, int], Counter],
        undecided: list[RunRecord],
        slowest: list[RunRecord],
        total_elapsed_s: float,
        top: int,
        cgp: CrossValidation | None = None,
        oracle: CrossValidation | None = None,
    ) -> None:
        self.total = total
        self.status_counts = status_counts
        self.certificate_counts = certificate_counts
        #: family label -> status counter (label falls back to the
        #: ``family`` tag of records without a spec, then ``"-"``).
        self.by_family = by_family
        #: (n, alphabet size) -> status counter.
        self.by_shape = by_shape
        #: Undecided records, deepest-explored first: the frontier where a
        #: bigger depth budget (or a new prover) would earn new verdicts.
        self.undecided = undecided
        self.slowest = slowest
        self.total_elapsed_s = total_elapsed_s
        self.top = top
        #: Cross-validation against the CGP reconstruction heuristic and
        #: the literature oracle (census streams carry both in-record).
        self.cgp = cgp if cgp is not None else CrossValidation("cgp")
        self.oracle = oracle if oracle is not None else CrossValidation("oracle")

    def to_dict(self) -> dict:
        """Machine-readable form of the whole report (``report --json``).

        Everything the rendered text shows, as one JSON document with a
        versioned ``schema`` marker: histograms, pivots (labels
        stringified for JSON keys), the full undecided frontier, the
        slowest jobs, and both :class:`CrossValidation` sections —
        records embedded via :meth:`~repro.records.RunRecord.to_dict`, so
        downstream tooling (CI artifacts, dashboards) can re-queue or
        re-check them directly.
        """
        return {
            "schema": SWEEP_REPORT,
            "total": self.total,
            "total_elapsed_s": self.total_elapsed_s,
            "status_counts": dict(self.status_counts),
            "certificate_counts": dict(self.certificate_counts),
            "by_family": {
                str(label): dict(counter)
                for label, counter in sorted(self.by_family.items(), key=lambda kv: str(kv[0]))
            },
            "by_shape": {
                f"n={n} |D|={alphabet}": dict(counter)
                for (n, alphabet), counter in sorted(self.by_shape.items())
            },
            "undecided": [record.to_dict() for record in self.undecided],
            "slowest": [record.to_dict() for record in self.slowest],
            "cross_validation": {
                "oracle": self.oracle.to_dict(),
                "cgp": self.cgp.to_dict(),
            },
        }

    def __repr__(self) -> str:
        counts = ", ".join(
            f"{count} {status}" for status, count in sorted(self.status_counts.items())
        )
        return f"SweepReport({self.total} records: {counts})"


def summarize(records: Iterable[RunRecord], top: int = 5) -> SweepReport:
    """Aggregate a record stream into a :class:`SweepReport`.

    Works on any iterable of records — lists, generators, or the lazy
    stream of :func:`~repro.records.read_jsonl` — in one pass.  ``top``
    bounds the slowest-jobs listing; the undecided frontier is kept in
    full (it is the report's actionable output).
    """
    status_counts: Counter = Counter()
    certificate_counts: Counter = Counter()
    by_family: dict[str, Counter] = {}
    by_shape: dict[tuple[int, int], Counter] = {}
    undecided: list[RunRecord] = []
    cgp = CrossValidation("cgp")
    oracle = CrossValidation("oracle")
    total = 0
    total_elapsed = 0.0
    # Only the top-N slowest are retained (heap of (elapsed, tiebreak)),
    # so summarizing a million-record stream stays O(undecided + top) in
    # memory, not O(total).
    slow_heap: list[tuple[float, int, RunRecord]] = []
    for record in records:
        total += 1
        total_elapsed += record.elapsed_s
        status_counts[record.status] += 1
        certificate_counts[certificate_kind(record.certificate)] += 1
        by_family.setdefault(record.family_label, Counter())[record.status] += 1
        by_shape.setdefault((record.n, record.alphabet), Counter())[record.status] += 1
        cgp.add(record, record.cgp)
        oracle.add(record, record.oracle)
        if record.status == "undecided":
            undecided.append(record)
        if top > 0:
            entry = (record.elapsed_s, -total, record)
            if len(slow_heap) < top:
                heapq.heappush(slow_heap, entry)
            else:
                heapq.heappushpop(slow_heap, entry)
    undecided.sort(
        key=lambda r: (-_explored_depth(r), -r.max_depth, r.n, r.index)
    )
    slowest = [entry[2] for entry in sorted(slow_heap, key=lambda e: (-e[0], -e[1]))]
    return SweepReport(
        total=total,
        status_counts=status_counts,
        certificate_counts=certificate_counts,
        by_family=by_family,
        by_shape=by_shape,
        undecided=undecided,
        slowest=slowest,
        total_elapsed_s=total_elapsed,
        top=top,
        cgp=cgp,
        oracle=oracle,
    )


def _histogram(title: str, counts: Counter, width: int = 32) -> list[str]:
    lines = [title]
    if not counts:
        return lines + ["  (no records)"]
    peak = max(counts.values())
    for key, count in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])):
        bar = "#" * max(1, round(width * count / peak))
        lines.append(f"  {key:28s} {count:>6d} {bar}")
    return lines


def _pivot(title: str, rows: dict, statuses: list[str], label_width: int = 24) -> list[str]:
    header = "  " + "label".ljust(label_width) + "".join(
        f"{status:>12s}" for status in statuses
    ) + f"{'total':>12s}"
    lines = [title, header, "  " + "-" * (len(header) - 2)]
    for label in sorted(rows, key=str):
        counter = rows[label]
        cells = "".join(f"{counter.get(status, 0):>12d}" for status in statuses)
        lines.append(
            "  " + str(label).ljust(label_width) + cells
            + f"{sum(counter.values()):>12d}"
        )
    return lines


def render_report(report: SweepReport) -> str:
    """Render a :class:`SweepReport` as a monospaced text block."""
    statuses = sorted(report.status_counts)
    lines = [
        f"{report.total} records, total checker time "
        f"{report.total_elapsed_s:.3f}s",
        "",
    ]
    lines += _histogram("status histogram", report.status_counts)
    lines.append("")
    lines += _histogram("certificate histogram", report.certificate_counts)
    lines.append("")
    lines += _pivot("per-family statuses", report.by_family, statuses)
    lines.append("")
    shape_rows = {
        f"n={n} |D|={alphabet}": counter
        for (n, alphabet), counter in report.by_shape.items()
    }
    lines += _pivot("per-(n, |D|) statuses", shape_rows, statuses)
    for validation in (report.oracle, report.cgp):
        if validation.checked == 0:
            continue
        title = (
            "CGP reconstruction cross-validation"
            if validation.label == "cgp"
            else "literature-oracle cross-validation"
        )
        lines.append("")
        lines.append(title)
        lines.append(
            f"  checked {validation.checked}: {validation.agree} agree, "
            f"{validation.disagree} disagree, "
            f"{validation.unresolved} unresolved (checker undecided)"
        )
        if validation.disagreements:
            by_family = validation.disagreements_by_family()
            lines.append(
                "  disagreements by family: "
                + ", ".join(
                    f"{family}: {count}"
                    for family, count in sorted(by_family.items())
                )
            )
            for record in validation.disagreements:
                predicted = "solvable" if record.solvable is False else "unsolvable"
                lines.append(
                    f"  #{record.index:<4d} {record.adversary:32s} "
                    f"checker={record.status:11s} "
                    f"{validation.label} predicted {predicted}"
                )
    if report.undecided:
        lines.append("")
        lines.append(f"undecided frontier ({len(report.undecided)} records)")
        for record in report.undecided:
            lines.append(
                f"  #{record.index:<4d} {record.adversary:32s} "
                f"{record.certificate:16s} budget max_depth={record.max_depth}"
            )
    if report.slowest and report.total_elapsed_s > 0:
        lines.append("")
        lines.append(f"slowest jobs (top {len(report.slowest)})")
        for record in report.slowest:
            lines.append(
                f"  #{record.index:<4d} {record.adversary:32s} "
                f"{record.status:11s} {record.elapsed_s * 1e3:>9.1f}ms"
            )
    return "\n".join(lines)


def report_jsonl(path: str | Path, top: int = 5) -> str:
    """Summarize and render a JSONL record file (any schema version)."""
    return render_report(summarize(read_jsonl(path), top=top))


def json_report_jsonl(path: str | Path, top: int = 5) -> str:
    """Summarize a JSONL record file into the machine-readable JSON report."""
    import json

    return json.dumps(summarize(read_jsonl(path), top=top).to_dict(), indent=2)
