"""Sharded sweep engine: fan (adversary, depth) check jobs across processes.

The census instruments of Section 6.2 — and the oblivious-adversary studies
they follow (Winkler et al., arXiv:2202.12397) — classify *families* of
adversaries, not single instances.  Each classification is an independent
:func:`~repro.consensus.solvability.check_consensus` call, so a family sweep
is embarrassingly parallel.  This module is the engine under
:func:`~repro.consensus.census.two_process_census`,
:func:`~repro.consensus.census.random_rooted_census`, the
``repro-consensus sweep`` CLI subcommand, and the census benchmarks.

Design:

* **Deterministic chunking.**  Job ``i`` of a ``w``-worker sweep always runs
  on shard ``i % w`` (strided assignment balances families whose hard
  instances cluster).  Records carry their shard id, and the returned list
  is sorted by job index, so a sweep's output is a pure function of
  ``(jobs, workers)``.
* **Per-shard interners.**  Views depend only on inputs and
  in-neighborhoods, never on the adversary, so each shard shares one
  :class:`~repro.core.views.ViewInterner` per process count across all its
  jobs.  Together with the interner's memoized ``(level, graph)`` extension
  cache this makes same-``n`` families reuse each other's view tables.
* **Compact records.**  Workers return :class:`SweepRecord` summaries
  (status, certificate, depth, timing, table stats), not full
  :class:`~repro.consensus.solvability.SolvabilityResult` objects — records
  cross process boundaries cheaply and serialize to JSONL, one line per
  job, via :func:`write_jsonl` (written once, after the sweep completes).

``workers <= 1`` runs inline (no subprocess), which is also the fully
deterministic reference path the tests pin the parallel path against.
"""

from __future__ import annotations

import json
import multiprocessing
import sys
import time
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.adversaries.base import MessageAdversary
from repro.core.views import ViewInterner
from repro.errors import AnalysisError

__all__ = [
    "SweepJob",
    "SweepRecord",
    "run_sweep",
    "jobs_for",
    "certificate_summary",
    "write_jsonl",
    "read_jsonl",
]


def certificate_summary(result) -> str:
    """Short description of a solvability result's certificate."""
    if result.decision_table is not None:
        return f"decision-table@{result.certified_depth}"
    if result.broadcaster is not None:
        return f"broadcaster p{result.broadcaster.process}"
    if result.impossibility is not None:
        return result.impossibility.kind
    return "-"


class SweepJob:
    """One unit of sweep work: classify ``adversary`` up to ``max_depth``."""

    __slots__ = ("index", "adversary", "max_depth", "tags")

    def __init__(
        self,
        index: int,
        adversary: MessageAdversary,
        max_depth: int = 6,
        tags: dict | None = None,
    ) -> None:
        self.index = index
        self.adversary = adversary
        self.max_depth = max_depth
        #: JSON-able metadata carried through to the record (e.g. family
        #: name, sample seed).
        self.tags = tags or {}

    def __repr__(self) -> str:
        return (
            f"SweepJob(#{self.index}, {self.adversary.name}, "
            f"max_depth={self.max_depth})"
        )


class SweepRecord:
    """Compact, JSON-able outcome of one sweep job."""

    __slots__ = (
        "index",
        "adversary",
        "n",
        "alphabet",
        "max_depth",
        "status",
        "certified_depth",
        "certificate",
        "elapsed_s",
        "views_interned",
        "shard",
        "tags",
    )

    def __init__(
        self,
        index: int,
        adversary: str,
        n: int,
        alphabet: int,
        max_depth: int,
        status: str,
        certified_depth: int | None,
        certificate: str,
        elapsed_s: float,
        views_interned: int,
        shard: int,
        tags: dict | None = None,
    ) -> None:
        self.index = index
        self.adversary = adversary
        self.n = n
        self.alphabet = alphabet
        self.max_depth = max_depth
        self.status = status
        self.certified_depth = certified_depth
        self.certificate = certificate
        self.elapsed_s = elapsed_s
        self.views_interned = views_interned
        self.shard = shard
        self.tags = tags or {}

    @property
    def solvable(self) -> bool | None:
        """Checker verdict (None when undecided)."""
        if self.status == "undecided":
            return None
        return self.status == "solvable"

    def to_dict(self) -> dict:
        return {key: getattr(self, key) for key in self.__slots__}

    @classmethod
    def from_dict(cls, data: dict) -> "SweepRecord":
        # Required fields raise KeyError at the bad line rather than
        # yielding half-None records that misread downstream.
        return cls(
            **{key: data[key] for key in cls.__slots__ if key != "tags"},
            tags=data.get("tags"),
        )

    def __repr__(self) -> str:
        return (
            f"SweepRecord(#{self.index}, {self.adversary}, "
            f"{self.status.upper()}, certificate={self.certificate!r})"
        )


def jobs_for(
    adversaries: Iterable[MessageAdversary],
    max_depth: int = 6,
    tags: dict | None = None,
) -> list[SweepJob]:
    """Wrap a family of adversaries as indexed sweep jobs."""
    return [
        SweepJob(index, adversary, max_depth, dict(tags) if tags else None)
        for index, adversary in enumerate(adversaries)
    ]


def _run_jobs(shard: int, jobs: Sequence[SweepJob]) -> list[SweepRecord]:
    """Run one shard's jobs inline, sharing interners per process count."""
    from repro.consensus.solvability import check_consensus

    interners: dict[int, ViewInterner] = {}
    records = []
    for job in jobs:
        adversary = job.adversary
        interner = interners.get(adversary.n)
        if interner is None:
            interner = interners[adversary.n] = ViewInterner(adversary.n)
        before = len(interner)
        start = time.perf_counter()
        result = check_consensus(
            adversary, max_depth=job.max_depth, interner=interner
        )
        elapsed = time.perf_counter() - start
        records.append(
            SweepRecord(
                index=job.index,
                adversary=adversary.name,
                n=adversary.n,
                alphabet=len(adversary.alphabet()),
                max_depth=job.max_depth,
                status=result.status.value,
                certified_depth=result.certified_depth,
                certificate=certificate_summary(result),
                elapsed_s=elapsed,
                views_interned=len(interner) - before,
                shard=shard,
                tags=job.tags,
            )
        )
    return records


def _run_shard(payload: tuple[int, list[SweepJob]]) -> list[SweepRecord]:
    """Top-level worker entry point (must be picklable for spawn contexts)."""
    shard, jobs = payload
    return _run_jobs(shard, jobs)


def _pool_context():
    """Prefer fork on Linux (cheap, shares the graph intern table).

    Elsewhere use the platform default: fork is unsafe with threads on
    macOS (CPython itself switched that default to spawn), and spawn
    requires only that jobs and records pickle, which they do.
    """
    if sys.platform == "linux":
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def run_sweep(
    jobs: Sequence[SweepJob],
    workers: int = 1,
    jsonl_path: str | Path | None = None,
) -> list[SweepRecord]:
    """Classify every job, fanning shards across ``workers`` processes.

    Shard ``k`` runs jobs ``k, k + workers, k + 2*workers, ...`` (strided,
    deterministic); ``workers <= 1`` runs everything inline in this process.
    The returned records are sorted by job index regardless of completion
    order, and — when ``jsonl_path`` is given — are then written to disk in
    that order, one JSON object per line (:func:`read_jsonl` round-trips
    the file; the write happens after all shards complete, so an
    interrupted sweep leaves no partial file).
    """
    jobs = list(jobs)
    if len({job.index for job in jobs}) != len(jobs):
        raise AnalysisError("sweep jobs must carry distinct indices")
    if workers <= 1 or len(jobs) <= 1:
        records = _run_jobs(0, jobs)
    else:
        workers = min(workers, len(jobs))
        shards = [(k, jobs[k::workers]) for k in range(workers)]
        with _pool_context().Pool(workers) as pool:
            shard_records = pool.map(_run_shard, shards)
        records = [record for shard in shard_records for record in shard]
    records.sort(key=lambda record: record.index)
    if jsonl_path is not None:
        write_jsonl(records, jsonl_path)
    return records


def write_jsonl(records: Iterable[SweepRecord], path: str | Path) -> None:
    """Write records as one JSON object per line (parents created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")


def read_jsonl(path: str | Path) -> Iterator[SweepRecord]:
    """Yield the records of a sweep JSONL file."""
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield SweepRecord.from_dict(json.loads(line))
