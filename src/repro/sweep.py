"""Sweep convenience layer over the pluggable backends (compat surface).

The census instruments of Section 6.2 — and the oblivious-adversary studies
they follow (Winkler et al., arXiv:2202.12397) — classify *families* of
adversaries, not single instances.  Each classification is an independent
:func:`~repro.consensus.solvability.check_consensus` call, so a family sweep
is embarrassingly parallel.  Since the API redesign the machinery lives in
three focused modules, all re-exported here:

* :mod:`repro.backends` — the :class:`~repro.backends.SweepBackend`
  protocol with serial / process-pool / manifest-subprocess
  implementations, and :class:`~repro.backends.SweepJob`;
* :mod:`repro.records` — the unified :class:`~repro.records.RunRecord`
  schema and its versioned JSONL format;
* :mod:`repro.specs` — serializable :class:`~repro.specs.AdversarySpec`
  job descriptions.

:func:`run_sweep` is the stable entry point: pick a backend explicitly, or
let ``workers`` choose between the serial reference path and the strided
process pool exactly as before the redesign.  ``SweepRecord`` remains as a
deprecation alias of :class:`~repro.records.RunRecord`, and
:func:`read_jsonl` still loads the headerless JSONL files written by
earlier revisions.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.backends import (
    ManifestBackend,
    ProcessBackend,
    SerialBackend,
    SweepBackend,
    SweepJob,
    jobs_for,
    load_manifest,
    retry_jobs,
    run_manifest,
    write_manifest,
)
from repro.consensus.solvability import CheckOptions
from repro.records import (
    RunRecord,
    certificate_summary,
    read_jsonl,
    write_jsonl,
)
from repro.store.backend import CachedBackend
from repro.store.cache import ResultStore

__all__ = [
    "SweepJob",
    "SweepRecord",
    "RunRecord",
    "SweepBackend",
    "SerialBackend",
    "ProcessBackend",
    "ManifestBackend",
    "run_sweep",
    "jobs_for",
    "retry_jobs",
    "certificate_summary",
    "write_jsonl",
    "read_jsonl",
    "write_manifest",
    "load_manifest",
    "run_manifest",
]

#: Deprecation alias: the sweep engine's record type is now the unified
#: :class:`~repro.records.RunRecord` schema shared with the census.
SweepRecord = RunRecord


def run_sweep(
    jobs: Sequence[SweepJob],
    workers: int = 1,
    jsonl_path: str | Path | None = None,
    backend: SweepBackend | None = None,
    options: CheckOptions | None = None,
    store: "ResultStore | str | Path | None" = None,
) -> list[RunRecord]:
    """Classify every job on a sweep backend.

    With an explicit ``backend`` the ``workers`` count is ignored;
    otherwise ``workers <= 1`` runs the inline
    :class:`~repro.backends.SerialBackend` (the fully deterministic
    reference path) and ``workers > 1`` the strided
    :class:`~repro.backends.ProcessBackend`.  A ``store`` (a
    :class:`~repro.store.cache.ResultStore` or a path to one) wraps
    whichever backend was chosen in a
    :class:`~repro.store.backend.CachedBackend`: jobs whose verdicts are
    already cached never reach the backend, and every computed cacheable
    verdict is written back.  The returned records are sorted by job
    index regardless of completion order, and — when ``jsonl_path`` is
    given — are then written to disk in that order via
    :func:`~repro.records.write_jsonl` (one JSON object per line after the
    schema header; the write happens after the backend completes, so an
    interrupted sweep leaves no partial file).
    """
    jobs = list(jobs)
    if backend is None:
        if workers <= 1 or len(jobs) <= 1:
            backend = SerialBackend()
        else:
            backend = ProcessBackend(min(workers, len(jobs)))
    if store is not None:
        backend = CachedBackend(store, backend)
    records = backend.run(jobs, options)
    if jsonl_path is not None:
        write_jsonl(records, jsonl_path)
    return records
