"""Hand-derived two-process consensus algorithms from the literature.

The universal algorithm of Theorem 5.5 is extracted mechanically from the
component structure; for the classic two-process adversaries the literature
gives direct, human-readable algorithms.  Implementing them side by side
lets the test suite confirm that the mechanical construction reproduces the
known algorithms *decision for decision*:

* :class:`AlternationConsensus` — for the solvable lossy link
  D = {←, →} ([8]'s universal algorithm specialized to two processes):
  after round 1, exactly one process has received the other's input;
  the rule **"decide the other's input if you heard it, else your own"**
  achieves agreement because the sender's value is what both see.
* :class:`ReceiverConsensus` — for D = {→, ↔} (and mirrored): process 1
  hears process 0 every round, so everyone decides ``x_0`` at round 1.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import SimulationError
from repro.simulation.algorithms import ConsensusAlgorithm

__all__ = ["AlternationConsensus", "ReceiverConsensus"]


class AlternationConsensus(ConsensusAlgorithm):
    """Consensus under D = {←, →}: decide what you heard, else your own.

    State: ``(round, own input, heard input or None, decision)``.
    Correct because in every round-1 graph of D exactly one process
    receives; both processes then know the round-1 sender's input — the
    receiver directly, the sender because it *is* the sender — and the
    rule makes both decide exactly that value.
    """

    name = "alternation-two-process"

    def initial_state(self, p: int, n: int, x_p):
        if n != 2:
            raise SimulationError("this algorithm is specific to n = 2")
        return (0, x_p, None, None)

    def message(self, p: int, state):
        _, own, _, _ = state
        return own

    def transition(self, p: int, state, received: Mapping[int, object]):
        rounds, own, heard, decided = state
        other = 1 - p
        if other in received:
            heard = received[other]
        rounds += 1
        if rounds == 1 and decided is None:
            decided = heard if heard is not None else own
        return (rounds, own, heard, decided)

    def decision(self, p: int, state):
        return state[3]


class ReceiverConsensus(ConsensusAlgorithm):
    """Consensus under D = {→, ↔} (``sender = 0``): decide ``x_sender``.

    The sender's edge is present in every graph of D, so its input reaches
    the other process in round 1; both decide it.
    """

    name = "receiver-two-process"

    def __init__(self, sender: int = 0) -> None:
        if sender not in (0, 1):
            raise SimulationError("sender must be process 0 or 1")
        self.sender = sender

    def initial_state(self, p: int, n: int, x_p):
        if n != 2:
            raise SimulationError("this algorithm is specific to n = 2")
        decided = x_p if p == self.sender else None
        return (x_p, decided)

    def message(self, p: int, state):
        return state[0]

    def transition(self, p: int, state, received: Mapping[int, object]):
        own, decided = state
        if decided is None and self.sender in received:
            decided = received[self.sender]
        return (own, decided)

    def decision(self, p: int, state):
        return state[1]
