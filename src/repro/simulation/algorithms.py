"""Consensus algorithms for the lock-step simulator.

The paper's system model (Section 2): deterministic processes advance in
communication-closed rounds with a send–receive–compute order; messages of
round ``t`` are delivered along the round's communication graph.  An
algorithm supplies the initial state, the (full-information or digested)
message to send, the state transition, and the decision predicate.

Provided algorithms:

* :class:`FullInformationAlgorithm` — the generic full-information protocol:
  the state is the interned view (Sections 3-4); subclasses add decisions.
* :class:`UniversalAlgorithm` — Theorem 5.5's universal algorithm, driven
  by a :class:`~repro.consensus.decision.DecisionTable`: decide as soon as
  the ε-ball around the sequences compatible with the view lies inside one
  decision set (the table's early map).
* :class:`BroadcastValueAlgorithm` — "decide ``x_p`` upon hearing ``p``"
  for a guaranteed broadcaster ``p`` (the non-compact certificate of
  Theorem 5.11/6.7).
* :class:`MinOfHeardAlgorithm` — a deliberately naive baseline ("after R
  rounds decide the minimum input heard") that violates agreement on
  solvable adversaries like {←, →}; the simulator exposes the violation,
  demonstrating why the universal construction is needed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping

from repro.consensus.decision import DecisionTable
from repro.core.views import ViewInterner
from repro.errors import SimulationError

__all__ = [
    "ConsensusAlgorithm",
    "FullInformationAlgorithm",
    "UniversalAlgorithm",
    "BroadcastValueAlgorithm",
    "MinOfHeardAlgorithm",
]


class ConsensusAlgorithm(ABC):
    """Deterministic per-process algorithm in the round model of Section 2."""

    name = "abstract"

    @abstractmethod
    def initial_state(self, p: int, n: int, x_p):
        """The initial local state of process ``p`` with input ``x_p``."""

    @abstractmethod
    def message(self, p: int, state):
        """The (broadcast) message ``p`` sends this round."""

    @abstractmethod
    def transition(self, p: int, state, received: Mapping[int, object]):
        """The new state after receiving ``received`` (sender -> message).

        ``received`` always contains ``p``'s own message (self-loops are
        implicit in the delivery semantics).
        """

    @abstractmethod
    def decision(self, p: int, state):
        """The decided value, or None while undecided.

        Decisions must be stable: once non-None, subsequent states must
        yield the same value (the runner enforces this).
        """


class FullInformationAlgorithm(ConsensusAlgorithm):
    """The full-information protocol: state = interned causal past.

    Every process relays everything it knows each round; the state after
    round ``t`` is the view ``V_p(PT^t)`` interned in the shared
    :class:`~repro.core.views.ViewInterner`.  This makes simulation states
    directly comparable with the checker's prefix-space views.
    """

    name = "full-information"

    def __init__(self, interner: ViewInterner) -> None:
        self.interner = interner

    def initial_state(self, p: int, n: int, x_p) -> int:
        if n != self.interner.n:
            raise SimulationError("interner size does not match the run")
        return self.interner.leaf(p, x_p)

    def message(self, p: int, state: int) -> int:
        return state

    def transition(self, p: int, state: int, received: Mapping[int, int]) -> int:
        return self.interner.node(p, received.values())

    def decision(self, p: int, state: int):
        return None


class UniversalAlgorithm(FullInformationAlgorithm):
    """Theorem 5.5's universal consensus algorithm as an executable object.

    Decisions are looked up in the certified
    :class:`~repro.consensus.decision.DecisionTable`: a view decides as
    soon as every admissible continuation compatible with it carries the
    same value.  All processes decide at latest in round
    ``table.depth``.
    """

    name = "universal"

    def __init__(self, table: DecisionTable) -> None:
        super().__init__(table.space.interner)
        self.table = table

    def decision(self, p: int, state: int):
        return self.table.decision_for_view(state)


class BroadcastValueAlgorithm(FullInformationAlgorithm):
    """Decide the broadcaster's input upon hearing it (Theorem 5.11/6.7).

    Correct whenever ``broadcaster`` is a guaranteed broadcaster of the
    adversary: every process eventually receives ``(p, 0, x_p)`` in its
    causal past and decides ``x_p``; agreement and validity are immediate.
    Decision times are unbounded — the hallmark of the non-compact setting
    (Section 6.3).
    """

    name = "broadcast-value"

    def __init__(self, interner: ViewInterner, broadcaster: int) -> None:
        super().__init__(interner)
        if not 0 <= broadcaster < interner.n:
            raise SimulationError("broadcaster out of range")
        self.broadcaster = broadcaster

    def decision(self, p: int, state: int):
        if self.interner.knows_input_of(state, self.broadcaster):
            return self.interner.input_of(state, self.broadcaster)
        return None


class MinOfHeardAlgorithm(ConsensusAlgorithm):
    """Naive baseline: flood inputs, decide the minimum heard at round R.

    This is *not* a correct consensus algorithm for general message
    adversaries — under {←, →} the two processes can hear different input
    sets forever.  It exists so the simulator (and the examples) can
    exhibit a concrete agreement violation that the universal algorithm
    avoids.
    """

    name = "min-of-heard"

    def __init__(self, decide_round: int) -> None:
        if decide_round < 0:
            raise SimulationError("decide_round must be nonnegative")
        self.decide_round = decide_round

    def initial_state(self, p: int, n: int, x_p):
        decided = min((x_p,)) if self.decide_round == 0 else None
        return (0, frozenset({(p, x_p)}), decided)

    def message(self, p: int, state):
        _, known, _ = state
        return known

    def transition(self, p: int, state, received: Mapping[int, frozenset]):
        rounds, known, decided = state
        merged = set(known)
        for content in received.values():
            merged |= content
        rounds += 1
        if decided is None and rounds >= self.decide_round:
            # Freeze the decision: the output register is write-once, so the
            # (incorrect) choice must not drift when smaller values arrive
            # later — the resulting disagreements are the point.
            decided = min(value for _, value in merged)
        return (rounds, frozenset(merged), decided)

    def decision(self, p: int, state):
        return state[2]
