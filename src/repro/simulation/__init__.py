"""Lock-step simulation of consensus algorithms under message adversaries.

Implements the round structure of Section 2 (send–receive–compute,
delivery along the round's communication graph, implicit self-loops) and
the algorithms derived from the paper's characterizations.
"""

from repro.simulation.algorithms import (
    BroadcastValueAlgorithm,
    ConsensusAlgorithm,
    FullInformationAlgorithm,
    MinOfHeardAlgorithm,
    UniversalAlgorithm,
)
from repro.simulation.drivers import (
    AdversaryDriver,
    DelayBroadcastDriver,
    RandomDriver,
)
from repro.simulation.runner import (
    ProcessOutcome,
    RunResult,
    RunStatistics,
    run_many,
    run_word,
)
from repro.simulation.traces import (
    StateTrace,
    d_min_trace,
    d_view_trace,
    trace_divergence_time,
    trace_of,
)
from repro.simulation.twoprocess import AlternationConsensus, ReceiverConsensus

__all__ = [
    "AdversaryDriver",
    "AlternationConsensus",
    "BroadcastValueAlgorithm",
    "ConsensusAlgorithm",
    "DelayBroadcastDriver",
    "FullInformationAlgorithm",
    "MinOfHeardAlgorithm",
    "ProcessOutcome",
    "RandomDriver",
    "ReceiverConsensus",
    "RunResult",
    "RunStatistics",
    "StateTrace",
    "UniversalAlgorithm",
    "d_min_trace",
    "d_view_trace",
    "run_many",
    "run_word",
    "trace_divergence_time",
    "trace_of",
]
