"""The synchronous lock-step round simulator (Section 2 semantics).

Rounds advance in send–receive–compute order; round-``t`` messages are
delivered along the round's communication graph (self-loops implicit).  The
runner executes a :class:`~repro.simulation.algorithms.ConsensusAlgorithm`
against an explicit graph word and records, per process, the decision value
and round; it enforces the consensus contract as it goes:

* decisions are irrevocable (a changed decision raises);
* agreement and (weak or strong) validity violations are recorded in the
  result — deliberately *recorded*, not raised, so that incorrect baseline
  algorithms can be studied;
* termination is judged against the word length.

:func:`run_word` is the single-execution entry point;
:func:`run_many` samples admissible words from an adversary and aggregates
statistics (used by the examples and benchmarks).
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.adversaries.base import MessageAdversary
from repro.core.graphword import GraphWord
from repro.errors import SimulationError
from repro.simulation.algorithms import ConsensusAlgorithm

__all__ = ["ProcessOutcome", "RunResult", "run_word", "run_many", "RunStatistics"]


class ProcessOutcome:
    """Decision value and round of one process (value None = undecided)."""

    __slots__ = ("process", "value", "round")

    def __init__(self, process: int, value, decided_round: int | None) -> None:
        self.process = process
        self.value = value
        self.round = decided_round

    @property
    def decided(self) -> bool:
        return self.value is not None

    def __repr__(self) -> str:
        return f"ProcessOutcome(p={self.process}, value={self.value!r}, round={self.round})"


class RunResult:
    """Outcome of one simulated execution."""

    __slots__ = ("inputs", "word", "outcomes", "violations", "states")

    def __init__(self, inputs, word, outcomes, violations, states) -> None:
        self.inputs = inputs
        self.word = word
        self.outcomes = outcomes
        self.violations = violations
        self.states = states

    @property
    def all_decided(self) -> bool:
        """Whether every process decided within the word."""
        return all(outcome.decided for outcome in self.outcomes)

    @property
    def agreement_holds(self) -> bool:
        """Whether all decided values coincide."""
        values = {o.value for o in self.outcomes if o.decided}
        return len(values) <= 1

    @property
    def decision_value(self):
        """The common decided value (None when nobody decided)."""
        values = {o.value for o in self.outcomes if o.decided}
        if len(values) > 1:
            raise SimulationError(f"no common decision: {values}")
        return next(iter(values)) if values else None

    @property
    def max_decision_round(self) -> int | None:
        """Latest decision round (None if someone is undecided)."""
        if not self.all_decided:
            return None
        return max(o.round for o in self.outcomes)

    @property
    def correct(self) -> bool:
        """Terminated, agreed, and no recorded violation."""
        return self.all_decided and not self.violations

    def __repr__(self) -> str:
        return (
            f"RunResult(inputs={self.inputs!r}, rounds={len(self.word)}, "
            f"decided={self.all_decided}, violations={self.violations})"
        )


def run_word(
    algorithm: ConsensusAlgorithm,
    inputs: Sequence,
    word: GraphWord,
    record_states: bool = False,
    strong_validity: bool = False,
) -> RunResult:
    """Execute one round-by-round run of ``algorithm`` on ``word``.

    The consensus contract is checked against the run: irrevocability
    violations raise :class:`~repro.errors.SimulationError` (they indicate
    a broken algorithm object); agreement/validity violations are recorded
    in ``result.violations``.
    """
    n = word.n
    inputs = tuple(inputs)
    if len(inputs) != n:
        raise SimulationError(f"inputs {inputs!r} do not match n={n}")

    states = [algorithm.initial_state(p, n, inputs[p]) for p in range(n)]
    history = [tuple(states)] if record_states else None
    decisions: list = [None] * n
    decision_rounds: list = [None] * n

    def note_decisions(round_index: int) -> None:
        # The output register y_p is write-once: the first non-None value
        # sticks.  A *different* non-None value later is an irrevocability
        # violation; None later is fine (e.g. the universal algorithm's
        # lookup is only defined up to its certification depth).
        for p in range(n):
            value = algorithm.decision(p, states[p])
            if decisions[p] is None:
                if value is not None:
                    decisions[p] = value
                    decision_rounds[p] = round_index
            elif value is not None and value != decisions[p]:
                raise SimulationError(
                    f"irrevocability violation: process {p} changed "
                    f"{decisions[p]!r} -> {value!r} in round {round_index}"
                )

    note_decisions(0)
    for t in range(1, len(word) + 1):
        graph = word.round_graph(t)
        messages = [algorithm.message(p, states[p]) for p in range(n)]
        states = [
            algorithm.transition(
                p,
                states[p],
                {q: messages[q] for q in graph.in_neighbors(p)},
            )
            for p in range(n)
        ]
        if record_states:
            history.append(tuple(states))
        note_decisions(t)

    outcomes = [
        ProcessOutcome(p, decisions[p], decision_rounds[p]) for p in range(n)
    ]
    violations = []
    decided_values = {v for v in decisions if v is not None}
    if len(decided_values) > 1:
        violations.append(f"agreement: {decided_values}")
    unanimous = inputs[0] if all(x == inputs[0] for x in inputs) else None
    if unanimous is not None and decided_values and decided_values != {unanimous}:
        violations.append(f"validity: inputs all {unanimous!r}, decided {decided_values}")
    if strong_validity:
        foreign = decided_values - set(inputs)
        if foreign:
            violations.append(f"strong-validity: decided {foreign} not among inputs")
    return RunResult(inputs, word, outcomes, violations, history)


class RunStatistics:
    """Aggregate over many sampled runs."""

    __slots__ = ("runs", "decided", "agreement_failures", "validity_failures", "rounds")

    def __init__(self) -> None:
        self.runs = 0
        self.decided = 0
        self.agreement_failures = 0
        self.validity_failures = 0
        self.rounds: list[int] = []

    def record(self, result: RunResult) -> None:
        self.runs += 1
        if result.all_decided:
            self.decided += 1
            self.rounds.append(result.max_decision_round)
        for violation in result.violations:
            if violation.startswith("agreement"):
                self.agreement_failures += 1
            elif violation.startswith("validity"):
                self.validity_failures += 1

    @property
    def max_round(self) -> int | None:
        return max(self.rounds) if self.rounds else None

    @property
    def mean_round(self) -> float | None:
        return sum(self.rounds) / len(self.rounds) if self.rounds else None

    def __repr__(self) -> str:
        return (
            f"RunStatistics(runs={self.runs}, decided={self.decided}, "
            f"agreement_failures={self.agreement_failures}, "
            f"max_round={self.max_round})"
        )


def run_many(
    algorithm: ConsensusAlgorithm,
    adversary: MessageAdversary,
    rng: random.Random,
    trials: int = 100,
    rounds: int = 8,
    input_vectors: Sequence | None = None,
) -> RunStatistics:
    """Sample admissible words and inputs; aggregate run statistics."""
    from repro.core.inputs import all_assignments

    vectors = (
        tuple(tuple(v) for v in input_vectors)
        if input_vectors is not None
        else all_assignments(adversary.n)
    )
    stats = RunStatistics()
    for _ in range(trials):
        inputs = rng.choice(vectors)
        word = adversary.sample_word(rng, rounds)
        stats.record(run_word(algorithm, inputs, word))
    return stats
