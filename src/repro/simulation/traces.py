"""State traces and distances on algorithm executions.

The paper's topologies are defined on *configuration sequences* ``C^ω``
(executions of a fixed algorithm), while most of this library works on the
process-time-graph side ``PT^ω`` — justified by the continuity of the
transition function ``τ : PT^ω → C^ω`` (Lemmas 4.5 and 4.9).  This module
supplies the configuration side so that continuity becomes checkable:

* :class:`StateTrace` — the per-round tuple of local states of a run;
* :func:`trace_divergence_time` / :func:`d_view_trace` /
  :func:`d_min_trace` — the distances of Section 4 evaluated on traces
  (two states are "equal for p" when they compare equal);
* :func:`trace_of` — run an algorithm on (inputs, word) and record states.

Continuity of ``τ`` with modulus 1 then reads: the state divergence time of
two runs is at least their view divergence time — checked for arbitrary
deterministic algorithms in :mod:`repro.theorems`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.graphword import GraphWord
from repro.errors import SimulationError
from repro.simulation.algorithms import ConsensusAlgorithm
from repro.simulation.runner import run_word

__all__ = [
    "StateTrace",
    "trace_of",
    "trace_divergence_time",
    "d_view_trace",
    "d_min_trace",
]


class StateTrace:
    """The configuration sequence (prefix) of one run."""

    __slots__ = ("inputs", "word", "states")

    def __init__(self, inputs: tuple, word: GraphWord, states: Sequence[tuple]) -> None:
        self.inputs = inputs
        self.word = word
        self.states = tuple(states)

    @property
    def n(self) -> int:
        """Number of processes."""
        return self.word.n

    @property
    def depth(self) -> int:
        """Number of completed rounds."""
        return len(self.states) - 1

    def state(self, p: int, t: int):
        """The local state of ``p`` at the end of round ``t``."""
        return self.states[t][p]

    def __repr__(self) -> str:
        return f"StateTrace(inputs={self.inputs!r}, depth={self.depth})"


def trace_of(
    algorithm: ConsensusAlgorithm, inputs: Sequence, word: GraphWord
) -> StateTrace:
    """Execute ``algorithm`` and return its configuration-sequence prefix."""
    result = run_word(algorithm, inputs, word, record_states=True)
    return StateTrace(tuple(inputs), word, result.states)


def trace_divergence_time(
    a: StateTrace, b: StateTrace, processes: Iterable[int] | None = None
) -> int | None:
    """First round where some process in ``P`` has different local states."""
    if a.n != b.n:
        raise SimulationError("traces have different n")
    subset = tuple(range(a.n)) if processes is None else tuple(processes)
    if not subset:
        raise SimulationError("P must be nonempty")
    horizon = min(a.depth, b.depth)
    for t in range(horizon + 1):
        if any(a.state(p, t) != b.state(p, t) for p in subset):
            return t
    return None


def d_view_trace(
    a: StateTrace, b: StateTrace, processes: Iterable[int] | None = None
) -> float:
    """The pseudo-metric ``d_P`` on configuration sequences."""
    from repro.core.distances import distance_value

    return distance_value(trace_divergence_time(a, b, processes))


def d_min_trace(a: StateTrace, b: StateTrace) -> float:
    """The minimum pseudo-semi-metric on configuration sequences."""
    return min(d_view_trace(a, b, (p,)) for p in range(a.n))
