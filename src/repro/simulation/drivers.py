"""Adaptive adversary drivers.

The paper notes that a message adversary "need not be oblivious w.r.t. the
algorithm ... it may know A and choose its graph sequences accordingly".
These drivers generate admissible words *adaptively*, inspecting the run so
far to pick the next graph:

* :class:`DelayBroadcastDriver` — greedily picks the admissible graph that
  adds the fewest new heard-of bits, i.e. tries to keep every process's
  causal past small.  Against broadcast-based algorithms this produces the
  worst-case decision rounds (the adversarial half of the decision-time
  benchmarks).
* :class:`RandomDriver` — uniform admissible choices (a baseline).

Drivers respect liveness pruning: they only take transitions that keep an
accepting continuation reachable, so every finite word they produce is an
admissible prefix.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.adversaries.base import MessageAdversary
from repro.core.graphword import GraphWord, heard_of_step
from repro.errors import SimulationError

__all__ = ["AdversaryDriver", "RandomDriver", "DelayBroadcastDriver"]


class AdversaryDriver:
    """Base class: stateful generation of admissible graph words."""

    def __init__(self, adversary: MessageAdversary) -> None:
        self.adversary = adversary
        self.reset()

    def reset(self) -> None:
        """Start a fresh word."""
        self._states = frozenset(
            self.adversary.initial_states() & self.adversary.live_states()
        )
        if not self._states:
            raise SimulationError(f"{self.adversary.name} admits no sequences")
        self._word = []
        self._heard = tuple(1 << p for p in range(self.adversary.n))

    def _choose(self, options):
        raise NotImplementedError

    def step(self):
        """Pick and return the next graph."""
        options = self.adversary.admissible_extensions(self._states)
        if not options:
            raise SimulationError("no admissible extension")
        graph, states = self._choose(options)
        self._states = states
        self._word.append(graph)
        self._heard = heard_of_step(graph, self._heard)
        return graph

    def word(self, rounds: int) -> GraphWord:
        """Generate ``rounds`` more rounds and return the full word so far."""
        for _ in range(rounds):
            self.step()
        return GraphWord(self._word, n=self.adversary.n)

    @property
    def heard_masks(self) -> tuple[int, ...]:
        """Current heard-of masks of the generated prefix."""
        return self._heard


class RandomDriver(AdversaryDriver):
    """Uniformly random admissible choices."""

    def __init__(self, adversary: MessageAdversary, rng: random.Random) -> None:
        self.rng = rng
        super().__init__(adversary)

    def _choose(self, options):
        return self.rng.choice(options)


class DelayBroadcastDriver(AdversaryDriver):
    """Greedy information-minimizing adversary.

    Chooses the admissible graph whose heard-of update adds the fewest new
    bits; when ``avoid_broadcast_of`` names specific processes (e.g. the
    broadcaster a certified algorithm relies on), suppressing *their*
    broadcasts takes priority.  Against {←, →} it yields one-directional
    words; against eventually stabilizing adversaries it stalls as long as
    the liveness pruning allows — the paper's remark that the adversary may
    know the algorithm (Section 2), made executable.
    """

    def __init__(
        self, adversary, avoid_broadcast_of: Iterable[int] | None = None
    ) -> None:
        self.avoid = frozenset(
            () if avoid_broadcast_of is None else avoid_broadcast_of
        )
        super().__init__(adversary)

    def _choose(self, options):
        def cost(option) -> tuple:
            graph, _ = option
            nxt = heard_of_step(graph, self._heard)
            protected_spread = sum(
                (nxt[q] >> p & 1)
                for p in self.avoid
                for q in range(self.adversary.n)
            )
            gained = sum(
                (nxt[q] & ~self._heard[q]).bit_count()
                for q in range(self.adversary.n)
            )
            return (protected_spread, gained, graph.sort_key())

        return min(options, key=cost)
