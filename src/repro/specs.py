"""Serializable adversary specifications: the family registry.

A sweep that fans across processes — or machines — must ship *descriptions*
of adversaries, not pickled live objects.  An :class:`AdversarySpec` is that
description: a registered family name, a dict of JSON-able parameters, and
an optional sampling seed.  ``spec.build()`` reconstructs the adversary
anywhere the library is importable; ``to_dict``/``from_dict`` round-trip
through JSON, which is what sweep manifests and
:class:`~repro.backends.ManifestBackend` shards are made of.

Communication graphs are encoded by their packed integer edge keys
(:attr:`repro.core.digraph.Digraph.key`), the graphs' canonical identity.

Registered families (see :func:`families`):

``oblivious``
    Explicit graph set ``D`` (Section 6.2): ``{"n", "graphs", "name"?}``.
``two-process``
    Member ``index`` of the canonical 15-element two-process enumeration.
``santoro-widmayer``
    Bounded message loss [21]: ``{"n", "losses"}``.
``heard-of``
    HO communication predicates [7]: ``{"n", "predicate", "k"?}`` with
    predicate in ``kernel`` / ``no-split`` / ``rooted`` / ``min-degree``.
``named``
    The named literature adversaries of the CLI: ``{"name"}``.
``eventually-forever``
    Non-compact ``B^* E^ω`` stabilization (Section 6.3):
    ``{"n", "base", "eventual", "name"?}``.
``stabilizing``
    VSSC-style window stabilization [23]:
    ``{"n", "graphs", "window", "require_rooted"?, "name"?}``.
``random-rooted`` / ``random-oblivious``
    Seeded sampling families: the spec's ``seed`` feeds a private
    ``random.Random(seed)``, so the sampled adversary is a pure function
    of the spec — rebuilding on another worker yields the same graphs.

New families are added with :func:`register_family`.
"""

from __future__ import annotations

import json
import random
from typing import Any, Callable, Iterable, Mapping

from repro.adversaries.generators import (
    random_oblivious_adversary,
    santoro_widmayer_family,
    two_process_oblivious_family,
)
from repro.adversaries.heardof import (
    min_degree_adversary,
    no_split_adversary,
    nonempty_kernel_adversary,
    rooted_adversary,
)
from repro.adversaries.lossylink import (
    directed_only,
    eventually_one_direction,
    lossy_link_full,
    lossy_link_no_hub,
    lossy_link_with_silence,
    one_directional_and_both,
)
from repro.adversaries.oblivious import ObliviousAdversary
from repro.adversaries.stabilizing import (
    EventuallyForeverAdversary,
    StabilizingAdversary,
)
from repro.adversaries.base import MessageAdversary
from repro.adversaries.generators import out_star_set
from repro.core.digraph import Digraph, arrow
from repro.errors import AdversaryError

__all__ = [
    "AdversarySpec",
    "register_family",
    "families",
    "build_adversary",
    "NAMED_ADVERSARIES",
    "random_rooted_specs",
]

#: Named literature adversaries (previously a private table of the CLI).
NAMED_ADVERSARIES: dict[str, Callable[[], MessageAdversary]] = {
    "lossy-full": lossy_link_full,
    "no-hub": lossy_link_no_hub,
    "silence": lossy_link_with_silence,
    "to-and-both": lambda: one_directional_and_both("->"),
    "only-to": lambda: directed_only("->"),
    "eventually-to": lambda: eventually_one_direction("->"),
    "eventually-to-full-base": lambda: EventuallyForeverAdversary(
        2, [arrow("<-"), arrow("<->"), arrow("->")], [arrow("->")]
    ),
    "sw-n3-1": lambda: santoro_widmayer_family(3, 1),
    "sw-n3-2": lambda: santoro_widmayer_family(3, 2),
    "stars-n3": lambda: ObliviousAdversary(3, out_star_set(3)),
    "stabilizing-w2": lambda: StabilizingAdversary(
        2, [arrow("<-"), arrow("->")], window=2
    ),
}


class _Family:
    """One registered adversary family."""

    __slots__ = ("name", "builder", "requires_seed")

    def __init__(
        self,
        name: str,
        builder: Callable[..., MessageAdversary],
        requires_seed: bool,
    ) -> None:
        self.name = name
        self.builder = builder
        self.requires_seed = requires_seed


_REGISTRY: dict[str, _Family] = {}


def register_family(
    name: str,
    builder: Callable[..., MessageAdversary],
    requires_seed: bool = False,
) -> None:
    """Register an adversary family under ``name``.

    ``builder(params, rng)`` receives the spec's params dict and — for
    seeded families — a ``random.Random`` initialized from the spec's seed
    (``None`` otherwise).  Builders must be pure: the same params and seed
    must produce the same adversary on every worker.
    """
    if name in _REGISTRY:
        raise AdversaryError(f"adversary family {name!r} already registered")
    _REGISTRY[name] = _Family(name, builder, requires_seed)


def families() -> tuple[str, ...]:
    """The registered family names, sorted."""
    return tuple(sorted(_REGISTRY))


def _graphs_from_keys(n: int, keys: Iterable[int]) -> list[Digraph]:
    return [Digraph.from_key(n, key) for key in keys]


def _keys_of(graphs: Iterable[Digraph]) -> list[int]:
    return sorted(g.key for g in graphs)


class AdversarySpec:
    """A serializable description of one message adversary.

    Parameters
    ----------
    family:
        A name registered via :func:`register_family`.
    params:
        JSON-able parameters of the family (validated eagerly: anything
        ``json.dumps`` rejects is rejected here).
    seed:
        Sampling seed for randomized families; those families require it,
        deterministic families ignore it.

    Examples
    --------
    >>> spec = AdversarySpec("santoro-widmayer", {"n": 3, "losses": 1})
    >>> spec.build().name
    'SantoroWidmayer(n=3, losses=1)'
    >>> AdversarySpec.from_dict(spec.to_dict()) == spec
    True
    """

    __slots__ = ("family", "params", "seed", "_canonical")

    def __init__(
        self,
        family: str,
        params: Mapping[str, Any] | None = None,
        seed: int | None = None,
    ) -> None:
        if family not in _REGISTRY:
            raise AdversaryError(
                f"unknown adversary family {family!r}; registered: "
                f"{', '.join(families())}"
            )
        if seed is not None and not isinstance(seed, int):
            raise AdversaryError("spec seed must be an int (or None)")
        if _REGISTRY[family].requires_seed and seed is None:
            raise AdversaryError(f"family {family!r} requires a seed")
        self.family = family
        self.params = {} if params is None else dict(params)
        self.seed = seed
        try:
            self._canonical = json.dumps(
                {"family": family, "params": self.params, "seed": seed},
                sort_keys=True,
            )
        except (TypeError, ValueError) as exc:
            raise AdversaryError(
                f"spec params for {family!r} are not JSON-serializable: {exc}"
            ) from None

    def build(self) -> MessageAdversary:
        """Reconstruct the adversary this spec describes."""
        entry = _REGISTRY[self.family]
        rng = random.Random(self.seed) if entry.requires_seed else None
        return entry.builder(self.params, rng)

    def to_dict(self) -> dict[str, Any]:
        return {"family": self.family, "params": dict(self.params), "seed": self.seed}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AdversarySpec":
        return cls(data["family"], data.get("params"), data.get("seed"))

    @classmethod
    def from_adversary(cls, adversary: MessageAdversary) -> "AdversarySpec":
        """Derive a spec from a live adversary, where a faithful one exists.

        Oblivious, eventually-forever, and stabilizing adversaries are
        fully described by their graph sets (plus window), so they
        round-trip exactly — including the name.  Other adversary types
        (explicit safety/Büchi tables, combinators) have no canonical
        JSON form and raise; build them from a registered family instead.
        """
        if type(adversary) is ObliviousAdversary:
            return cls(
                "oblivious",
                {
                    "n": adversary.n,
                    "graphs": _keys_of(adversary.graphs),
                    "name": adversary.name,
                },
            )
        if type(adversary) is EventuallyForeverAdversary:
            return cls(
                "eventually-forever",
                {
                    "n": adversary.n,
                    "base": _keys_of(adversary.base),
                    "eventual": _keys_of(adversary.eventual),
                    "name": adversary.name,
                },
            )
        if type(adversary) is StabilizingAdversary:
            return cls(
                "stabilizing",
                {
                    "n": adversary.n,
                    "graphs": _keys_of(adversary.graphs),
                    "window": adversary.window,
                    "require_rooted": all(g.is_rooted for g in adversary.graphs),
                    "name": adversary.name,
                },
            )
        raise AdversaryError(
            f"cannot derive a serializable spec from {type(adversary).__name__}"
            f" {adversary.name!r}; construct it from a registered family"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AdversarySpec):
            return NotImplemented
        return self._canonical == other._canonical

    def __hash__(self) -> int:
        return hash(self._canonical)

    def __repr__(self) -> str:
        seed = f", seed={self.seed}" if self.seed is not None else ""
        return f"AdversarySpec({self.family!r}, {self.params!r}{seed})"


def build_adversary(data: Mapping[str, Any] | AdversarySpec) -> MessageAdversary:
    """Build an adversary from a spec or its dict form (manifest helper)."""
    spec = data if isinstance(data, AdversarySpec) else AdversarySpec.from_dict(data)
    return spec.build()


# --------------------------------------------------------------------- #
# Built-in families
# --------------------------------------------------------------------- #


def _build_oblivious(params: Mapping[str, Any], rng: random.Random | None) -> MessageAdversary:
    n = params["n"]
    return ObliviousAdversary(
        n, _graphs_from_keys(n, params["graphs"]), name=params.get("name")
    )


def _build_two_process(params: Mapping[str, Any], rng: random.Random | None) -> MessageAdversary:
    family = two_process_oblivious_family()
    index = params["index"]
    if not 0 <= index < len(family):
        raise AdversaryError(
            f"two-process index {index} out of range 0..{len(family) - 1}"
        )
    return family[index]


def _build_santoro_widmayer(params: Mapping[str, Any], rng: random.Random | None) -> MessageAdversary:
    return santoro_widmayer_family(params["n"], params["losses"])


_HEARD_OF = {
    "kernel": nonempty_kernel_adversary,
    "no-split": no_split_adversary,
    "rooted": rooted_adversary,
}


def _build_heard_of(params: Mapping[str, Any], rng: random.Random | None) -> MessageAdversary:
    predicate = params["predicate"]
    if predicate == "min-degree":
        return min_degree_adversary(params["n"], params["k"])
    try:
        return _HEARD_OF[predicate](params["n"])
    except KeyError:
        raise AdversaryError(
            f"unknown heard-of predicate {predicate!r}; choose from "
            f"{sorted(_HEARD_OF)} or 'min-degree'"
        ) from None


def _build_named(params: Mapping[str, Any], rng: random.Random | None) -> MessageAdversary:
    name = params["name"]
    try:
        return NAMED_ADVERSARIES[name]()
    except KeyError:
        raise AdversaryError(
            f"unknown named adversary {name!r}; choose from "
            f"{sorted(NAMED_ADVERSARIES)}"
        ) from None


def _build_eventually_forever(params: Mapping[str, Any], rng: random.Random | None) -> MessageAdversary:
    n = params["n"]
    return EventuallyForeverAdversary(
        n,
        _graphs_from_keys(n, params["base"]),
        _graphs_from_keys(n, params["eventual"]),
        name=params.get("name"),
    )


def _build_stabilizing(params: Mapping[str, Any], rng: random.Random | None) -> MessageAdversary:
    n = params["n"]
    return StabilizingAdversary(
        n,
        _graphs_from_keys(n, params["graphs"]),
        window=params["window"],
        require_rooted=params.get("require_rooted", True),
        name=params.get("name"),
    )


def _build_random_rooted(params: Mapping[str, Any], rng: random.Random) -> MessageAdversary:
    return random_oblivious_adversary(
        rng,
        params["n"],
        size=params["size"],
        rooted_only=True,
        p=params.get("p", 0.4),
    )


def _build_random_oblivious(params: Mapping[str, Any], rng: random.Random) -> MessageAdversary:
    return random_oblivious_adversary(
        rng,
        params["n"],
        size=params["size"],
        rooted_only=params.get("rooted_only", False),
        p=params.get("p", 0.4),
    )


register_family("oblivious", _build_oblivious)
register_family("two-process", _build_two_process)
register_family("santoro-widmayer", _build_santoro_widmayer)
register_family("heard-of", _build_heard_of)
register_family("named", _build_named)
register_family("eventually-forever", _build_eventually_forever)
register_family("stabilizing", _build_stabilizing)
register_family("random-rooted", _build_random_rooted, requires_seed=True)
register_family("random-oblivious", _build_random_oblivious, requires_seed=True)


def random_rooted_specs(
    seed: int,
    n: int,
    samples: int,
    sizes: tuple[int, ...] = (1, 2, 3),
    p: float = 0.4,
) -> list[AdversarySpec]:
    """``samples`` seeded random-rooted specs, derived from one master seed.

    A master ``random.Random(seed)`` draws each sample's alphabet size and
    an independent 63-bit sub-seed; each spec then owns its sub-seed, so a
    single sample can be rebuilt on any worker without replaying the
    stream.  The whole list is a pure function of ``(seed, n, samples,
    sizes, p)`` — the property the backend-equivalence tests pin down.
    """
    master = random.Random(seed)
    sizes = tuple(sizes)
    return [
        AdversarySpec(
            "random-rooted",
            {"n": n, "size": master.choice(sizes), "p": p},
            seed=master.getrandbits(63),
        )
        for _ in range(samples)
    ]
