"""Decision-time analysis of certified consensus algorithms.

The certification depth of a decision table bounds the *worst-case*
decision round, but the universal algorithm's early-decision rule
(Theorem 5.5: decide once the ε-ball around your view fits one decision
set) often decides sooner on most executions.  This module quantifies
that:

* :func:`decision_round_histogram` — for each admissible depth-``t``
  prefix, the round by which all processes have decided; the histogram
  is the "latency distribution" of the certified algorithm;
* :func:`worst_case_decision_round` — its maximum, i.e. the exact
  worst-case decision time of the certificate (the quantity studied for
  oblivious adversaries in the follow-up time-complexity literature);
* :func:`earliest_possible_round` — a lower bound for *any* algorithm:
  no process can decide while its view is still compatible with two
  decision values, so the max-min over prefixes of the first
  value-determined round bounds every correct algorithm from below.
"""

from __future__ import annotations

from collections import Counter

from repro.consensus.decision import DecisionTable

__all__ = [
    "decision_round_histogram",
    "worst_case_decision_round",
    "earliest_possible_round",
]


def decision_round_histogram(table: DecisionTable) -> dict[int, int]:
    """Histogram {round: #prefixes} of all-decided rounds at the table depth."""
    space = table.space
    counts: Counter = Counter()
    for node in space.layer(table.depth):
        counts[table.decision_round_for(node)] += 1
    return dict(sorted(counts.items()))


def worst_case_decision_round(table: DecisionTable) -> int:
    """The exact worst-case decision round of the certified algorithm."""
    histogram = decision_round_histogram(table)
    return max(histogram)


def earliest_possible_round(table: DecisionTable) -> int:
    """A lower bound on the decision time of *any* correct algorithm.

    For each admissible prefix, no process can decide before its view
    determines the decision value (otherwise an indistinguishable
    continuation with a different value violates agreement with the
    execution where the adversary plays it).  The bound is the maximum
    over prefixes of the first round at which *some* process's view is
    value-determined under the table's assignment.

    The table's assignment realizes a particular algorithm; since every
    correct algorithm induces *some* clopen partition, the bound is exact
    for this partition and indicative in general.
    """
    space = table.space
    worst = 0
    for node in space.layer(table.depth):
        earliest = None
        for s in range(table.depth + 1):
            views = node.prefix.views(s)
            if any(view in table.early for view in views):
                earliest = s
                break
        if earliest is None:  # pragma: no cover - table.validate() forbids it
            earliest = table.depth
        worst = max(worst, earliest)
    return worst
