"""k-set agreement under message adversaries (extension study).

The paper's conclusion names the generalization "to other decision
problems" as future work; k-set agreement is the canonical next problem:
every process decides a valid value, and at most ``k`` distinct values are
decided *per execution* (``k = 1`` is consensus).

Unlike consensus, processes in one execution may legally decide different
values, so the decision structure is not a component labelling but a
per-view assignment subject to per-execution cardinality constraints.  On a
depth-``t`` prefix space this is a finite constraint-satisfaction problem:

* variables: the views occurring at depth ``t`` (each owned by a process);
* per admissible prefix: the set of its ``n`` views' values has size ≤ k;
* validity: weak — a view occurring in a unanimous-``v`` prefix is forced
  to ``v``; strong — a view's value must be an input of every prefix it
  occurs in.

:func:`check_kset_by_depth` decides, exactly, whether a k-set agreement
algorithm exists *that decides by round ``t``* (the analogue of the
consensus decision-table certificate).  A positive answer yields an
executable :class:`KSetTable`; a negative answer at increasing depths is
evidence (not proof) of unsolvability, reported honestly.
"""

from __future__ import annotations

from repro.adversaries.base import MessageAdversary
from repro.consensus.spec import STRONG, ConsensusSpec
from repro.core.views import ViewInterner
from repro.errors import AnalysisError, CertificateError
from repro.topology.prefixspace import PrefixSpace

__all__ = ["KSetTable", "check_kset_by_depth", "kset_depth_sweep"]


class KSetTable:
    """A certified per-view decision map for k-set agreement at a depth."""

    __slots__ = ("space", "depth", "k", "spec", "assignment")

    def __init__(
        self,
        space: PrefixSpace,
        depth: int,
        k: int,
        spec: ConsensusSpec,
        assignment: dict[int, object],
    ) -> None:
        self.space = space
        self.depth = depth
        self.k = k
        self.spec = spec
        self.assignment = assignment

    def decision_for_view(self, view_id: int):
        """The decided value of the process holding ``view_id``."""
        return self.assignment[view_id]

    def validate(self) -> None:
        """Re-check the k-set contract over the whole prefix layer."""
        n = self.space.adversary.n
        for node in self.space.layer(self.depth):
            views = node.prefix.views(self.depth)
            values = {self.assignment[v] for v in views}
            if len(values) > self.k:
                raise CertificateError(
                    f"{len(values)} > k = {self.k} values in {node!r}"
                )
            unanimous = node.unanimous_value
            if unanimous is not None and values != {unanimous}:
                raise CertificateError(f"validity violation in {node!r}")
            if self.spec.validity == STRONG and not values <= set(node.inputs):
                raise CertificateError(f"strong validity violation in {node!r}")

    def __repr__(self) -> str:
        return f"KSetTable(k={self.k}, depth={self.depth}, views={len(self.assignment)})"


def _view_domains(
    space: PrefixSpace, depth: int, spec: ConsensusSpec
) -> tuple[dict[int, set], list[tuple[int, ...]]]:
    """Per-view value domains and the per-prefix view tuples."""
    n = space.adversary.n
    domains: dict[int, set] = {}
    prefix_views: list[tuple[int, ...]] = []
    for node in space.layer(depth):
        views = node.prefix.views(depth)
        prefix_views.append(views)
        unanimous = node.unanimous_value
        for v in views:
            domain = domains.setdefault(v, set(spec.domain))
            if unanimous is not None:
                domain &= {unanimous}
            if spec.validity == STRONG:
                domain &= set(node.inputs)
    return domains, prefix_views


def check_kset_by_depth(
    adversary: MessageAdversary,
    k: int,
    depth: int,
    spec: ConsensusSpec | None = None,
    interner: ViewInterner | None = None,
    max_nodes: int = 2_000_000,
) -> KSetTable | None:
    """Exact existence of a k-set agreement algorithm deciding by ``depth``.

    Returns a validated :class:`KSetTable` or ``None`` when no assignment
    exists (no algorithm whose decisions are functions of round-``depth``
    views can achieve k-agreement; deeper algorithms may still exist).
    """
    if k < 1:
        raise AnalysisError("k must be >= 1")
    spec = spec or ConsensusSpec()
    from repro.core.inputs import all_assignments

    space = PrefixSpace(
        adversary,
        input_vectors=all_assignments(adversary.n, spec.domain),
        interner=interner,
        max_nodes=max_nodes,
    )
    if k == 1:
        # Consensus: exact and fast via components (Theorem 5.5).
        from repro.topology.components import ComponentAnalysis

        analysis = ComponentAnalysis(space, depth)
        if not all(spec.allowed_values(c) for c in analysis.components):
            return None
        assignment: dict[int, object] = {}
        for node in space.layer(depth):
            value = spec.pick_value(analysis.component_of(node))
            for v in node.prefix.views(depth):
                assignment[v] = value
        table = KSetTable(space, depth, k, spec, assignment)
        table.validate()
        return table

    domains, prefix_views = _view_domains(space, depth, spec)
    if any(not domain for domain in domains.values()):
        return None

    constraints_of: dict[int, list[int]] = {v: [] for v in domains}
    for index, views in enumerate(prefix_views):
        for v in views:
            constraints_of[v].append(index)

    assignment = {
        v: next(iter(domain)) for v, domain in domains.items() if len(domain) == 1
    }

    def consistent(view: int) -> bool:
        for index in constraints_of[view]:
            views = prefix_views[index]
            assigned = {assignment[v] for v in views if v in assignment}
            if len(assigned) > k:
                return False
        return True

    for view in list(assignment):
        if not consistent(view):
            return None

    # Iterative backtracking, most-constrained variables first; values
    # already used in a variable's prefixes are tried first to keep the
    # per-execution value sets small.
    order = sorted(
        (v for v in domains if v not in assignment),
        key=lambda v: (len(domains[v]), -len(constraints_of[v]), v),
    )

    def candidate_values(view: int):
        used = set()
        for index in constraints_of[view]:
            for v in prefix_views[index]:
                if v in assignment:
                    used.add(assignment[v])
        preferred = [value for value in domains[view] if value in used]
        rest = [value for value in domains[view] if value not in used]
        return preferred + sorted(rest, key=repr)

    stack: list[tuple[int, list]] = []
    position = 0
    steps = 0
    step_limit = 2_000_000
    while position < len(order):
        steps += 1
        if steps > step_limit:
            raise AnalysisError(
                "k-set backtracking exceeded its step budget; "
                "reduce the depth or the input domain"
            )
        if len(stack) == position:
            stack.append((position, candidate_values(order[position])))
        _, values = stack[position]
        advanced = False
        while values:
            value = values.pop(0)
            view = order[position]
            assignment[view] = value
            if consistent(view):
                advanced = True
                break
            del assignment[view]
        if advanced:
            position += 1
            continue
        # Exhausted: backtrack.
        stack.pop()
        if position == 0:
            return None
        position -= 1
        del assignment[order[position]]
    table = KSetTable(space, depth, k, spec, dict(assignment))
    table.validate()
    return table


def kset_depth_sweep(
    adversary: MessageAdversary,
    k: int,
    max_depth: int = 5,
    spec: ConsensusSpec | None = None,
) -> tuple[int | None, list[bool]]:
    """First depth with a k-set certificate, plus the per-depth outcomes."""
    outcomes = []
    found = None
    for depth in range(max_depth + 1):
        table = check_kset_by_depth(adversary, k, depth, spec=spec)
        outcomes.append(table is not None)
        if table is not None and found is None:
            found = depth
            break
    return found, outcomes
