"""k-set agreement under message adversaries (extension study).

The paper's conclusion names the generalization "to other decision
problems" as future work; k-set agreement is the canonical next problem:
every process decides a valid value, and at most ``k`` distinct values are
decided *per execution* (``k = 1`` is consensus).

Unlike consensus, processes in one execution may legally decide different
values, so the decision structure is not a component labelling but a
per-view assignment subject to per-execution cardinality constraints.  On a
depth-``t`` prefix space this is a finite constraint-satisfaction problem:

* variables: the views occurring at depth ``t`` (each owned by a process);
* per admissible prefix: the set of its ``n`` views' values has size ≤ k;
* validity: weak — a view occurring in a unanimous-``v`` prefix is forced
  to ``v``; strong — a view's value must be an input of every prefix it
  occurs in.

:func:`check_kset_by_depth` decides, exactly, whether a k-set agreement
algorithm exists *that decides by round ``t``* (the analogue of the
consensus decision-table certificate).  A positive answer yields an
executable :class:`KSetTable`; a negative answer at increasing depths is
evidence (not proof) of unsolvability, reported honestly.
"""

from __future__ import annotations

from repro.adversaries.base import MessageAdversary
from repro.consensus.spec import STRONG, ConsensusSpec
from repro.core.views import ViewInterner
from repro.errors import AnalysisError, CertificateError
from repro.topology.prefixspace import PrefixSpace

__all__ = ["KSetTable", "check_kset_by_depth", "kset_depth_sweep"]


class KSetTable:
    """A certified per-view decision map for k-set agreement at a depth."""

    __slots__ = ("space", "depth", "k", "spec", "assignment")

    def __init__(
        self,
        space: PrefixSpace,
        depth: int,
        k: int,
        spec: ConsensusSpec,
        assignment: dict[int, object],
    ) -> None:
        self.space = space
        self.depth = depth
        self.k = k
        self.spec = spec
        self.assignment = assignment

    def decision_for_view(self, view_id: int):
        """The decided value of the process holding ``view_id``."""
        return self.assignment[view_id]

    def validate(self) -> None:
        """Re-check the k-set contract over the whole prefix layer."""
        n = self.space.adversary.n
        for node in self.space.layer(self.depth):
            views = node.prefix.views(self.depth)
            values = {self.assignment[v] for v in views}
            if len(values) > self.k:
                raise CertificateError(
                    f"{len(values)} > k = {self.k} values in {node!r}"
                )
            unanimous = node.unanimous_value
            if unanimous is not None and values != {unanimous}:
                raise CertificateError(f"validity violation in {node!r}")
            if self.spec.validity == STRONG and not values <= set(node.inputs):
                raise CertificateError(f"strong validity violation in {node!r}")

    def __repr__(self) -> str:
        return f"KSetTable(k={self.k}, depth={self.depth}, views={len(self.assignment)})"


def _view_domains(
    space: PrefixSpace, depth: int, spec: ConsensusSpec
) -> tuple[dict[int, set], list[tuple[int, ...]]]:
    """Per-view value domains and the per-prefix view tuples."""
    n = space.adversary.n
    domains: dict[int, set] = {}
    prefix_views: list[tuple[int, ...]] = []
    for node in space.layer(depth):
        views = node.prefix.views(depth)
        prefix_views.append(views)
        unanimous = node.unanimous_value
        for v in views:
            domain = domains.setdefault(v, set(spec.domain))
            if unanimous is not None:
                domain &= {unanimous}
            if spec.validity == STRONG:
                domain &= set(node.inputs)
    return domains, prefix_views


def check_kset_by_depth(
    adversary: MessageAdversary,
    k: int,
    depth: int,
    spec: ConsensusSpec | None = None,
    interner: ViewInterner | None = None,
    max_nodes: int = 2_000_000,
) -> KSetTable | None:
    """Exact existence of a k-set agreement algorithm deciding by ``depth``.

    Returns a validated :class:`KSetTable` or ``None`` when no assignment
    exists (no algorithm whose decisions are functions of round-``depth``
    views can achieve k-agreement; deeper algorithms may still exist).
    """
    if k < 1:
        raise AnalysisError("k must be >= 1")
    spec = spec or ConsensusSpec()
    from repro.core.inputs import all_assignments

    space = PrefixSpace(
        adversary,
        input_vectors=all_assignments(adversary.n, spec.domain),
        interner=interner,
        max_nodes=max_nodes,
    )
    if k == 1:
        # Consensus: exact and fast via components (Theorem 5.5).
        from repro.topology.components import ComponentAnalysis

        analysis = ComponentAnalysis(space, depth)
        if not all(spec.allowed_values(c) for c in analysis.components):
            return None
        assignment: dict[int, object] = {}
        for node in space.layer(depth):
            value = spec.pick_value(analysis.component_of(node))
            for v in node.prefix.views(depth):
                assignment[v] = value
        table = KSetTable(space, depth, k, spec, assignment)
        table.validate()
        return table

    domains, prefix_views = _view_domains(space, depth, spec)
    if any(not domain for domain in domains.values()):
        return None

    constraints_of: dict[int, list[int]] = {v: [] for v in domains}
    for index, views in enumerate(prefix_views):
        for v in views:
            constraints_of[v].append(index)

    assignment = {
        v: next(iter(domain)) for v, domain in domains.items() if len(domain) == 1
    }

    def consistent(view: int) -> bool:
        for index in constraints_of[view]:
            views = prefix_views[index]
            assigned = {assignment[v] for v in views if v in assignment}
            if len(assigned) > k:
                return False
        return True

    for view in list(assignment):
        if not consistent(view):
            return None

    # Forward-checking backtracking with dynamic most-constrained-first
    # variable selection.  A static variable order is fragile — its
    # tie-break depends on the view-id numbering, which the layer-kernel
    # backends deliberately do not fix — so the search instead prunes as
    # it assigns: once a prefix has ``k`` distinct assigned values, every
    # unassigned view of that prefix is restricted to those values, and an
    # emptied domain backtracks immediately.  Values already used in a
    # variable's prefixes are tried first to keep the per-execution value
    # sets small.
    dom: dict[int, set] = {
        v: set(domain) for v, domain in domains.items() if v not in assignment
    }
    budget = [2_000_000]

    def propagate(view: int, log: list) -> bool:
        """Forward-check one assignment; log restrictions for undo."""
        for index in constraints_of[view]:
            views = prefix_views[index]
            used = {assignment[w] for w in views if w in assignment}
            if len(used) > k:
                return False
            if len(used) == k:
                for w in views:
                    if w in assignment:
                        continue
                    d = dom[w]
                    removed = d - used
                    if removed:
                        d -= removed
                        log.append((w, removed))
                        if not d:
                            return False
        return True

    # Seed the domains from the forced views before searching.
    seed_log: list = []
    for view in list(assignment):
        if not propagate(view, seed_log):
            return None

    def value_order(view: int) -> list:
        used = set()
        for index in constraints_of[view]:
            for w in prefix_views[index]:
                if w in assignment:
                    used.add(assignment[w])
        ordered = sorted(dom[view], key=repr)
        return [value for value in ordered if value in used] + [
            value for value in ordered if value not in used
        ]

    def try_values(frame: list) -> bool:
        """Advance one frame to its next propagating value."""
        view, values, _ = frame
        while values:
            if budget[0] <= 0:
                raise AnalysisError(
                    "k-set backtracking exceeded its step budget; "
                    "reduce the depth or the input domain"
                )
            budget[0] -= 1
            assignment[view] = values.pop(0)
            log: list = []
            if propagate(view, log):
                frame[2] = log
                return True
            for w, removed in log:
                dom[w] |= removed
            del assignment[view]
        return False

    unassigned = set(dom)
    frames: list[list] = []
    while unassigned:
        view = min(
            unassigned,
            key=lambda w: (len(dom[w]), -len(constraints_of[w]), w),
        )
        unassigned.discard(view)
        frames.append([view, value_order(view), None])
        while frames and not try_values(frames[-1]):
            unassigned.add(frames.pop()[0])
            if not frames:
                return None
            previous = frames[-1]
            for w, removed in previous[2]:
                dom[w] |= removed
            previous[2] = None
            del assignment[previous[0]]
    table = KSetTable(space, depth, k, spec, dict(assignment))
    table.validate()
    return table


def kset_depth_sweep(
    adversary: MessageAdversary,
    k: int,
    max_depth: int = 5,
    spec: ConsensusSpec | None = None,
) -> tuple[int | None, list[bool]]:
    """First depth with a k-set certificate, plus the per-depth outcomes."""
    outcomes = []
    found = None
    for depth in range(max_depth + 1):
        table = check_kset_by_depth(adversary, k, depth, spec=spec)
        outcomes.append(table is not None)
        if table is not None and found is None:
            found = depth
            break
    return found, outcomes
