"""Decision tables: the executable form of the universal algorithm.

Theorem 5.5's universal algorithm decides as soon as the ``2^{-t}``-ball
around the sequences compatible with the local view is contained in one
decision set.  Once a certification depth ``t`` and a value assignment to
the depth-``t`` components are fixed, that rule becomes a pure lookup:

* a process's view at depth ``t`` determines the component of every
  compatible admissible prefix, hence the decision value;
* a view at an earlier depth ``s < t`` determines a *set* of reachable
  depth-``t`` components; when all of them carry the same value the ball is
  already contained in one decision set and the process may decide early —
  this is exactly the paper's decision rule, evaluated eagerly.

:class:`DecisionTable` materializes both maps and validates itself against
the prefix space (agreement, validity, termination by round ``t``).
"""

from __future__ import annotations

from repro.consensus.spec import ConsensusSpec
from repro.errors import CertificateError
from repro.topology.components import ComponentAnalysis
from repro.topology.prefixspace import PrefixSpace

__all__ = ["DecisionTable", "build_decision_table"]


class DecisionTable:
    """View-to-value decision map certified at a given depth.

    Attributes
    ----------
    depth:
        The certification depth ``t`` (every process decides by round
        ``t``).
    assignment:
        Component id -> decision value at depth ``t``.
    final:
        View id (at depth ``t``) -> decision value.
    early:
        View id (any depth ``<= t``) -> decision value, present only when
        the value is already determined (the ε-ball rule).
    """

    __slots__ = ("space", "depth", "spec", "assignment", "final", "early")

    def __init__(
        self,
        space: PrefixSpace,
        depth: int,
        spec: ConsensusSpec,
        assignment: dict[int, object],
        final: dict[int, object],
        early: dict[int, object],
    ) -> None:
        self.space = space
        self.depth = depth
        self.spec = spec
        self.assignment = assignment
        self.final = final
        self.early = early

    # ------------------------------------------------------------------ #
    # Lookup interface (used by the universal algorithm)
    # ------------------------------------------------------------------ #

    def decision_for_view(self, view_id: int):
        """The decided value for a view, or None when not yet determined.

        Accepts views of any depth up to the certification depth; views at
        the certification depth always decide.
        """
        return self.early.get(view_id)

    def decided_values(self) -> frozenset:
        """All values the table can output."""
        return frozenset(self.assignment.values())

    # ------------------------------------------------------------------ #
    # Self-validation (executable Theorem 5.5 correctness argument)
    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        """Check termination, agreement, and validity over the prefix space.

        Raises :class:`CertificateError` on any violation; passing is an
        end-to-end check of the universal construction at this depth.
        """
        layer = self.space.layer(self.depth)
        n = self.space.adversary.n
        for node in layer:
            views = node.prefix.views(self.depth)
            decisions = set()
            for p in range(n):
                value = self.early.get(views[p])
                if value is None:
                    raise CertificateError(
                        f"termination violation: no decision for process {p} "
                        f"in {node!r}"
                    )
                decisions.add(value)
            if len(decisions) != 1:
                raise CertificateError(
                    f"agreement violation in {node!r}: {decisions}"
                )
            value = decisions.pop()
            unanimous = node.unanimous_value
            if unanimous is not None and value != unanimous:
                raise CertificateError(
                    f"validity violation in {node!r}: decided {value!r}"
                )
            if self.spec.validity == "strong" and value not in node.inputs:
                raise CertificateError(
                    f"strong validity violation in {node!r}: decided {value!r}"
                )
        # Early decisions must be consistent with final ones.
        for view, value in self.final.items():
            if self.early.get(view) != value:
                raise CertificateError("early/final decision mismatch")

    def decision_round_for(self, node) -> int:
        """The earliest round at which all processes have decided in a prefix."""
        n = self.space.adversary.n
        last = 0
        for p in range(n):
            for s in range(self.depth + 1):
                if node.prefix.view(p, s) in self.early:
                    last = max(last, s)
                    break
            else:
                raise CertificateError("process never decides")
        return last

    def __repr__(self) -> str:
        return (
            f"DecisionTable(depth={self.depth}, components={len(self.assignment)}, "
            f"views={len(self.early)})"
        )


def build_decision_table(
    analysis: ComponentAnalysis, spec: ConsensusSpec
) -> DecisionTable:
    """Assign values to components and derive the view decision maps.

    Raises :class:`~repro.errors.AnalysisError` (via the spec) when some
    component admits no value — i.e. when consensus is not certified at
    this depth.
    """
    space = analysis.space
    depth = analysis.depth
    assignment = {
        component.id: spec.pick_value(component)
        for component in analysis.components
    }

    # Final map: every view occurring at the certification depth.
    final: dict[int, object] = {}
    layer = space.layer(depth)
    n = space.adversary.n
    for node in layer:
        value = assignment[analysis.component_of(node).id]
        for p in range(n):
            final[node.prefix.view(p, depth)] = value

    # Early map: a view at depth s <= depth decides when every admissible
    # depth-t continuation carries the same value.
    possible: dict[int, set] = {}
    for node in layer:
        value = assignment[analysis.component_of(node).id]
        for s in range(depth + 1):
            for p in range(n):
                possible.setdefault(node.prefix.view(p, s), set()).add(value)
    early = {
        view: next(iter(values))
        for view, values in possible.items()
        if len(values) == 1
    }

    table = DecisionTable(space, depth, spec, assignment, final, early)
    table.validate()
    return table
