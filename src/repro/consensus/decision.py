"""Decision tables: the executable form of the universal algorithm.

Theorem 5.5's universal algorithm decides as soon as the ``2^{-t}``-ball
around the sequences compatible with the local view is contained in one
decision set.  Once a certification depth ``t`` and a value assignment to
the depth-``t`` components are fixed, that rule becomes a pure lookup:

* a process's view at depth ``t`` determines the component of every
  compatible admissible prefix, hence the decision value;
* a view at an earlier depth ``s < t`` determines a *set* of reachable
  depth-``t`` components; when all of them carry the same value the ball is
  already contained in one decision set and the process may decide early —
  this is exactly the paper's decision rule, evaluated eagerly.

:class:`DecisionTable` materializes both maps and validates itself against
the prefix space (agreement, validity, termination by round ``t``).

Columnar construction
---------------------
:func:`build_decision_table` folds directly over the layer columns: the
per-prefix component-id column of the
:class:`~repro.topology.components.ComponentAnalysis` becomes a per-prefix
value-bit column, the final map reads the depth-``t``
:class:`~repro.core.views.LayerTable` flat column, and the early map pushes
value bitmaps bottom-up through the parent-index columns — per layer one
``np.unique`` + ``reduceat`` fold on the numpy backend, one flat loop on
pure Python.  No :class:`~repro.topology.prefixspace.PrefixNode` is ever
materialized except to format a validation error.
"""

from __future__ import annotations

from repro.consensus.spec import STRONG, ConsensusSpec
from repro.core.views import numpy_module, plain_ids
from repro.errors import AnalysisError, CertificateError
from repro.topology.components import ComponentAnalysis
from repro.topology.prefixspace import PrefixSpace

__all__ = ["DecisionTable", "build_decision_table"]


#: Below this many (prefix, process) cells at the certification depth the
#: per-layer unique/reduceat folds lose to the plain dict loops.
_DECISION_NUMPY_MIN_CELLS = 2048

#: The vectorized folds encode value sets as int64 bitmaps; instances with
#: more distinct decision values than this fall back to the Python maps
#: (whose bitmaps are arbitrary-precision ints).
_NUMPY_MAX_VALUES = 62


def _use_numpy_maps(space, store, value_count: int) -> bool:
    """Whether the vectorized decision folds should run for this layer."""
    np = numpy_module()
    return (
        np is not None
        and space.interner.layer_backend == "numpy"
        and value_count <= _NUMPY_MAX_VALUES
        and len(store) * store.levels.n >= _DECISION_NUMPY_MIN_CELLS
    )


class DecisionTable:
    """View-to-value decision map certified at a given depth.

    Attributes
    ----------
    depth:
        The certification depth ``t`` (every process decides by round
        ``t``).
    assignment:
        Component id -> decision value at depth ``t``.
    final:
        View id (at depth ``t``) -> decision value.
    early:
        View id (any depth ``<= t``) -> decision value, present only when
        the value is already determined (the ε-ball rule).
    """

    __slots__ = ("space", "depth", "spec", "assignment", "final", "early")

    def __init__(
        self,
        space: PrefixSpace,
        depth: int,
        spec: ConsensusSpec,
        assignment: dict[int, object],
        final: dict[int, object],
        early: dict[int, object],
    ) -> None:
        self.space = space
        self.depth = depth
        self.spec = spec
        self.assignment = assignment
        self.final = final
        self.early = early

    # ------------------------------------------------------------------ #
    # Lookup interface (used by the universal algorithm)
    # ------------------------------------------------------------------ #

    def decision_for_view(self, view_id: int):
        """The decided value for a view, or None when not yet determined.

        Accepts views of any depth up to the certification depth; views at
        the certification depth always decide.
        """
        return self.early.get(view_id)

    def decided_values(self) -> frozenset:
        """All values the table can output."""
        return frozenset(self.assignment.values())

    # ------------------------------------------------------------------ #
    # Self-validation (executable Theorem 5.5 correctness argument)
    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        """Check termination, agreement, and validity over the prefix space.

        Raises :class:`CertificateError` on any violation; passing is an
        end-to-end check of the universal construction at this depth.
        Runs columnar on the numpy backend (one gather over the layer's
        flat view column) with the flat Python loop as the fallback; nodes
        are only materialized to format a failure.
        """
        space = self.space
        store = space.layer_store(self.depth)
        table = store.levels
        value_count = len(self.decided_values())
        if _use_numpy_maps(space, store, value_count) and len(self.early) > 0:
            self._validate_numpy(numpy_module(), store, table)
        else:
            self._validate_python(store, table)
        # Early decisions must be consistent with final ones.
        for view, value in self.final.items():
            if self.early.get(view) != value:
                raise CertificateError("early/final decision mismatch")

    def _validate_python(self, store, table) -> None:
        space = self.space
        unanimity = space.unanimity_by_index
        input_vectors = space.input_vectors
        strong = self.spec.validity == "strong"
        early_get = self.early.get
        missing = object()
        input_idx = store.input_idx
        n = table.n
        ids = plain_ids(table.ids)
        for index in range(len(table)):
            base = index * n
            value = early_get(ids[base], missing)
            for p in range(n):
                decided = early_get(ids[base + p], missing)
                if decided is missing:
                    raise CertificateError(
                        f"termination violation: no decision for process {p} "
                        f"in {space.node(self.depth, index)!r}"
                    )
                if decided != value:
                    raise CertificateError(
                        f"agreement violation in "
                        f"{space.node(self.depth, index)!r}: "
                        f"{{{value!r}, {decided!r}}}"
                    )
            input_index = input_idx[index]
            unanimous = unanimity[input_index]
            if unanimous is not None and value != unanimous:
                raise CertificateError(
                    f"validity violation in {space.node(self.depth, index)!r}: "
                    f"decided {value!r}"
                )
            if strong and value not in input_vectors[input_index]:
                raise CertificateError(
                    f"strong validity violation in "
                    f"{space.node(self.depth, index)!r}: decided {value!r}"
                )

    def _validate_numpy(self, np, store, table) -> None:
        space = self.space
        value_list = sorted(set(self.early.values()), key=repr)
        code_of = {value: i for i, value in enumerate(value_list)}
        # Dense view-id -> value-code column over the decided views.
        interner_size = len(space.interner)
        vid_codes = np.full(interner_size, -1, dtype=np.int64)
        early_vids = np.fromiter(self.early.keys(), dtype=np.int64, count=len(self.early))
        early_codes = np.fromiter(
            (code_of[value] for value in self.early.values()),
            dtype=np.int64,
            count=len(self.early),
        )
        vid_codes[early_vids] = early_codes
        mat = table.array()
        codes = vid_codes[mat]
        undecided = codes < 0
        if undecided.any():
            index, p = np.argwhere(undecided)[0]
            raise CertificateError(
                f"termination violation: no decision for process {int(p)} "
                f"in {space.node(self.depth, int(index))!r}"
            )
        first = codes[:, :1]
        disagree = (codes != first).any(axis=1)
        if disagree.any():
            index = int(np.flatnonzero(disagree)[0])
            row = codes[index]
            raise CertificateError(
                f"agreement violation in "
                f"{space.node(self.depth, index)!r}: "
                f"{{{value_list[int(row[0])]!r}, "
                f"{value_list[int(row[row != row[0]][0])]!r}}}"
            )
        node_codes = first.reshape(-1)
        # Validity: unanimity forces the value; strong validity requires
        # membership in the member's input assignment.
        unanimity = space.unanimity_by_index
        unan_codes = np.array(
            [code_of.get(value, -1) if value is not None else -2 for value in unanimity],
            dtype=np.int64,
        )
        input_idx = store.input_array()
        expected = unan_codes[input_idx]
        bad = (expected != -2) & (expected != node_codes)
        if bad.any():
            index = int(np.flatnonzero(bad)[0])
            raise CertificateError(
                f"validity violation in {space.node(self.depth, index)!r}: "
                f"decided {value_list[int(node_codes[index])]!r}"
            )
        if self.spec.validity == "strong":
            input_vectors = space.input_vectors
            allowed_bits = np.array(
                [
                    sum(
                        1 << code_of[v]
                        for v in set(vec)
                        if v in code_of
                    )
                    for vec in input_vectors
                ],
                dtype=np.int64,
            )
            node_bits = np.left_shift(1, node_codes)
            bad = (allowed_bits[input_idx] & node_bits) == 0
            if bad.any():
                index = int(np.flatnonzero(bad)[0])
                raise CertificateError(
                    f"strong validity violation in "
                    f"{space.node(self.depth, index)!r}: decided "
                    f"{value_list[int(node_codes[index])]!r}"
                )

    def decision_round_for(self, node) -> int:
        """The earliest round at which all processes have decided in a prefix."""
        n = self.space.adversary.n
        last = 0
        for p in range(n):
            for s in range(self.depth + 1):
                if node.prefix.view(p, s) in self.early:
                    last = max(last, s)
                    break
            else:
                raise CertificateError("process never decides")
        return last

    def __repr__(self) -> str:
        return (
            f"DecisionTable(depth={self.depth}, components={len(self.assignment)}, "
            f"views={len(self.early)})"
        )


def build_decision_table(
    analysis: ComponentAnalysis, spec: ConsensusSpec
) -> DecisionTable:
    """Assign values to components and derive the view decision maps.

    Raises :class:`~repro.errors.AnalysisError` (via the spec) when some
    component admits no value — i.e. when consensus is not certified at
    this depth.
    """
    space = analysis.space
    depth = analysis.depth
    assignment = _assign_values(analysis, spec)
    # Value sets are encoded as bitmaps over the (small, finite) set of
    # assigned values; both backends share the coding.
    value_list = sorted(set(assignment.values()), key=repr)
    bit_of = {value: 1 << i for i, value in enumerate(value_list)}
    if _use_numpy_maps(space, space.layer_store(depth), len(value_list)):
        final, early = _decision_maps_numpy(
            numpy_module(), space, depth, analysis, assignment, value_list, bit_of
        )
    else:
        final, early = _decision_maps_python(
            space, depth, analysis, assignment, value_list, bit_of
        )
    table = DecisionTable(space, depth, spec, assignment, final, early)
    table.validate()
    return table


def _assign_values(analysis: ComponentAnalysis, spec: ConsensusSpec) -> dict:
    """Value per component id, columnar when the spec allows it.

    The vectorized pass below reproduces :meth:`ConsensusSpec.pick_value`
    for the library spec; subclasses overriding ``pick_value`` or
    ``allowed_values`` keep the per-component calls (their overrides must
    observe every component).  The columnar pass also needs the
    vectorized component analysis to have run (``comp_ids`` is then an
    int64 column) and the domain to fit the int64 value bitmaps.
    """
    np = numpy_module()
    if (
        np is None
        or type(spec).pick_value is not ConsensusSpec.pick_value
        or type(spec).allowed_values is not ConsensusSpec.allowed_values
        or analysis.space.interner.layer_backend != "numpy"
        or not isinstance(analysis.comp_ids, np.ndarray)
        or len(spec.domain) > _NUMPY_MAX_VALUES
    ):
        return {
            component.id: spec.pick_value(component)
            for component in analysis.components
        }
    return _assign_values_numpy(np, analysis, spec)


#: Distinct-from-everything marker for the vectorized tie-break (``None``
#: is a legitimate input value, so it cannot signal "nothing chosen yet").
_NO_VALUE = object()


def _assign_values_numpy(np, analysis: ComponentAnalysis, spec: ConsensusSpec) -> dict:
    """Whole-layer value assignment: forced valences + broadcaster pass.

    One stable argsort groups the layer's prefixes by component;
    ``reduceat`` folds then answer, per component, everything
    :meth:`ConsensusSpec.pick_value` asks member-by-member: the
    strong-validity allowed sets (AND of per-input-vector value bitmaps)
    and each broadcaster's input value (min/max folds over per-process
    value codes, equal iff constant — the Theorem 5.9 check).  Preference
    order, raised errors, and chosen values match the scalar path
    exactly; only components whose allowed set stays ambiguous take the
    (cheap) per-component tie-break loop.
    """
    space = analysis.space
    store = space.layer_store(analysis.depth)
    components = analysis.components
    ncomp = len(components)
    comp_ids = analysis.comp_ids
    member_order = np.argsort(comp_ids, kind="stable")
    comp_starts = np.zeros(ncomp, dtype=np.int64)
    np.cumsum(
        np.bincount(comp_ids, minlength=ncomp)[:-1], out=comp_starts[1:]
    )
    member_inputs = store.input_array()[member_order]
    input_vectors = space.input_vectors
    domain = spec.domain
    code_of = {value: i for i, value in enumerate(domain)}
    assignment: dict = {}
    allowed_sets: dict[int, frozenset] = {}
    pending: list[int] = []
    if spec.validity == STRONG:
        vec_bits = np.fromiter(
            (
                sum(1 << code_of[v] for v in set(vec) if v in code_of)
                for vec in input_vectors
            ),
            dtype=np.int64,
            count=len(input_vectors),
        )
        allowed_bits = np.bitwise_and.reduceat(
            vec_bits[member_inputs], comp_starts
        )
        for cid in range(ncomp):
            bits = int(allowed_bits[cid])
            component = components[cid]
            if not bits:
                raise AnalysisError(
                    f"component {component.id} admits no decision value "
                    f"(valences {set(component.valences)})"
                )
            if bits & (bits - 1) == 0:
                assignment[component.id] = domain[bits.bit_length() - 1]
            else:
                allowed_sets[cid] = frozenset(
                    value for i, value in enumerate(domain) if bits >> i & 1
                )
                pending.append(cid)
    else:
        full = frozenset(domain)
        for cid in range(ncomp):
            component = components[cid]
            valences = component.valences
            if not valences:
                allowed_sets[cid] = full
                pending.append(cid)
            elif len(valences) == 1:
                assignment[component.id] = next(iter(valences))
            else:
                raise AnalysisError(
                    f"component {component.id} admits no decision value "
                    f"(valences {set(valences)})"
                )
    if pending:
        # Per-process broadcaster folds, computed lazily (at most n of
        # them) and shared by every pending component.
        stats_cache: dict[int, tuple] = {}

        def broadcaster_stats(p: int) -> tuple:
            stats = stats_cache.get(p)
            if stats is None:
                codes = np.empty(len(input_vectors), dtype=np.int64)
                index_of: dict = {}
                uniq_values: list = []
                for i, vec in enumerate(input_vectors):
                    value = vec[p]
                    code = index_of.get(value)
                    if code is None:
                        code = index_of[value] = len(uniq_values)
                        uniq_values.append(value)
                    codes[i] = code
                member_codes = codes[member_inputs]
                stats = stats_cache[p] = (
                    uniq_values,
                    np.minimum.reduceat(member_codes, comp_starts),
                    np.maximum.reduceat(member_codes, comp_starts),
                )
            return stats

        for cid in pending:
            component = components[cid]
            allowed = allowed_sets[cid]
            chosen = _NO_VALUE
            for p in sorted(component.broadcasters):
                uniq_values, lo, hi = broadcaster_stats(p)
                if lo[cid] != hi[cid]:
                    # Non-constant broadcaster: delegate to the member
                    # scan for the exact Theorem 5.9 violation error.
                    component.broadcaster_value(p)
                value = uniq_values[int(lo[cid])]
                if value in allowed:
                    chosen = value
                    break
            if chosen is _NO_VALUE:
                for value in domain:
                    if value in allowed:
                        chosen = value
                        break
            assignment[component.id] = chosen
    return assignment


def _decision_maps_python(
    space, depth, analysis, assignment, value_list, bit_of
) -> tuple[dict, dict]:
    """Bottom-up decision maps over the flat layer columns (pure Python).

    The value set of a node is the union over its depth-``t`` descendants,
    pushed through the parent-index columns layer by layer, so the whole
    map costs O(total views) instead of O(nodes * depth).
    """
    store = space.layer_store(depth)
    table = store.levels
    n = table.n
    # Final map: every view occurring at the certification depth.
    comp_values = [assignment[c.id] for c in analysis.components]
    comp_bits = [bit_of[value] for value in comp_values]
    value_bits = [comp_bits[cid] for cid in analysis.comp_ids]
    final: dict[int, object] = {}
    ids = plain_ids(table.ids)
    for index, bits in enumerate(value_bits):
        value = value_list[bits.bit_length() - 1]
        base = index * n
        for vid in ids[base : base + n]:
            final[vid] = value
    # Early map, bottom-up through the parent columns.
    possible: dict[int, int] = {}
    possible_get = possible.get
    for s in range(depth, -1, -1):
        level_store = space.layer_store(s)
        ids = plain_ids(level_store.levels.ids)
        base = 0
        for bits in value_bits:
            for vid in ids[base : base + n]:
                possible[vid] = possible_get(vid, 0) | bits
            base += n
        if s:
            parents = level_store.parents
            parent_bits = [0] * len(space.layer_store(s - 1))
            for index, bits in enumerate(value_bits):
                parent_bits[parents[index]] |= bits
            value_bits = parent_bits
    early = {
        view: value_list[bits.bit_length() - 1]
        for view, bits in possible.items()
        if bits and bits & (bits - 1) == 0
    }
    return final, early


def _decision_maps_numpy(
    np, space, depth, analysis, assignment, value_list, bit_of
) -> tuple[dict, dict]:
    """Vectorized decision maps: per layer one sort/``reduceat`` fold.

    Views of different depths have distinct ids, so the per-layer
    ``(unique view, OR of value bits)`` pairs concatenate into the early
    map without cross-layer merging; the parent push is a segment OR over
    the (already parent-major-sorted) parent column.
    """
    store = space.layer_store(depth)
    comp_bits = np.array(
        [bit_of[assignment[c.id]] for c in analysis.components], dtype=np.int64
    )
    comp_ids = analysis.comp_ids
    if not isinstance(comp_ids, np.ndarray):
        comp_ids = np.array(comp_ids, dtype=np.int64)
    value_bits = comp_bits[comp_ids]
    n = store.levels.n
    final: dict[int, object] = {}
    all_vids: list = []
    all_bits: list = []
    for s in range(depth, -1, -1):
        level_store = space.layer_store(s)
        flat = level_store.levels.array().reshape(-1)
        cell_bits = np.repeat(value_bits, n)
        order = np.argsort(flat, kind="stable")
        sorted_vids = flat[order]
        boundary = np.empty(len(sorted_vids), dtype=bool)
        boundary[0] = True
        np.not_equal(sorted_vids[1:], sorted_vids[:-1], out=boundary[1:])
        starts = np.flatnonzero(boundary)
        uniq_vids = sorted_vids[starts]
        uniq_bits = np.bitwise_or.reduceat(cell_bits[order], starts)
        all_vids.append(uniq_vids)
        all_bits.append(uniq_bits)
        if s == depth:
            # The depth-t views are single-valued by construction; they
            # are exactly the final map.
            final_codes = _bit_codes(np, uniq_bits)
            final = {
                vid: value_list[code]
                for vid, code in zip(uniq_vids.tolist(), final_codes.tolist())
            }
        if s:
            parents = level_store.parent_array()
            prev_count = len(space.layer_store(s - 1))
            seg_boundary = np.empty(len(parents), dtype=bool)
            seg_boundary[0] = True
            np.not_equal(parents[1:], parents[:-1], out=seg_boundary[1:])
            seg_starts = np.flatnonzero(seg_boundary)
            seg_parents = parents[seg_starts]
            parent_bits = np.zeros(prev_count, dtype=np.int64)
            parent_bits[seg_parents] = np.bitwise_or.reduceat(
                value_bits, seg_starts
            )
            value_bits = parent_bits
    vids = np.concatenate(all_vids)
    bits = np.concatenate(all_bits)
    # Single-bit AND nonzero: a view reachable only through dead-end
    # prefixes (a state group with no admissible extensions) accumulates
    # bits 0 and must stay undecided, exactly as on the Python path.
    decided = (bits != 0) & ((bits & (bits - 1)) == 0)
    decided_vids = vids[decided]
    decided_codes = _bit_codes(np, bits[decided])
    early = {
        vid: value_list[code]
        for vid, code in zip(decided_vids.tolist(), decided_codes.tolist())
    }
    return final, early


def _bit_codes(np, bits):
    """Index of the highest set bit per entry (entries are single-bit)."""
    codes = np.zeros(len(bits), dtype=np.int64)
    shifted = bits >> 1
    while shifted.any():
        nonzero = shifted > 0
        codes[nonzero] += 1
        shifted = shifted >> 1
    return codes
