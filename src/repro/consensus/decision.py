"""Decision tables: the executable form of the universal algorithm.

Theorem 5.5's universal algorithm decides as soon as the ``2^{-t}``-ball
around the sequences compatible with the local view is contained in one
decision set.  Once a certification depth ``t`` and a value assignment to
the depth-``t`` components are fixed, that rule becomes a pure lookup:

* a process's view at depth ``t`` determines the component of every
  compatible admissible prefix, hence the decision value;
* a view at an earlier depth ``s < t`` determines a *set* of reachable
  depth-``t`` components; when all of them carry the same value the ball is
  already contained in one decision set and the process may decide early —
  this is exactly the paper's decision rule, evaluated eagerly.

:class:`DecisionTable` materializes both maps and validates itself against
the prefix space (agreement, validity, termination by round ``t``).
"""

from __future__ import annotations

from repro.consensus.spec import ConsensusSpec
from repro.errors import CertificateError
from repro.topology.components import ComponentAnalysis
from repro.topology.prefixspace import PrefixSpace

__all__ = ["DecisionTable", "build_decision_table"]


class DecisionTable:
    """View-to-value decision map certified at a given depth.

    Attributes
    ----------
    depth:
        The certification depth ``t`` (every process decides by round
        ``t``).
    assignment:
        Component id -> decision value at depth ``t``.
    final:
        View id (at depth ``t``) -> decision value.
    early:
        View id (any depth ``<= t``) -> decision value, present only when
        the value is already determined (the ε-ball rule).
    """

    __slots__ = ("space", "depth", "spec", "assignment", "final", "early")

    def __init__(
        self,
        space: PrefixSpace,
        depth: int,
        spec: ConsensusSpec,
        assignment: dict[int, object],
        final: dict[int, object],
        early: dict[int, object],
    ) -> None:
        self.space = space
        self.depth = depth
        self.spec = spec
        self.assignment = assignment
        self.final = final
        self.early = early

    # ------------------------------------------------------------------ #
    # Lookup interface (used by the universal algorithm)
    # ------------------------------------------------------------------ #

    def decision_for_view(self, view_id: int):
        """The decided value for a view, or None when not yet determined.

        Accepts views of any depth up to the certification depth; views at
        the certification depth always decide.
        """
        return self.early.get(view_id)

    def decided_values(self) -> frozenset:
        """All values the table can output."""
        return frozenset(self.assignment.values())

    # ------------------------------------------------------------------ #
    # Self-validation (executable Theorem 5.5 correctness argument)
    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        """Check termination, agreement, and validity over the prefix space.

        Raises :class:`CertificateError` on any violation; passing is an
        end-to-end check of the universal construction at this depth.
        """
        space = self.space
        store = space.layer_store(self.depth)
        unanimity = space.unanimity_by_index
        input_vectors = space.input_vectors
        strong = self.spec.validity == "strong"
        early_get = self.early.get
        missing = object()
        for index, views in enumerate(store.levels):
            value = early_get(views[0], missing)
            for p, vid in enumerate(views):
                decided = early_get(vid, missing)
                if decided is missing:
                    raise CertificateError(
                        f"termination violation: no decision for process {p} "
                        f"in {space.node(self.depth, index)!r}"
                    )
                if decided != value:
                    raise CertificateError(
                        f"agreement violation in "
                        f"{space.node(self.depth, index)!r}: "
                        f"{{{value!r}, {decided!r}}}"
                    )
            input_index = store.input_idx[index]
            unanimous = unanimity[input_index]
            if unanimous is not None and value != unanimous:
                raise CertificateError(
                    f"validity violation in {space.node(self.depth, index)!r}: "
                    f"decided {value!r}"
                )
            if strong and value not in input_vectors[input_index]:
                raise CertificateError(
                    f"strong validity violation in "
                    f"{space.node(self.depth, index)!r}: decided {value!r}"
                )
        # Early decisions must be consistent with final ones.
        for view, value in self.final.items():
            if self.early.get(view) != value:
                raise CertificateError("early/final decision mismatch")

    def decision_round_for(self, node) -> int:
        """The earliest round at which all processes have decided in a prefix."""
        n = self.space.adversary.n
        last = 0
        for p in range(n):
            for s in range(self.depth + 1):
                if node.prefix.view(p, s) in self.early:
                    last = max(last, s)
                    break
            else:
                raise CertificateError("process never decides")
        return last

    def __repr__(self) -> str:
        return (
            f"DecisionTable(depth={self.depth}, components={len(self.assignment)}, "
            f"views={len(self.early)})"
        )


def build_decision_table(
    analysis: ComponentAnalysis, spec: ConsensusSpec
) -> DecisionTable:
    """Assign values to components and derive the view decision maps.

    Raises :class:`~repro.errors.AnalysisError` (via the spec) when some
    component admits no value — i.e. when consensus is not certified at
    this depth.
    """
    space = analysis.space
    depth = analysis.depth
    assignment = {
        component.id: spec.pick_value(component)
        for component in analysis.components
    }

    # Final map: every view occurring at the certification depth.
    final: dict[int, object] = {}
    store = space.layer_store(depth)
    node_values: list = [None] * len(store)
    for component in analysis.components:
        value = assignment[component.id]
        for index in component.member_indices:
            node_values[index] = value
            for vid in store.levels[index]:
                final[vid] = value

    # Early map: a view at depth s <= depth decides when every admissible
    # depth-t continuation carries the same value.  Computed bottom-up: the
    # value set of a node is the union over its depth-t descendants, pushed
    # through the parent links layer by layer, so the whole map costs
    # O(total views) instead of O(nodes * depth).  Value sets are encoded
    # as bitmaps over the (small, finite) set of assigned values.
    value_list = sorted(set(assignment.values()), key=repr)
    bit_of = {value: 1 << i for i, value in enumerate(value_list)}
    possible: dict[int, int] = {}
    possible_get = possible.get
    value_bits: list[int] = [bit_of[value] for value in node_values]
    for s in range(depth, -1, -1):
        level_store = space.layer_store(s)
        levels = level_store.levels
        for index, bits in enumerate(value_bits):
            for vid in levels[index]:
                possible[vid] = possible_get(vid, 0) | bits
        if s:
            parents = level_store.parents
            parent_bits = [0] * len(space.layer_store(s - 1))
            for index, bits in enumerate(value_bits):
                parent_bits[parents[index]] |= bits
            value_bits = parent_bits
    early = {
        view: value_list[bits.bit_length() - 1]
        for view, bits in possible.items()
        if bits and bits & (bits - 1) == 0
    }

    table = DecisionTable(space, depth, spec, assignment, final, early)
    table.validate()
    return table
