"""Broadcastability analysis (Definition 5.8, Theorems 5.9/5.11/6.6).

Broadcastability of a connected component — a single process whose input
becomes known to every process, in every member sequence — is the paper's
operational characterization of solvability.  This module provides:

* :func:`broadcastability_report` — per-component broadcasters, the forced
  broadcaster values (constant by Theorem 5.9), and the worst-case round by
  which the broadcast completes;
* :func:`minimal_broadcast_depth` — the ε-sweep of Theorem 6.6: the
  smallest ``t`` (i.e. largest ``ε = 2^{-t}``) at which every component of
  the depth-``t`` layer is broadcastable;
* :func:`minimal_separation_depth` — the smallest ``t`` with no bivalent
  component, for the executable Theorem 6.6 equivalence study.
"""

from __future__ import annotations

from repro.adversaries.base import MessageAdversary
from repro.core.views import ViewInterner
from repro.errors import AnalysisError
from repro.topology.components import Component, ComponentAnalysis
from repro.topology.prefixspace import PrefixSpace

__all__ = [
    "ComponentBroadcastReport",
    "broadcastability_report",
    "minimal_broadcast_depth",
    "minimal_separation_depth",
]


class ComponentBroadcastReport:
    """Broadcast structure of one component."""

    __slots__ = ("component", "broadcasters", "values", "completion_round")

    def __init__(self, component: Component) -> None:
        self.component = component
        self.broadcasters = component.broadcasters
        self.values = {
            p: component.broadcaster_value(p) for p in sorted(self.broadcasters)
        }
        self.completion_round = self._completion_round(component)

    @staticmethod
    def _completion_round(component: Component) -> int | None:
        """Worst member's earliest round at which some broadcaster finished.

        This is the ``max T(a)`` of Definition 5.8 restricted to the
        component's depth; None when the component is not broadcastable.
        """
        if not component.is_broadcastable:
            return None
        worst = 0
        for node in component.members():
            best = None
            for t in range(node.depth + 1):
                mask = node.prefix.heard_by_all_mask(t)
                if mask & component.broadcast_mask:
                    best = t
                    break
            if best is None:  # pragma: no cover - contradicts broadcast_mask
                raise AnalysisError("inconsistent broadcast mask")
            worst = max(worst, best)
        return worst

    def __repr__(self) -> str:
        return (
            f"ComponentBroadcastReport(component={self.component.id}, "
            f"broadcasters={set(self.broadcasters)}, "
            f"completion_round={self.completion_round})"
        )


def broadcastability_report(
    analysis: ComponentAnalysis,
) -> list[ComponentBroadcastReport]:
    """Broadcast structure of every component of a layer."""
    return [ComponentBroadcastReport(c) for c in analysis.components]


def _sweep(
    adversary: MessageAdversary,
    max_depth: int,
    predicate,
    interner: ViewInterner | None = None,
    max_nodes: int = 2_000_000,
) -> int | None:
    space = PrefixSpace(adversary, interner=interner, max_nodes=max_nodes)
    for depth in range(max_depth + 1):
        analysis = ComponentAnalysis(space, depth)
        if predicate(analysis):
            return depth
    return None


def minimal_broadcast_depth(
    adversary: MessageAdversary,
    max_depth: int = 10,
    interner: ViewInterner | None = None,
    max_nodes: int = 2_000_000,
) -> int | None:
    """Smallest ``t`` at which every depth-``t`` component is broadcastable.

    The ε-sweep of Theorem 6.6 (``ε = 2^{-t}``); None when no such depth
    exists within the bound — for compact adversaries that is evidence of
    impossibility, for non-compact adversaries it is expected
    (Section 6.3: the ε-approximation machinery fails there).
    """
    return _sweep(
        adversary,
        max_depth,
        lambda analysis: not analysis.non_broadcastable_components(),
        interner,
        max_nodes,
    )


def minimal_separation_depth(
    adversary: MessageAdversary,
    max_depth: int = 10,
    interner: ViewInterner | None = None,
    max_nodes: int = 2_000_000,
) -> int | None:
    """Smallest ``t`` with no bivalent component (valence separation)."""
    return _sweep(
        adversary,
        max_depth,
        lambda analysis: not analysis.bivalent_components(),
        interner,
        max_nodes,
    )
