"""Sound impossibility and solvability provers.

The iterative-deepening checker certifies *solvability* with an explicit
decision table, but cannot certify *impossibility* from any finite depth
alone.  This module contributes sound certificates:

* :func:`find_nonbroadcastable_lasso` — an admissible ultimately periodic
  sequence on which no process is ever heard by everyone.  By the
  input-flipping chain in the proof of Theorem 5.11 this connects ``z_v``
  to ``z_w`` inside one component, so consensus is impossible.  The search
  is exact over the finite product (adversary state × heard-of masks):
  heard-of masks are monotone, hence constant on cycles.

* :class:`SingleComponentInduction` — for *oblivious* adversaries: if the
  depth-0 layer is connected and (C1) every process has a graph in which it
  hears only itself, and (C2) the graphs of ``D`` are chained by shared
  in-neighborhoods, then *every* layer is one connected component (proved by
  a one-round induction, see :meth:`SingleComponentInduction.explain`), so
  consensus is impossible by Corollary 5.6.  This automates the classic
  bivalence arguments: it fires on the Santoro–Widmayer lossy link
  {←, ↔, →} [21] and on the ``n-1``-loss families, and provably cannot fire
  on solvable sets like {←, →}.

* :func:`find_guaranteed_broadcaster` — a process ``p`` heard by everyone
  eventually in *every* admissible sequence.  Then every connected
  component is broadcastable by ``p`` and "decide ``x_p`` upon hearing
  ``p``" solves consensus (Theorem 5.11/6.7, sufficiency).  Exact over the
  same product construction, honouring Büchi liveness — this is the prover
  that resolves the non-compact, liveness-dependent families such as
  "eventually → forever" over base {←, ↔, →}.

* :func:`two_process_oblivious_verdict` — the exact classification of
  two-process oblivious adversaries from the literature ([21], [8], [9]):
  impossible iff the empty graph is available or D = {←, ↔, →}; used as an
  independent ground-truth oracle in tests and the census.
"""

from __future__ import annotations

from repro.adversaries.base import MessageAdversary
from repro.adversaries.oblivious import ObliviousAdversary
from repro.core.digraph import Digraph
from repro.core.graphword import GraphWord, full_mask, heard_of_step
from repro.errors import AnalysisError

__all__ = [
    "find_nonbroadcastable_lasso",
    "find_lasso_avoiding_broadcast_by",
    "find_guaranteed_broadcaster",
    "SingleComponentInduction",
    "two_process_oblivious_verdict",
]


# --------------------------------------------------------------------- #
# Product search: adversary automaton × heard-of masks
# --------------------------------------------------------------------- #


def _product_lasso_search(
    adversary: MessageAdversary, forbidden_mask_test
) -> tuple[GraphWord, GraphWord] | None:
    """Find an admissible lasso whose heard-of masks always satisfy a test.

    ``forbidden_mask_test(masks)`` must return True while the masks are
    still "interesting" (e.g. nobody broadcast / process p did not
    broadcast).  Because masks are monotone, a node failing the test can
    never recover, so such nodes are pruned.  Returns (stem, cycle) graph
    words of an admissible (Büchi-accepting) lasso all of whose product
    nodes satisfy the test, or None if no such lasso exists (an exact
    answer).
    """
    n = adversary.n
    accepting = adversary.accepting_states()
    initial_masks = tuple(1 << p for p in range(n))
    if not forbidden_mask_test(initial_masks):
        return None

    # Forward exploration of the reachable, test-satisfying product graph.
    start_nodes = {
        (state, initial_masks)
        for state in adversary.initial_states() & adversary.live_states()
    }
    edges: dict[tuple, list[tuple[Digraph, tuple]]] = {}
    stack = list(start_nodes)
    seen = set(start_nodes)
    while stack:
        state, masks = stack.pop()
        rows = adversary.transitions(state)
        out: list[tuple[Digraph, tuple]] = []
        for graph, successors in rows.items():
            nxt_masks = heard_of_step(graph, masks)
            if not forbidden_mask_test(nxt_masks):
                continue
            for nxt_state in successors:
                node = (nxt_state, nxt_masks)
                out.append((graph, node))
                if node not in seen:
                    seen.add(node)
                    stack.append(node)
        edges[(state, masks)] = out

    # Look for a cycle through an accepting state.  Masks are constant on
    # cycles, so it is enough to find an accepting node that reaches itself.
    for node in sorted(seen, key=repr):
        state, _ = node
        if state not in accepting:
            continue
        cycle = _find_cycle(edges, node)
        if cycle is None:
            continue
        stem = _find_path(edges, start_nodes, node)
        if stem is None:
            continue
        return (
            GraphWord(stem, n=n),
            GraphWord(cycle, n=n),
        )
    return None


def _find_cycle(edges, node) -> list[Digraph] | None:
    """A graph-labelled cycle from ``node`` back to itself (None if absent)."""
    back: dict[tuple, tuple[tuple, Digraph]] = {}
    stack = [node]
    visited = set()
    while stack:
        current = stack.pop()
        for graph, nxt in edges.get(current, ()):
            if nxt == node:
                # Reconstruct node -> ... -> current -> node.
                labels = [graph]
                walk = current
                while walk != node:
                    walk, label = back[walk]
                    labels.append(label)
                labels.reverse()
                return labels
            if nxt not in visited:
                visited.add(nxt)
                back[nxt] = (current, graph)
                stack.append(nxt)
    return None


def _find_path(edges, sources: set, target) -> list[Digraph] | None:
    """A graph-labelled path from any source to ``target`` (None if absent)."""
    if target in sources:
        return []
    back: dict[tuple, tuple[tuple, Digraph]] = {}
    stack = list(sources)
    visited = set(sources)
    while stack:
        current = stack.pop()
        for graph, nxt in edges.get(current, ()):
            if nxt in visited:
                continue
            visited.add(nxt)
            back[nxt] = (current, graph)
            if nxt == target:
                labels = []
                walk = nxt
                while walk not in sources:
                    walk, label = back[walk]
                    labels.append(label)
                labels.reverse()
                return labels
            stack.append(nxt)
    return None


def find_nonbroadcastable_lasso(
    adversary: MessageAdversary,
) -> tuple[GraphWord, GraphWord] | None:
    """An admissible lasso on which *no* process is ever heard by everyone.

    A non-None result proves consensus impossible (input-flipping chain in
    the proof of Theorem 5.11); ``None`` means every admissible ultimately
    periodic sequence eventually has a broadcaster — and since the search is
    exact over the finite product, every admissible sequence does.
    """

    def nobody_broadcast(masks: tuple[int, ...]) -> bool:
        common = full_mask(adversary.n)
        for mask in masks:
            common &= mask
        return common == 0

    return _product_lasso_search(adversary, nobody_broadcast)


def find_lasso_avoiding_broadcast_by(
    adversary: MessageAdversary, p: int
) -> tuple[GraphWord, GraphWord] | None:
    """An admissible lasso on which process ``p`` is never heard by everyone."""

    def p_not_broadcast(masks: tuple[int, ...]) -> bool:
        return any(not (mask >> p & 1) for mask in masks)

    return _product_lasso_search(adversary, p_not_broadcast)


def find_guaranteed_broadcaster(adversary: MessageAdversary) -> int | None:
    """A process heard by everyone, eventually, in every admissible sequence.

    If such a ``p`` exists, "decide ``x_p`` upon hearing ``p``" solves
    consensus (every component is broadcastable by ``p``; Theorem 5.11),
    even for non-compact adversaries whose prefix spaces never separate.
    Returns the smallest such process, or None.
    """
    for p in range(adversary.n):
        if find_lasso_avoiding_broadcast_by(adversary, p) is None:
            return p
    return None


# --------------------------------------------------------------------- #
# Single-component induction (oblivious adversaries)
# --------------------------------------------------------------------- #


def oblivious_cores(adversary: MessageAdversary) -> list[frozenset[Digraph]]:
    """Candidate sets ``D`` with ``D^ω`` contained in a *limit-closed* language.

    For an oblivious adversary the only candidate is its graph set.  For a
    general limit-closed (safety) adversary two kinds of sound candidates
    are produced:

    * the *global core*: letters enabled, with a live successor, from
      every live state (any word over them can always be continued);
    * per initial state ``s``: the letters that loop at ``s`` — staying in
      ``s`` forever keeps the run alive, so that letter set iterated from
      round one is a sub-adversary.

    Non-limit-closed adversaries yield no candidates: a liveness promise
    could exclude parts of ``D^ω``, so no oblivious core is sound there.

    Consensus impossibility is monotone in the admissible set (a larger
    adversary is stronger), so an impossibility certificate for any
    candidate ``D^ω`` lifts to the full adversary.
    """
    if isinstance(adversary, ObliviousAdversary):
        return [adversary.graphs]
    if not adversary.is_limit_closed():
        return []
    live = adversary.live_states()
    candidates: list[frozenset[Digraph]] = []
    core: set[Digraph] | None = None
    for state in live:
        enabled = {
            g
            for g, successors in adversary.transitions(state).items()
            if set(successors) & live
        }
        core = enabled if core is None else core & enabled
    if core:
        candidates.append(frozenset(core))
    for state in adversary.initial_states() & live:
        looping = frozenset(
            g
            for g, successors in adversary.transitions(state).items()
            if state in successors
        )
        if looping and looping not in candidates:
            candidates.append(looping)
    # Prefer larger candidates: they make C1/C2 easier to satisfy.
    candidates.sort(key=len, reverse=True)
    return candidates


def oblivious_core(adversary: MessageAdversary) -> frozenset[Digraph]:
    """The largest sound oblivious core (empty when none exists)."""
    candidates = oblivious_cores(adversary)
    return candidates[0] if candidates else frozenset()


class SingleComponentInduction:
    """Certified impossibility by inductive connectivity.

    Applies to the oblivious core ``D`` of a limit-closed adversary (for an
    oblivious adversary, ``D`` is its graph set).  Checks three finite
    conditions, with the full input space over a domain with >= 2 values:

    * (C0) the depth-0 layer is one component — always true for n >= 2
      because assignments differing in one coordinate share the others;
    * (C1) for every process ``p`` there is ``G ∈ D`` with
      ``In_G(p) = {p}``;
    * (C2) the "shared in-neighborhood" graph on ``D`` (G ~ H iff some
      process has the same in-neighborhood in both) is connected.

    Induction step: if layer ``t`` is one component then so is layer
    ``t+1``: (i) extensions ``a·G`` and ``a·H`` of the same prefix are
    linked through C2-chains (views of other processes are equal because
    the prefix is shared); (ii) a link ``a ~_p b`` survives extension by the
    C1 graph ``G_p``, since ``V_p(a·G_p) = (p, {V_p(a)})``.  Hence ``z_0``
    and ``z_1`` stay connected at every depth and consensus is impossible
    by Corollary 5.6 — for ``D^ω`` and, by monotonicity, for the full
    adversary.
    """

    def __init__(self, adversary: MessageAdversary) -> None:
        self.adversary = adversary
        self.n = adversary.n
        self.core: frozenset[Digraph] = frozenset()
        self._c1_witnesses: dict[int, Digraph] = {}
        self._c2_connected = False
        for candidate in oblivious_cores(adversary):
            witnesses, connected = self._evaluate(candidate)
            if self.core == frozenset():
                # Remember the first (largest) candidate for reporting even
                # when the certificate does not fire.
                self.core, self._c1_witnesses, self._c2_connected = (
                    candidate,
                    witnesses,
                    connected,
                )
            if len(witnesses) == self.n and connected:
                self.core, self._c1_witnesses, self._c2_connected = (
                    candidate,
                    witnesses,
                    connected,
                )
                break

    def _evaluate(
        self, core: frozenset[Digraph]
    ) -> tuple[dict[int, Digraph], bool]:
        graphs = sorted(core)
        witnesses: dict[int, Digraph] = {}
        if not graphs:
            return witnesses, False
        # C1 on the bitmask rows: ``In_G(p) = {p}`` iff the in-bit row of p
        # is exactly p's own bit.
        for p in range(self.n):
            own = 1 << p
            for g in graphs:
                if g.in_bits[p] == own:
                    witnesses[p] = g
                    break
        # C2: connectivity of the shared-in-neighborhood relation.  Instead
        # of the O(|D|^2 n) pairwise scan, bucket graphs by (p, in-row):
        # all graphs sharing a bucket are pairwise related, so chaining each
        # bucket is enough — O(|D| n) unions.
        from repro.topology.components import UnionFind

        uf = UnionFind(len(graphs))
        buckets: dict[tuple[int, int], int] = {}
        for i, g in enumerate(graphs):
            rows = g.in_bits
            for p in range(self.n):
                key = (p, rows[p])
                first = buckets.setdefault(key, i)
                if first != i:
                    uf.union(first, i)
        root = uf.find(0)
        connected = all(uf.find(i) == root for i in range(len(graphs)))
        return witnesses, connected

    @property
    def c1_holds(self) -> bool:
        """Every process has a graph in which it hears only itself."""
        return len(self._c1_witnesses) == self.n

    @property
    def c2_holds(self) -> bool:
        """The shared-in-neighborhood graph on ``D`` is connected."""
        return self._c2_connected

    @property
    def applies(self) -> bool:
        """Whether the certificate fires (n >= 2 ensures C0)."""
        return bool(self.core) and self.n >= 2 and self.c1_holds and self.c2_holds

    def explain(self) -> str:
        """A human-readable account of the certificate."""
        lines = [
            f"Single-component induction on {self.adversary.name} "
            f"(oblivious core of {len(self.core)} graphs):",
            f"  C1 (self-isolating graph per process): {self.c1_holds} "
            f"{{{', '.join(f'{p}:{g.name}' for p, g in sorted(self._c1_witnesses.items())) }}}",
            f"  C2 (shared in-neighborhood chain over D): {self.c2_holds}",
        ]
        if self.applies:
            lines.append(
                "  => every depth-t layer is one connected component; "
                "consensus impossible (Corollary 5.6)."
            )
        else:
            lines.append("  => certificate does not apply.")
        return "\n".join(lines)


# --------------------------------------------------------------------- #
# Two-process exact verdict (literature oracle)
# --------------------------------------------------------------------- #


def two_process_oblivious_verdict(adversary: ObliviousAdversary) -> bool:
    """Exact solvability of two-process oblivious consensus ([21], [8], [9]).

    Returns True iff consensus is solvable: impossible exactly when the
    empty graph is available (processes may never communicate) or when
    ``D = {←, ↔, →}`` (the Santoro–Widmayer lossy link).
    """
    if adversary.n != 2:
        raise AnalysisError("this verdict is specific to n = 2")
    empty = Digraph.empty(2)
    if empty in adversary.graphs:
        return False
    full_set = {
        Digraph.from_arrow("->"),
        Digraph.from_arrow("<-"),
        Digraph.from_arrow("<->"),
    }
    return not adversary.graphs >= full_set
