"""Consensus problem specification (Definition 5.1).

Processes start with inputs from a finite domain ``V_I`` and must
irrevocably decide a common output value subject to termination, agreement,
and a validity condition.  Two validity conditions are supported, following
the paper's remark after Definition 5.1:

* ``"weak"`` — if all processes start with ``v``, the decision is ``v``;
* ``"strong"`` — every decision value is the input of some process in the
  execution.

The spec turns the abstract conditions into constraints on the value a
decision procedure may assign to a connected component of the prefix space.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import AnalysisError
from repro.topology.components import Component

__all__ = ["ConsensusSpec", "WEAK", "STRONG"]

WEAK = "weak"
STRONG = "strong"


class ConsensusSpec:
    """Input domain and validity condition of a consensus instance.

    Examples
    --------
    >>> spec = ConsensusSpec()
    >>> spec.domain
    (0, 1)
    """

    __slots__ = ("domain", "validity")

    def __init__(self, domain: Iterable = (0, 1), validity: str = WEAK) -> None:
        values = tuple(domain)
        if len(values) < 2:
            raise AnalysisError(
                "consensus needs an input domain with at least two values"
            )
        if len(set(values)) != len(values):
            raise AnalysisError("input domain has duplicate values")
        if validity not in (WEAK, STRONG):
            raise AnalysisError(f"unknown validity condition {validity!r}")
        self.domain = values
        self.validity = validity

    def allowed_values(self, component: Component) -> frozenset:
        """The decision values a correct algorithm may map this component to.

        * Weak validity constrains only components containing unanimous
          prefixes: a unanimous-``v`` member forces value ``v``; two
          different valences force the empty set (bivalence).
        * Strong validity intersects, over all members, the sets of input
          values present in the member's assignment — read straight off
          the layer's input-index column, no node wrappers.
        """
        if self.validity == WEAK:
            if not component.valences:
                return frozenset(self.domain)
            if len(component.valences) == 1:
                return component.valences
            return frozenset()
        allowed = set(self.domain)
        input_vectors = component._space.input_vectors
        for input_index in component.member_input_indices():
            allowed &= set(input_vectors[input_index])
            if not allowed:
                break
        return frozenset(allowed)

    def pick_value(self, component: Component) -> object:
        """A deterministic choice among the allowed values of a component.

        Preference order: the forced valence; the (constant, by Theorem 5.9)
        input of the smallest broadcaster; the smallest allowed domain value.
        Raises when the allowed set is empty (bivalent component).
        """
        allowed = self.allowed_values(component)
        if not allowed:
            raise AnalysisError(
                f"component {component.id} admits no decision value "
                f"(valences {set(component.valences)})"
            )
        if len(allowed) == 1:
            return next(iter(allowed))
        for p in sorted(component.broadcasters):
            value = component.broadcaster_value(p)
            if value in allowed:
                return value
        for value in self.domain:
            if value in allowed:
                return value
        raise AnalysisError("unreachable: nonempty allowed set")  # pragma: no cover

    def __repr__(self) -> str:
        return f"ConsensusSpec(domain={self.domain!r}, validity={self.validity!r})"
