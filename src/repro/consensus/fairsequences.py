"""Fair-sequence extraction (Definition 5.16, Section 6.1).

A *fair sequence* is a common limit of runs from two different decision
sets — the infinite object that bivalence proofs construct round by round.
On finite evidence the library can certify "bivalent through depth ``T``"
and extrapolate periodically: a lasso ``(x, stem · cycle^ω)`` whose every
prefix lies in a bivalent component is the natural candidate for the
forever-bivalent limit (for the lossy link {←, ↔, →} *every* admissible
lasso qualifies, because the whole layer stays one component — the
strongest possible form of the Santoro–Widmayer obstruction).

The verification is exact up to the requested depth and honestly labelled:
``verified_depth`` says how far bivalence was actually checked.
"""

from __future__ import annotations

from itertools import product
from typing import Sequence

from repro.adversaries.base import MessageAdversary
from repro.core.views import ViewInterner
from repro.errors import AnalysisError
from repro.topology.components import ComponentAnalysis
from repro.topology.limits import UltimatelyPeriodic
from repro.topology.prefixspace import PrefixSpace

__all__ = ["FairSequenceCandidate", "fair_sequence_candidates"]


class FairSequenceCandidate:
    """A lasso whose prefixes stay bivalent through ``verified_depth``."""

    __slots__ = ("sequence", "verified_depth", "component_sizes")

    def __init__(
        self,
        sequence: UltimatelyPeriodic,
        verified_depth: int,
        component_sizes: list[int],
    ) -> None:
        self.sequence = sequence
        self.verified_depth = verified_depth
        self.component_sizes = component_sizes

    def __repr__(self) -> str:
        return (
            f"FairSequenceCandidate({self.sequence!r}, "
            f"verified_depth={self.verified_depth})"
        )


def fair_sequence_candidates(
    adversary: MessageAdversary,
    verify_depth: int = 5,
    max_cycle: int = 2,
    inputs: Sequence | None = None,
    limit: int = 10,
    max_nodes: int = 2_000_000,
) -> list[FairSequenceCandidate]:
    """Periodic candidates for forever-bivalent (fair) sequences.

    Enumerates admissible lassos with cycles up to ``max_cycle`` over the
    adversary's alphabet and keeps those whose every prefix up to
    ``verify_depth`` lies in a bivalent component of the admissible prefix
    space.  An empty result at sufficient depth is evidence of solvability
    (and is guaranteed once the separation depth is passed); a non-empty
    result reproduces the bivalence-based obstruction of Section 6.1.
    """
    if verify_depth < 1:
        raise AnalysisError("verify_depth must be >= 1")
    space = PrefixSpace(adversary, interner=ViewInterner(adversary.n), max_nodes=max_nodes)
    analyses = [ComponentAnalysis(space, t) for t in range(verify_depth + 1)]

    input_vectors = (
        [tuple(inputs)] if inputs is not None else list(space.input_vectors)
    )
    # Mixed assignments first: the classic constructions start from a
    # bivalent initial configuration.
    input_vectors.sort(key=lambda x: len(set(x)), reverse=True)

    candidates: list[FairSequenceCandidate] = []
    alphabet = adversary.alphabet()
    seen_words: set[tuple] = set()
    for cycle_len in range(1, max_cycle + 1):
        for cycle in product(alphabet, repeat=cycle_len):
            repeats = -(-verify_depth // cycle_len)  # ceil division
            word = (cycle * repeats)[:verify_depth]
            if word in seen_words:
                continue
            seen_words.add(word)
            if not adversary.admits_prefix(word):
                continue
            for x in input_vectors:
                sizes = []
                bivalent = True
                for t in range(1, verify_depth + 1):
                    try:
                        node = space.find_node(t, x, word[:t])
                    except AnalysisError:
                        bivalent = False
                        break
                    component = analyses[t].component_of(node)
                    if not component.is_bivalent:
                        bivalent = False
                        break
                    sizes.append(len(component))
                if bivalent:
                    candidates.append(
                        FairSequenceCandidate(
                            UltimatelyPeriodic(x, [], cycle),
                            verify_depth,
                            sizes,
                        )
                    )
                    if len(candidates) >= limit:
                        return candidates
    return candidates
