"""Bivalence analysis (Section 6.1): forever-bivalent runs as limits.

The paper reinterprets classic bivalence proofs [10, 21, 17]: a forever
bivalent run is the common limit of two sequences of executions from
different decision sets (Definition 5.16).  Computationally:

* a depth-``t`` prefix is *bivalent* when its indistinguishability
  component contains both a 0-valent and a 1-valent prefix;
* bivalent components form a tree under truncation (a depth-``t+1``
  component maps into a unique depth-``t`` component, and bivalence of the
  child implies bivalence of the parent);
* consensus is impossible for a compact adversary iff this tree is
  infinite; an infinite branch *is* the forever-bivalent run, i.e. the fair
  sequence that bivalence proofs construct.

:func:`forever_bivalent_run` returns one branch of the tree up to a depth:
an admissible prefix each of whose truncations is bivalent.  For the lossy
link {←, ↔, →} such a branch exists at every depth (the executable form of
the Santoro–Widmayer impossibility [21]); for solvable adversaries the
search fails at the separation depth.
"""

from __future__ import annotations

from repro.adversaries.base import MessageAdversary
from repro.consensus.spec import ConsensusSpec
from repro.core.views import ViewInterner
from repro.topology.components import ComponentAnalysis
from repro.topology.prefixspace import PrefixNode, PrefixSpace

__all__ = ["BivalentRun", "forever_bivalent_run", "bivalence_history"]


class BivalentRun:
    """A prefix whose every truncation lies in a bivalent component."""

    __slots__ = ("node", "depth", "component_sizes")

    def __init__(self, node: PrefixNode, component_sizes: list[int]) -> None:
        self.node = node
        self.depth = node.depth
        self.component_sizes = component_sizes

    @property
    def inputs(self) -> tuple:
        """The input assignment of the witness run."""
        return self.node.inputs

    @property
    def graphs(self) -> tuple:
        """The graph word of the witness run."""
        return self.node.prefix.graphs

    def __repr__(self) -> str:
        if self.node.prefix.n == 2:
            word = " ".join(g.name for g in self.graphs)
            return (
                f"BivalentRun(inputs={self.inputs!r}, word=[{word}], "
                f"depth={self.depth})"
            )
        return f"BivalentRun(inputs={self.inputs!r}, depth={self.depth})"


def forever_bivalent_run(
    adversary: MessageAdversary,
    depth: int,
    spec: ConsensusSpec | None = None,
    interner: ViewInterner | None = None,
    max_nodes: int = 2_000_000,
) -> BivalentRun | None:
    """A run bivalent through every round up to ``depth`` (None if separated).

    Because bivalent components form a tree under truncation, *any* member
    of a depth-``depth`` bivalent component works: all its truncations are
    automatically bivalent.  The returned witness prefers a member whose
    inputs are mixed (the classic constructions start from a bivalent
    initial configuration).
    """
    spec = spec or ConsensusSpec()
    space = PrefixSpace(adversary, interner=interner, max_nodes=max_nodes)
    analysis = ComponentAnalysis(space, depth)
    bivalent = analysis.bivalent_components()
    if not bivalent:
        return None
    component = max(bivalent, key=len)
    witness = None
    for node in component.members():
        if node.unanimous_value is None:
            witness = node
            break
    if witness is None:
        witness = component.representative
    sizes = []
    for t in range(depth + 1):
        shallow = ComponentAnalysis(space, t)
        truncated = space.layer(t)[_ancestor_index(space, witness, t)]
        parent_component = shallow.component_of(truncated)
        assert parent_component.is_bivalent, "bivalence tree property violated"
        sizes.append(len(parent_component))
    return BivalentRun(witness, sizes)


def _ancestor_index(space: PrefixSpace, node: PrefixNode, t: int) -> int:
    """Index of the depth-``t`` truncation of ``node`` in layer ``t``."""
    current = node
    depth = node.depth
    while depth > t:
        current = space.layer(depth - 1)[current.parent]
        depth -= 1
    return current.index


def bivalence_history(
    adversary: MessageAdversary,
    max_depth: int,
    interner: ViewInterner | None = None,
    max_nodes: int = 2_000_000,
) -> list[int]:
    """Number of bivalent components per depth ``0..max_depth``.

    For impossible compact adversaries the count stays positive forever
    (König: the bivalence tree has an infinite branch — the fair sequence);
    for solvable ones it drops to 0 at the separation depth.
    """
    space = PrefixSpace(adversary, interner=interner, max_nodes=max_nodes)
    return [
        len(ComponentAnalysis(space, t).bivalent_components())
        for t in range(max_depth + 1)
    ]
