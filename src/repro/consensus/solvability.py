"""The consensus solvability checker (Theorems 5.5, 5.11, 6.6, 6.7).

:func:`check_consensus` orchestrates every certificate the library knows:

1. **Impossibility provers** (sound, exact where they apply):
   an admissible lasso with no broadcaster ever
   (:func:`~repro.consensus.provers.find_nonbroadcastable_lasso`,
   Theorem 5.11) and, for oblivious adversaries, the single-component
   induction (:class:`~repro.consensus.provers.SingleComponentInduction`,
   Corollary 5.6).

2. **Guaranteed-broadcaster solvability** (Theorem 5.11/6.7 sufficiency):
   a process heard by all in every admissible sequence yields the
   "decide x_p upon hearing p" algorithm — the certificate that resolves
   non-compact adversaries whose prefix spaces never separate.

3. **Iterative deepening** over the prefix space: at each depth ``t``
   compute the indistinguishability components (= ``ε = 2^{-t}``
   approximations); if a valid value assignment exists, consensus is
   certified SOLVABLE with an executable decision table (Theorem 5.5's
   universal algorithm).  En route the checker records the equivalence
   data of Theorem 6.6 (bivalence vs broadcastability per depth).

If no certificate fires by ``max_depth`` the result is UNDECIDED, with the
full depth history as evidence (for the paper's impossible examples the
impossibility provers fire, so UNDECIDED indicates either a too-small depth
bound or an adversary outside the library's certified classes).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from enum import Enum
from typing import Iterable, Sequence

from repro.adversaries.base import MessageAdversary
from repro.consensus.decision import DecisionTable, build_decision_table
from repro.consensus.provers import (
    SingleComponentInduction,
    find_guaranteed_broadcaster,
    find_nonbroadcastable_lasso,
)
from repro.consensus.spec import ConsensusSpec
from repro.core.inputs import all_assignments
from repro.core.views import ViewInterner
from repro.errors import AnalysisError
from repro.topology.components import ComponentAnalysis
from repro.topology.prefixspace import PrefixSpace

__all__ = [
    "SolvabilityStatus",
    "CheckOptions",
    "DepthReport",
    "ImpossibilityWitness",
    "BroadcasterCertificate",
    "SolvabilityResult",
    "check_consensus",
    "check_consensus_with_options",
]


@dataclass(frozen=True)
class CheckOptions:
    """Tuning knobs of the solvability checker, as one value object.

    Absorbs what used to be a flat pile of ``check_consensus`` keyword
    arguments, so sessions, sweep backends, and manifests can carry,
    serialize, and compare checker configurations as a whole.

    Attributes
    ----------
    max_depth:
        Iterative-deepening bound for the decision-table search.
    max_nodes:
        Prefix-space node budget; exceeding it aborts the deepening.
    use_impossibility_provers / use_broadcaster_certificate:
        Allow disabling individual certificates (useful for ablations).
    memo_extensions:
        Forwarded to :class:`~repro.topology.prefixspace.PrefixSpace`;
        ``None`` keeps its default (memoize exactly when the interner is
        shared).  ``False`` when the interner is provided only for
        observability, not cross-space reuse.
    layer_backend:
        Columnar-pipeline kernel backend for interners created by the
        checker (``"numpy"``/``"python"``; ``None`` = import-time
        default).  One switch drives the whole-layer extension kernel,
        the component analysis, and the decision-table construction.
        Serializes with the options, so sweep manifests carry the backend
        choice to shard runners.  Ignored when the caller shares an
        interner — the interner's own backend wins.
    plan_cache_size:
        LRU capacity of the created interner's per-alphabet extension-plan
        cache (``None`` = library default,
        :data:`repro.core.views.DEFAULT_PLAN_CACHE_SIZE`).  Plans are pure
        functions of the alphabet, so the cap trades recomputation for
        memory and never changes results.  Ignored when the caller shares
        an interner.
    extension_workers:
        Process count for the created interner's sharded whole-layer
        extension (``1`` = serial, the default).  Orthogonal to
        ``layer_backend``: only the numpy kernel shards, the sharded path
        is bit-identical to the serial numpy kernel for any worker count,
        and small layers fall back to serial automatically.  Serializes
        with the options like ``layer_backend``; manifests written before
        this field existed simply omit it and load with the serial
        default.  Process-pool sweeps clamp it to ``1`` inside their
        workers via :data:`repro.core.views._WORKER_CAP_ENV`.  Ignored
        when the caller shares an interner.
    """

    max_depth: int = 10
    max_nodes: int = 2_000_000
    use_impossibility_provers: bool = True
    use_broadcaster_certificate: bool = True
    memo_extensions: bool | None = None
    layer_backend: str | None = None
    plan_cache_size: int | None = None
    extension_workers: int = 1

    def replace(self, **changes) -> "CheckOptions":
        """A copy with the given fields changed."""
        return replace(self, **changes)

    def to_dict(self) -> dict:
        """JSON-able form (sweep manifests embed this)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CheckOptions":
        """Inverse of :meth:`to_dict`; unknown keys are rejected by name."""
        known = {field: data[field] for field in cls.__dataclass_fields__ if field in data}
        unknown = set(data) - set(known)
        if unknown:
            raise AnalysisError(f"unknown CheckOptions fields: {sorted(unknown)}")
        return cls(**known)


class SolvabilityStatus(Enum):
    """Outcome of the solvability analysis."""

    SOLVABLE = "solvable"
    IMPOSSIBLE = "impossible"
    UNDECIDED = "undecided"


class DepthReport:
    """Per-depth component statistics gathered during iterative deepening."""

    __slots__ = (
        "depth",
        "prefixes",
        "components",
        "bivalent",
        "non_broadcastable",
    )

    def __init__(self, summary: dict) -> None:
        self.depth = summary["depth"]
        self.prefixes = summary["prefixes"]
        self.components = summary["components"]
        self.bivalent = summary["bivalent"]
        self.non_broadcastable = summary["non_broadcastable"]

    def __repr__(self) -> str:
        return (
            f"DepthReport(t={self.depth}, prefixes={self.prefixes}, "
            f"components={self.components}, bivalent={self.bivalent}, "
            f"non_broadcastable={self.non_broadcastable})"
        )


class ImpossibilityWitness:
    """Why consensus is impossible.

    ``kind`` is one of:

    * ``"nonbroadcastable-lasso"`` — ``lasso`` holds an admissible
      (stem, cycle) on which no process is ever heard by all;
    * ``"single-component-induction"`` — ``induction`` holds the
      certificate object with the C1/C2 witnesses.
    """

    __slots__ = ("kind", "lasso", "induction")

    def __init__(self, kind: str, lasso=None, induction=None) -> None:
        self.kind = kind
        self.lasso = lasso
        self.induction = induction

    def explain(self) -> str:
        """Human-readable account of the certificate."""
        if self.kind == "nonbroadcastable-lasso":
            stem, cycle = self.lasso
            return (
                "Admissible sequence with no broadcaster: "
                f"stem={stem!r}, cycle={cycle!r}; by the input-flipping "
                "chain of Theorem 5.11 its component joins all valences."
            )
        return self.induction.explain()

    def __repr__(self) -> str:
        return f"ImpossibilityWitness(kind={self.kind!r})"


class BroadcasterCertificate:
    """Why consensus is solvable without a finite-depth decision table.

    ``process`` is heard by everyone eventually in every admissible
    sequence; "decide ``x_process`` upon hearing it" is a correct
    algorithm (every connected component is broadcastable by ``process``).
    """

    __slots__ = ("process",)

    def __init__(self, process: int) -> None:
        self.process = process

    def explain(self) -> str:
        return (
            f"Process {self.process} is a guaranteed broadcaster: every "
            "admissible sequence eventually delivers its input to all; "
            "decide x_{p} upon hearing it (Theorem 5.11/6.7)."
        )

    def __repr__(self) -> str:
        return f"BroadcasterCertificate(process={self.process})"


class SolvabilityResult:
    """Complete outcome of :func:`check_consensus`."""

    __slots__ = (
        "adversary",
        "spec",
        "status",
        "decision_table",
        "broadcaster",
        "impossibility",
        "history",
        "certified_depth",
        "max_depth",
    )

    def __init__(self, **kwargs) -> None:
        for key in self.__slots__:
            setattr(self, key, kwargs.get(key))

    @property
    def solvable(self) -> bool:
        """True iff status is SOLVABLE."""
        return self.status is SolvabilityStatus.SOLVABLE

    def algorithm(self):
        """The executable consensus algorithm of the certificate.

        Returns a ready-to-run
        :class:`~repro.simulation.algorithms.ConsensusAlgorithm`: the
        universal algorithm for a decision-table certificate, or the
        decide-on-broadcaster rule for a guaranteed-broadcaster
        certificate.  Raises for non-solvable results.
        """
        from repro.simulation.algorithms import (
            BroadcastValueAlgorithm,
            UniversalAlgorithm,
        )

        if self.decision_table is not None:
            return UniversalAlgorithm(self.decision_table)
        if self.broadcaster is not None:
            return BroadcastValueAlgorithm(
                ViewInterner(self.adversary.n), self.broadcaster.process
            )
        raise AnalysisError(
            f"{self.adversary.name} is {self.status.value}: no algorithm"
        )

    def theorem_6_6_consistency(self) -> list[bool]:
        """Per-depth agreement of "no bivalence" with "all broadcastable".

        For compact adversaries Theorem 6.6 predicts the two certificates
        coincide in the limit; on the paper's examples they coincide at
        every depth, which the tests assert.
        """
        return [
            (report.bivalent == 0) == (report.non_broadcastable == 0)
            for report in self.history
        ]

    def explain(self) -> str:
        """One-paragraph summary of the verdict and its certificate."""
        lines = [
            f"{self.adversary.name}: {self.status.value.upper()} "
            f"(explored depth <= {self.max_depth})"
        ]
        if self.decision_table is not None:
            lines.append(
                f"  decision table certified at depth {self.certified_depth} "
                f"with {len(self.decision_table.assignment)} components"
            )
        if self.broadcaster is not None:
            lines.append("  " + self.broadcaster.explain())
        if self.impossibility is not None:
            lines.append("  " + self.impossibility.explain().replace("\n", "\n  "))
        for report in self.history:
            lines.append(f"  {report!r}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"SolvabilityResult({self.adversary.name}, {self.status.name}, "
            f"depth={self.certified_depth})"
        )


_UNSET = object()


def check_consensus(
    adversary: MessageAdversary,
    spec: ConsensusSpec | None = None,
    input_vectors: Iterable[Sequence] | None = None,
    max_depth: int | object = _UNSET,
    interner: ViewInterner | None = None,
    max_nodes: int | object = _UNSET,
    use_impossibility_provers: bool | object = _UNSET,
    use_broadcaster_certificate: bool | object = _UNSET,
    memo_extensions: bool | None | object = _UNSET,
    options: CheckOptions | None = None,
) -> SolvabilityResult:
    """Decide consensus solvability under a message adversary.

    This is the keyword-compatibility wrapper over
    :func:`check_consensus_with_options`: the tuning keywords
    (``max_depth=10``, ``max_nodes=2_000_000``, the certificate toggles,
    ``memo_extensions`` — defaults as in :class:`CheckOptions`) are folded
    into a :class:`CheckOptions`, overriding ``options`` field-by-field
    when both are given.  New code should pass ``options`` (or use
    :class:`repro.api.Session`).

    Parameters
    ----------
    adversary:
        The message adversary.
    spec:
        Input domain and validity condition (default binary, weak validity).
    input_vectors:
        Restrict the input assignments (default: the full assignment space
        of the spec's domain, as in the paper).
    options:
        A :class:`CheckOptions` bundle; explicit keywords win over it.

    Returns
    -------
    SolvabilityResult
        With an executable certificate: a validated
        :class:`~repro.consensus.decision.DecisionTable`, a
        :class:`BroadcasterCertificate`, or an
        :class:`ImpossibilityWitness`; UNDECIDED carries the depth history.
    """
    overrides = {
        name: value
        for name, value in (
            ("max_depth", max_depth),
            ("max_nodes", max_nodes),
            ("use_impossibility_provers", use_impossibility_provers),
            ("use_broadcaster_certificate", use_broadcaster_certificate),
            ("memo_extensions", memo_extensions),
        )
        if value is not _UNSET
    }
    effective = options or CheckOptions()
    if overrides:
        effective = effective.replace(**overrides)
    return check_consensus_with_options(
        adversary,
        effective,
        spec=spec,
        input_vectors=input_vectors,
        interner=interner,
    )


def check_consensus_with_options(
    adversary: MessageAdversary,
    options: CheckOptions,
    spec: ConsensusSpec | None = None,
    input_vectors: Iterable[Sequence] | None = None,
    interner: ViewInterner | None = None,
) -> SolvabilityResult:
    """The options-driven checker core behind :func:`check_consensus`."""
    max_depth = options.max_depth
    max_nodes = options.max_nodes
    use_impossibility_provers = options.use_impossibility_provers
    use_broadcaster_certificate = options.use_broadcaster_certificate
    memo_extensions = options.memo_extensions
    spec = spec or ConsensusSpec()
    if input_vectors is None:
        input_vectors = all_assignments(adversary.n, spec.domain)

    history: list[DepthReport] = []

    # 1. Sound impossibility certificates.
    impossibility = None
    if use_impossibility_provers:
        lasso = find_nonbroadcastable_lasso(adversary)
        if lasso is not None:
            impossibility = ImpossibilityWitness(
                "nonbroadcastable-lasso", lasso=lasso
            )
        else:
            # Applies to oblivious adversaries and, via the oblivious core,
            # to any limit-closed adversary.
            induction = SingleComponentInduction(adversary)
            if induction.applies:
                impossibility = ImpossibilityWitness(
                    "single-component-induction", induction=induction
                )
    if impossibility is not None:
        return SolvabilityResult(
            adversary=adversary,
            spec=spec,
            status=SolvabilityStatus.IMPOSSIBLE,
            impossibility=impossibility,
            history=history,
            certified_depth=None,
            max_depth=max_depth,
        )

    # 2. Iterative deepening for a decision-table certificate.
    space = PrefixSpace(
        adversary,
        input_vectors=input_vectors,
        interner=interner,
        max_nodes=max_nodes,
        memo_extensions=memo_extensions,
        layer_backend=options.layer_backend,
        plan_cache_size=options.plan_cache_size,
        extension_workers=options.extension_workers,
    )
    table: DecisionTable | None = None
    certified_depth = None
    for depth in range(max_depth + 1):
        try:
            analysis = ComponentAnalysis(space, depth)
        except AnalysisError:
            break
        history.append(DepthReport(analysis.summary()))
        if all(spec.allowed_values(c) for c in analysis.components):
            table = build_decision_table(analysis, spec)
            certified_depth = depth
            break

    if table is not None:
        return SolvabilityResult(
            adversary=adversary,
            spec=spec,
            status=SolvabilityStatus.SOLVABLE,
            decision_table=table,
            history=history,
            certified_depth=certified_depth,
            max_depth=max_depth,
        )

    # 3. Guaranteed-broadcaster certificate (decisive for non-compact
    #    adversaries whose prefix spaces never separate).
    if use_broadcaster_certificate:
        broadcaster = find_guaranteed_broadcaster(adversary)
        if broadcaster is not None:
            return SolvabilityResult(
                adversary=adversary,
                spec=spec,
                status=SolvabilityStatus.SOLVABLE,
                broadcaster=BroadcasterCertificate(broadcaster),
                history=history,
                certified_depth=None,
                max_depth=max_depth,
            )

    return SolvabilityResult(
        adversary=adversary,
        spec=spec,
        status=SolvabilityStatus.UNDECIDED,
        history=history,
        certified_depth=None,
        max_depth=max_depth,
    )
