"""Consensus solvability: checker, certificates, baselines (Sections 5-6).

The package turns the paper's characterizations into executable decision
procedures:

* :func:`~repro.consensus.solvability.check_consensus` — the orchestrated
  checker (Theorems 5.5/5.11/6.6/6.7) returning validated certificates;
* :mod:`~repro.consensus.decision` — decision tables (the universal
  algorithm's lookup structure);
* :mod:`~repro.consensus.provers` — sound impossibility/solvability
  provers (non-broadcastable lassos, single-component induction,
  guaranteed broadcasters);
* :mod:`~repro.consensus.broadcastability` — Definition 5.8 analysis and
  the Theorem 6.6 ε-sweeps;
* :mod:`~repro.consensus.bivalence` — forever-bivalent runs (Section 6.1);
* :mod:`~repro.consensus.baselines` — literature criteria for comparison.
"""

from repro.consensus.baselines import (
    cgp_beta_classes,
    cgp_predicts_solvable,
    common_root_member,
    santoro_widmayer_applies,
)
from repro.consensus.bivalence import (
    BivalentRun,
    bivalence_history,
    forever_bivalent_run,
)
from repro.consensus.broadcastability import (
    ComponentBroadcastReport,
    broadcastability_report,
    minimal_broadcast_depth,
    minimal_separation_depth,
)
from repro.consensus.census import (
    CensusRow,
    random_rooted_census,
    two_process_census,
)
from repro.consensus.decision import DecisionTable, build_decision_table
from repro.consensus.decision_times import (
    decision_round_histogram,
    earliest_possible_round,
    worst_case_decision_round,
)
from repro.consensus.fairsequences import (
    FairSequenceCandidate,
    fair_sequence_candidates,
)
from repro.consensus.kset import KSetTable, check_kset_by_depth, kset_depth_sweep
from repro.consensus.provers import (
    SingleComponentInduction,
    find_guaranteed_broadcaster,
    find_lasso_avoiding_broadcast_by,
    find_nonbroadcastable_lasso,
    oblivious_core,
    oblivious_cores,
    two_process_oblivious_verdict,
)
from repro.consensus.solvability import (
    BroadcasterCertificate,
    DepthReport,
    ImpossibilityWitness,
    SolvabilityResult,
    SolvabilityStatus,
    check_consensus,
)
from repro.consensus.spec import STRONG, WEAK, ConsensusSpec

__all__ = [
    "BivalentRun",
    "BroadcasterCertificate",
    "CensusRow",
    "ComponentBroadcastReport",
    "ConsensusSpec",
    "DecisionTable",
    "DepthReport",
    "FairSequenceCandidate",
    "ImpossibilityWitness",
    "KSetTable",
    "check_kset_by_depth",
    "kset_depth_sweep",
    "STRONG",
    "SingleComponentInduction",
    "SolvabilityResult",
    "SolvabilityStatus",
    "WEAK",
    "bivalence_history",
    "broadcastability_report",
    "build_decision_table",
    "cgp_beta_classes",
    "cgp_predicts_solvable",
    "check_consensus",
    "common_root_member",
    "decision_round_histogram",
    "earliest_possible_round",
    "fair_sequence_candidates",
    "find_guaranteed_broadcaster",
    "find_lasso_avoiding_broadcast_by",
    "find_nonbroadcastable_lasso",
    "forever_bivalent_run",
    "minimal_broadcast_depth",
    "minimal_separation_depth",
    "oblivious_core",
    "oblivious_cores",
    "random_rooted_census",
    "santoro_widmayer_applies",
    "two_process_census",
    "two_process_oblivious_verdict",
    "worst_case_decision_round",
]
