"""Literature baselines for oblivious adversaries.

The paper's Theorem 6.6 subsumes the earlier combinatorial
characterizations; this module implements those earlier criteria so the
benchmarks can compare verdicts:

* :func:`common_root_member` — the classic *sufficient* condition: a
  process that belongs to the (unique) root component of every graph of
  ``D`` broadcasts within ``n - 1`` rounds of any sequence, so "decide its
  input at round n-1" works.

* :func:`cgp_beta_classes` / :func:`cgp_predicts_solvable` — a
  *reconstruction* of the Coulouma–Godard–Peters criterion [8] in its
  root-intersection form: chain graphs whose root sets intersect, and
  require every chained class to retain a common root member.  This matches
  [8] on the two-process families and on the broadcastable families used in
  the paper; it is labelled a heuristic because the original β-relation is
  finer on some adversaries — the census tooling reports any disagreement
  with the topological checker instead of hiding it.

* :func:`santoro_widmayer_applies` — the [21] impossibility premise: the
  adversary dominates the "up to n-1 lost messages per round" family.
"""

from __future__ import annotations

from repro.adversaries.generators import santoro_widmayer_family
from repro.adversaries.oblivious import ObliviousAdversary
from repro.core.digraph import Digraph
from repro.errors import AnalysisError
from repro.topology.components import UnionFind

__all__ = [
    "common_root_member",
    "cgp_beta_classes",
    "cgp_predicts_solvable",
    "santoro_widmayer_applies",
]


def common_root_member(adversary: ObliviousAdversary) -> int | None:
    """A process inside the root component of *every* graph of ``D``.

    Sufficient for solvability: its heard-of set grows by at least one
    process per round in any admissible sequence, completing a broadcast
    within ``n - 1`` rounds.  Returns the smallest such process or None.
    """
    graphs = adversary.graphs
    candidates = set(range(adversary.n))
    for g in graphs:
        candidates &= set(g.broadcasters)
        if not candidates:
            return None
    return min(candidates)


def cgp_beta_classes(
    adversary: ObliviousAdversary,
) -> list[tuple[frozenset[Digraph], frozenset[int]]]:
    """Root-intersection classes of ``D`` (CGP reconstruction).

    Two graphs are related when their root sets (union of root-component
    members) intersect; classes are the transitive closure.  Each class is
    returned with the intersection of its members' root sets.
    """
    graphs = sorted(adversary.graphs)
    if not graphs:
        raise AnalysisError("adversary has no graphs")
    uf = UnionFind(len(graphs))
    for i, g in enumerate(graphs):
        for j in range(i + 1, len(graphs)):
            if g.roots & graphs[j].roots:
                uf.union(i, j)
    classes: dict[int, list[int]] = {}
    for i in range(len(graphs)):
        classes.setdefault(uf.find(i), []).append(i)
    result = []
    for members in classes.values():
        class_graphs = frozenset(graphs[i] for i in members)
        common = frozenset(range(adversary.n))
        for i in members:
            common &= graphs[i].roots
        result.append((class_graphs, common))
    return result


def cgp_predicts_solvable(adversary: ObliviousAdversary) -> bool:
    """The CGP-reconstruction verdict: every β-class keeps a common root.

    Additionally every graph must be rooted (a graph with two root
    components repeated forever has no broadcaster — impossible).
    """
    if any(not g.is_rooted for g in adversary.graphs):
        return False
    return all(common for _, common in cgp_beta_classes(adversary))


def santoro_widmayer_applies(adversary: ObliviousAdversary) -> bool:
    """Whether [21]'s impossibility premise holds: D ⊇ the (n-1)-loss family.

    Adversaries are monotone in their graph sets (more choices = more
    power), so dominating the impossible family is itself impossible.
    """
    family = santoro_widmayer_family(adversary.n, adversary.n - 1)
    return adversary.graphs >= family.graphs
