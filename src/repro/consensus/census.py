"""Census tooling: systematic classification of adversary families.

Sweeps a family of adversaries through the checker and cross-validates the
verdicts against the literature oracles and the CGP reconstruction.  The
census is the reproduction's instrument for the claims of Section 6.2: for
two processes the classification is provably complete; for three processes
it reports exactly where the heuristic baseline diverges from the certified
checker.
"""

from __future__ import annotations

import random
from itertools import combinations
from typing import Iterable

from repro.adversaries.generators import random_oblivious_adversary
from repro.adversaries.oblivious import ObliviousAdversary
from repro.consensus.baselines import cgp_predicts_solvable
from repro.consensus.provers import two_process_oblivious_verdict
from repro.consensus.solvability import (
    SolvabilityResult,
    SolvabilityStatus,
    check_consensus,
)
from repro.core.digraph import arrow

__all__ = ["CensusRow", "two_process_census", "random_rooted_census"]


class CensusRow:
    """One classified adversary with all verdicts side by side."""

    __slots__ = ("adversary", "result", "oracle", "cgp")

    def __init__(
        self,
        adversary: ObliviousAdversary,
        result: SolvabilityResult,
        oracle: bool | None,
        cgp: bool,
    ) -> None:
        self.adversary = adversary
        self.result = result
        self.oracle = oracle
        self.cgp = cgp

    @property
    def checker_solvable(self) -> bool | None:
        """Checker verdict (None when undecided)."""
        if self.result.status is SolvabilityStatus.UNDECIDED:
            return None
        return self.result.solvable

    @property
    def oracle_agrees(self) -> bool | None:
        """Agreement with the exact literature oracle (None without oracle)."""
        if self.oracle is None or self.checker_solvable is None:
            return None
        return self.checker_solvable == self.oracle

    @property
    def cgp_agrees(self) -> bool | None:
        """Agreement with the CGP reconstruction heuristic."""
        if self.checker_solvable is None:
            return None
        return self.checker_solvable == self.cgp

    @property
    def certificate(self) -> str:
        """Short description of the checker's certificate."""
        result = self.result
        if result.decision_table is not None:
            return f"decision-table@{result.certified_depth}"
        if result.broadcaster is not None:
            return f"broadcaster p{result.broadcaster.process}"
        if result.impossibility is not None:
            return result.impossibility.kind
        return "-"

    def __repr__(self) -> str:
        return (
            f"CensusRow({self.adversary.name}, checker={self.checker_solvable}, "
            f"oracle={self.oracle}, cgp={self.cgp})"
        )


def two_process_census(max_depth: int = 6) -> list[CensusRow]:
    """Classify all 15 nonempty two-process oblivious adversaries.

    Every row carries the exact literature verdict; the census is complete
    and the test suite asserts full agreement.
    """
    graphs = [arrow("->"), arrow("<-"), arrow("<->"), arrow("none")]
    rows = []
    for size in range(1, len(graphs) + 1):
        for subset in combinations(graphs, size):
            adversary = ObliviousAdversary(2, subset)
            rows.append(
                CensusRow(
                    adversary,
                    check_consensus(adversary, max_depth=max_depth),
                    two_process_oblivious_verdict(adversary),
                    cgp_predicts_solvable(adversary),
                )
            )
    return rows


def random_rooted_census(
    rng: random.Random,
    n: int = 3,
    samples: int = 25,
    sizes: Iterable[int] = (1, 2, 3),
    max_depth: int = 4,
) -> list[CensusRow]:
    """Classify random rooted oblivious adversaries on ``n`` processes.

    No exact oracle exists here, so ``oracle`` is None; the interesting
    output is where the CGP reconstruction disagrees with the checker's
    certified verdicts.
    """
    sizes = tuple(sizes)
    rows = []
    for _ in range(samples):
        adversary = random_oblivious_adversary(
            rng, n, size=rng.choice(sizes), rooted_only=True
        )
        rows.append(
            CensusRow(
                adversary,
                check_consensus(adversary, max_depth=max_depth),
                None,
                cgp_predicts_solvable(adversary),
            )
        )
    return rows
