"""Census tooling: systematic classification of adversary families.

Sweeps a family of adversaries through the checker and cross-validates the
verdicts against the literature oracles and the CGP reconstruction.  The
census is the reproduction's instrument for the claims of Section 6.2: for
two processes the classification is provably complete; for three processes
it reports exactly where the heuristic baseline diverges from the certified
checker.

Both censuses run on the sweep engine (:mod:`repro.sweep`): pass
``workers > 1`` (or an explicit :class:`~repro.backends.SweepBackend`) to
fan the checker jobs out.  Every row is backed by the same versioned
:class:`~repro.records.RunRecord` schema the sweep engine writes — with
the census's ``oracle``/``cgp`` cross-validation verdicts filled in — so a
census serializes to the same JSONL streams (``jsonl_path=...``) and feeds
the same :mod:`repro.analysis` reports as any other sweep.  The serial
path (``workers=1``) additionally keeps the full
:class:`~repro.consensus.solvability.SolvabilityResult` on each row
(``row.result`` is ``None`` on fanned-out rows — certificates, verdicts,
and depths are identical).
"""

from __future__ import annotations

import copy
import random
import time
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.adversaries.generators import (
    random_rooted_family,
    two_process_oblivious_family,
)
from repro.adversaries.oblivious import ObliviousAdversary
from repro.consensus.baselines import cgp_predicts_solvable
from repro.consensus.provers import two_process_oblivious_verdict
from repro.consensus.solvability import (
    SolvabilityResult,
    SolvabilityStatus,
    check_consensus,
)
from repro.records import RunRecord, certificate_summary, write_jsonl

if TYPE_CHECKING:  # pragma: no cover - type-only (avoids an import cycle)
    from repro.backends import SweepBackend

__all__ = ["CensusRow", "two_process_census", "random_rooted_census"]


class CensusRow:
    """One classified adversary with all verdicts side by side.

    The row is a thin view over a :class:`~repro.records.RunRecord`
    (``row.record``) that keeps the live adversary — and, on the serial
    path, the full checker result — attached for interactive use.
    """

    __slots__ = ("adversary", "record", "result")

    def __init__(
        self,
        adversary: ObliviousAdversary,
        status: SolvabilityStatus | str | None = None,
        certificate: str | None = None,
        certified_depth: int | None = None,
        oracle: bool | None = None,
        cgp: bool | None = None,
        result: SolvabilityResult | None = None,
        record: RunRecord | None = None,
    ) -> None:
        if record is None:
            # Legacy field-by-field construction: synthesize the record.
            record = RunRecord(
                index=0,
                adversary=adversary.name,
                n=adversary.n,
                alphabet=len(adversary.alphabet()),
                max_depth=result.max_depth if result is not None else 0,
                status=(
                    status.value
                    if isinstance(status, SolvabilityStatus)
                    else status
                ),
                certified_depth=certified_depth,
                certificate=certificate,
                elapsed_s=0.0,
                views_interned=0,
                shard=0,
                oracle=oracle,
                cgp=cgp,
            )
        self.adversary = adversary
        self.record = record
        #: The full checker result (serial path only; None on sweep records).
        self.result = result

    @classmethod
    def from_result(
        cls,
        adversary: ObliviousAdversary,
        result: SolvabilityResult,
        oracle: bool | None,
        cgp: bool,
        index: int = 0,
        elapsed_s: float = 0.0,
        views_interned: int = 0,
    ) -> "CensusRow":
        """Row backed by a full in-process checker result."""
        record = RunRecord(
            index=index,
            adversary=adversary.name,
            n=adversary.n,
            alphabet=len(adversary.alphabet()),
            max_depth=result.max_depth,
            status=result.status.value,
            certified_depth=result.certified_depth,
            certificate=certificate_summary(result),
            elapsed_s=elapsed_s,
            views_interned=views_interned,
            shard=0,
            oracle=oracle,
            cgp=cgp,
        )
        return cls(adversary, result=result, record=record)

    @classmethod
    def from_record(
        cls,
        adversary: ObliviousAdversary,
        record: RunRecord,
        oracle: bool | None,
        cgp: bool,
    ) -> "CensusRow":
        """Row backed by a sweep-engine record (cross-verdicts attached).

        The caller's record is not modified: the row owns a copy with the
        ``oracle``/``cgp`` fields filled in, so records already written to
        (or compared against) a JSONL stream stay untouched.
        """
        record = copy.copy(record)
        record.oracle = oracle
        record.cgp = cgp
        return cls(adversary, record=record)

    # Record-backed views ------------------------------------------------ #

    @property
    def status(self) -> SolvabilityStatus:
        return SolvabilityStatus(self.record.status)

    @property
    def certificate(self) -> str:
        return self.record.certificate

    @property
    def certified_depth(self) -> int | None:
        return self.record.certified_depth

    @property
    def oracle(self) -> bool | None:
        return self.record.oracle

    @property
    def cgp(self) -> bool:
        return self.record.cgp

    @property
    def checker_solvable(self) -> bool | None:
        """Checker verdict (None when undecided)."""
        return self.record.solvable

    @property
    def oracle_agrees(self) -> bool | None:
        """Agreement with the exact literature oracle (None without oracle)."""
        if self.oracle is None or self.checker_solvable is None:
            return None
        return self.checker_solvable == self.oracle

    @property
    def cgp_agrees(self) -> bool | None:
        """Agreement with the CGP reconstruction heuristic."""
        if self.checker_solvable is None:
            return None
        return self.checker_solvable == self.cgp

    def __repr__(self) -> str:
        return (
            f"CensusRow({self.adversary.name}, checker={self.checker_solvable}, "
            f"oracle={self.oracle}, cgp={self.cgp})"
        )


def _classify(
    adversaries: Iterable[ObliviousAdversary],
    max_depth: int,
    workers: int,
    oracle_fn,
    backend: SweepBackend | None = None,
    jsonl_path: str | Path | None = None,
    store=None,
) -> list[CensusRow]:
    """Run the checker over a family and attach oracle/CGP verdicts."""
    # Lazy: repro.sweep pulls in the backends module, which imports this
    # package — resolving it at call time keeps module import acyclic.
    from repro.sweep import jobs_for, run_sweep

    adversaries = list(adversaries)
    if backend is not None or workers > 1 or store is not None:
        records = run_sweep(
            jobs_for(adversaries, max_depth),
            workers=workers,
            backend=backend,
            store=store,
        )
        rows = [
            CensusRow.from_record(
                adversary, record, oracle_fn(adversary), cgp_predicts_solvable(adversary)
            )
            for adversary, record in zip(adversaries, records)
        ]
    else:
        # Serial path: share one interner per process count across the
        # family, exactly as a sweep shard would — same-n jobs reuse view
        # tables and the memoized level extensions.
        from repro.core.views import ViewInterner

        interners: dict[int, ViewInterner] = {}
        rows = []
        for index, adversary in enumerate(adversaries):
            interner = interners.get(adversary.n)
            if interner is None:
                interner = interners[adversary.n] = ViewInterner(adversary.n)
            before = len(interner)
            start = time.perf_counter()
            result = check_consensus(
                adversary, max_depth=max_depth, interner=interner
            )
            elapsed = time.perf_counter() - start
            rows.append(
                CensusRow.from_result(
                    adversary,
                    result,
                    oracle_fn(adversary),
                    cgp_predicts_solvable(adversary),
                    index=index,
                    elapsed_s=elapsed,
                    views_interned=len(interner) - before,
                )
            )
    if jsonl_path is not None:
        write_jsonl([row.record for row in rows], jsonl_path)
    return rows


def two_process_census(
    max_depth: int = 6,
    workers: int = 1,
    backend: SweepBackend | None = None,
    jsonl_path: str | Path | None = None,
    store=None,
) -> list[CensusRow]:
    """Classify all 15 nonempty two-process oblivious adversaries.

    Every row carries the exact literature verdict; the census is complete
    and the test suite asserts full agreement.  ``workers > 1`` (or an
    explicit ``backend``) fans the checker jobs out through the sweep
    engine; a ``store`` (result-store instance or path) routes the jobs
    through the content-addressed cache, so a repeat census is pure
    lookups; ``jsonl_path`` writes the rows' records as a standard
    versioned JSONL stream.
    """
    return _classify(
        two_process_oblivious_family(),
        max_depth,
        workers,
        two_process_oblivious_verdict,
        backend=backend,
        jsonl_path=jsonl_path,
        store=store,
    )


def random_rooted_census(
    rng: random.Random,
    n: int = 3,
    samples: int = 25,
    sizes: Iterable[int] = (1, 2, 3),
    max_depth: int = 4,
    workers: int = 1,
    backend: SweepBackend | None = None,
    jsonl_path: str | Path | None = None,
    store=None,
) -> list[CensusRow]:
    """Classify random rooted oblivious adversaries on ``n`` processes.

    No exact oracle exists here, so ``oracle`` is None; the interesting
    output is where the CGP reconstruction disagrees with the checker's
    certified verdicts.  Sampling happens in this process with the explicit
    ``rng`` (the family — and the shard assignment of every sample — is a
    pure function of the seed); only the checker jobs fan out to workers.
    """
    family = random_rooted_family(rng, n, samples, sizes=tuple(sizes))
    return _classify(
        family,
        max_depth,
        workers,
        lambda adversary: None,
        backend=backend,
        jsonl_path=jsonl_path,
        store=store,
    )
