"""Census tooling: systematic classification of adversary families.

Sweeps a family of adversaries through the checker and cross-validates the
verdicts against the literature oracles and the CGP reconstruction.  The
census is the reproduction's instrument for the claims of Section 6.2: for
two processes the classification is provably complete; for three processes
it reports exactly where the heuristic baseline diverges from the certified
checker.

Both censuses run on the sharded sweep engine (:mod:`repro.sweep`): pass
``workers > 1`` to fan the checker jobs across processes.  The serial path
(``workers=1``) additionally keeps the full
:class:`~repro.consensus.solvability.SolvabilityResult` on each row; the
parallel path carries the engine's compact records instead (``row.result``
is ``None`` there — certificates, verdicts, and depths are identical).
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.adversaries.generators import (
    random_rooted_family,
    two_process_oblivious_family,
)
from repro.adversaries.oblivious import ObliviousAdversary
from repro.consensus.baselines import cgp_predicts_solvable
from repro.consensus.provers import two_process_oblivious_verdict
from repro.consensus.solvability import (
    SolvabilityResult,
    SolvabilityStatus,
    check_consensus,
)
from repro.sweep import SweepRecord, certificate_summary, jobs_for, run_sweep

__all__ = ["CensusRow", "two_process_census", "random_rooted_census"]


class CensusRow:
    """One classified adversary with all verdicts side by side."""

    __slots__ = (
        "adversary",
        "status",
        "certificate",
        "certified_depth",
        "oracle",
        "cgp",
        "result",
    )

    def __init__(
        self,
        adversary: ObliviousAdversary,
        status: SolvabilityStatus,
        certificate: str,
        certified_depth: int | None,
        oracle: bool | None,
        cgp: bool,
        result: SolvabilityResult | None = None,
    ) -> None:
        self.adversary = adversary
        self.status = status
        self.certificate = certificate
        self.certified_depth = certified_depth
        self.oracle = oracle
        self.cgp = cgp
        #: The full checker result (serial path only; None on sweep records).
        self.result = result

    @classmethod
    def from_result(
        cls,
        adversary: ObliviousAdversary,
        result: SolvabilityResult,
        oracle: bool | None,
        cgp: bool,
    ) -> "CensusRow":
        """Row backed by a full in-process checker result."""
        return cls(
            adversary,
            result.status,
            certificate_summary(result),
            result.certified_depth,
            oracle,
            cgp,
            result=result,
        )

    @classmethod
    def from_record(
        cls,
        adversary: ObliviousAdversary,
        record: SweepRecord,
        oracle: bool | None,
        cgp: bool,
    ) -> "CensusRow":
        """Row backed by a compact sweep-engine record."""
        return cls(
            adversary,
            SolvabilityStatus(record.status),
            record.certificate,
            record.certified_depth,
            oracle,
            cgp,
        )

    @property
    def checker_solvable(self) -> bool | None:
        """Checker verdict (None when undecided)."""
        if self.status is SolvabilityStatus.UNDECIDED:
            return None
        return self.status is SolvabilityStatus.SOLVABLE

    @property
    def oracle_agrees(self) -> bool | None:
        """Agreement with the exact literature oracle (None without oracle)."""
        if self.oracle is None or self.checker_solvable is None:
            return None
        return self.checker_solvable == self.oracle

    @property
    def cgp_agrees(self) -> bool | None:
        """Agreement with the CGP reconstruction heuristic."""
        if self.checker_solvable is None:
            return None
        return self.checker_solvable == self.cgp

    def __repr__(self) -> str:
        return (
            f"CensusRow({self.adversary.name}, checker={self.checker_solvable}, "
            f"oracle={self.oracle}, cgp={self.cgp})"
        )


def _classify(
    adversaries: Iterable[ObliviousAdversary],
    max_depth: int,
    workers: int,
    oracle_fn,
) -> list[CensusRow]:
    """Run the checker over a family and attach oracle/CGP verdicts."""
    adversaries = list(adversaries)
    if workers > 1:
        records = run_sweep(jobs_for(adversaries, max_depth), workers=workers)
        return [
            CensusRow.from_record(
                adversary, record, oracle_fn(adversary), cgp_predicts_solvable(adversary)
            )
            for adversary, record in zip(adversaries, records)
        ]
    # Serial path: share one interner per process count across the family,
    # exactly as a sweep shard would — same-n jobs reuse view tables and
    # the memoized level extensions.
    from repro.core.views import ViewInterner

    interners: dict[int, ViewInterner] = {}
    rows = []
    for adversary in adversaries:
        interner = interners.get(adversary.n)
        if interner is None:
            interner = interners[adversary.n] = ViewInterner(adversary.n)
        rows.append(
            CensusRow.from_result(
                adversary,
                check_consensus(adversary, max_depth=max_depth, interner=interner),
                oracle_fn(adversary),
                cgp_predicts_solvable(adversary),
            )
        )
    return rows


def two_process_census(max_depth: int = 6, workers: int = 1) -> list[CensusRow]:
    """Classify all 15 nonempty two-process oblivious adversaries.

    Every row carries the exact literature verdict; the census is complete
    and the test suite asserts full agreement.  ``workers > 1`` shards the
    checker jobs across processes through the sweep engine.
    """
    return _classify(
        two_process_oblivious_family(),
        max_depth,
        workers,
        two_process_oblivious_verdict,
    )


def random_rooted_census(
    rng: random.Random,
    n: int = 3,
    samples: int = 25,
    sizes: Iterable[int] = (1, 2, 3),
    max_depth: int = 4,
    workers: int = 1,
) -> list[CensusRow]:
    """Classify random rooted oblivious adversaries on ``n`` processes.

    No exact oracle exists here, so ``oracle`` is None; the interesting
    output is where the CGP reconstruction disagrees with the checker's
    certified verdicts.  Sampling happens in this process with the explicit
    ``rng`` (the family — and the shard assignment of every sample — is a
    pure function of the seed); only the checker jobs fan out to workers.
    """
    family = random_rooted_family(rng, n, samples, sizes=tuple(sizes))
    return _classify(family, max_depth, workers, lambda adversary: None)
