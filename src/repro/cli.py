"""Command-line interface: ``repro-consensus`` (the ``pyproject.toml`` entry point).

Subcommands:

* ``check`` — run the solvability checker on a named adversary;
* ``census`` — classify two-process (or random rooted) oblivious adversaries;
* ``sweep`` — fan a family of check jobs across a sweep backend (JSONL
  out); ``--manifest shard.json`` executes one serialized shard manifest,
  which is how :class:`~repro.backends.ManifestBackend` (and any external
  distributed runner) drives this process; ``--retry records.jsonl
  --max-depth +2`` re-queues only the undecided records of an earlier
  sweep at a deeper budget;
* ``fleet`` — fault-tolerant distributed sweep over a shared state
  directory: ``fleet run`` initializes the leased shard queue and drives
  worker subprocesses to completion (``--chaos`` injects deterministic
  faults), ``fleet status --json`` snapshots a live run (with an embedded
  sweep report over the merged-so-far records), ``fleet resume`` picks up
  after any crash, and ``fleet work`` is the spawned worker loop;
* ``report`` — render status/certificate histograms and pivot tables from
  a sweep JSONL file (old headerless or new versioned format); ``--json``
  emits the machine-readable ``repro.sweep-report/1`` document instead
  (incl. the CGP/oracle cross-validation sections) for CI artifacts and
  dashboards;
* ``cache`` — inspect and maintain a content-addressed result store:
  ``cache stats``, ``cache gc`` (stale-object sweep + optional
  ``--max-objects``/``--max-bytes`` budget), ``cache verify`` (re-hash
  every object against its canonical payload);
* ``serve`` — the asyncio consensus-query service over a result store:
  hot queries are O(1) store lookups, cold queries queue onto a bounded
  worker pool with status polling and streamed progress;
* ``load-test`` — drive thousands of concurrent mixed hot/cold queries
  at a (self-hosted or remote) query service and audit that no response
  is lost or duplicated;
* ``simulate`` — run the universal algorithm against sampled sequences;
* ``ptg`` — print the Figure 2 process-time graph.

All randomized subcommands take an explicit ``--seed`` and thread a local
``random.Random`` through — nothing mutates the global ``random`` state.

Named adversaries (``--adversary``, the ``named`` spec family):
``lossy-full``, ``no-hub``, ``silence``, ``to-and-both``, ``only-to``,
``eventually-to``, ``eventually-to-full-base``, ``sw-n3-1``, ``sw-n3-2``,
``stars-n3``, ``stabilizing-w2``.
"""

from __future__ import annotations

import argparse
import random
import sys
from collections import Counter

from repro.core.digraph import Digraph
from repro.specs import NAMED_ADVERSARIES

#: Backwards-compatible alias: the named table now lives in ``repro.specs``
#: so sweep manifests (the ``named`` family) and the CLI share it.
ADVERSARIES = NAMED_ADVERSARIES


def _resolve(name: str):
    try:
        return ADVERSARIES[name]()
    except KeyError:
        raise SystemExit(
            f"unknown adversary {name!r}; choose from {sorted(ADVERSARIES)}"
        )


def cmd_check(args: argparse.Namespace) -> int:
    from repro.consensus import check_consensus
    from repro.core.views import ViewInterner

    adversary = _resolve(args.adversary)
    interner = ViewInterner(adversary.n) if args.stats else None
    # The interner here is for observability only: keep the extension memo
    # at its default-off setting so --stats measures the same run shape.
    result = check_consensus(
        adversary,
        max_depth=args.max_depth,
        interner=interner,
        memo_extensions=False if interner is not None else None,
    )
    print(result.explain())
    if interner is not None:
        print(f"  view tables: {interner.stats()!r}")
    return 0


def cmd_census(args: argparse.Namespace) -> int:
    from repro.consensus.census import random_rooted_census, two_process_census
    from repro.viz import render_census

    if args.rooted:
        rng = random.Random(args.seed)
        rows = random_rooted_census(
            rng,
            n=args.n,
            samples=args.samples,
            max_depth=args.max_depth,
            workers=args.workers,
        )
        print(render_census(rows))
        disagreements = sum(1 for row in rows if row.cgp_agrees is False)
        print(
            f"{len(rows)} random rooted adversaries (n={args.n}, "
            f"seed={args.seed}); CGP heuristic disagrees on {disagreements}"
        )
        return 0
    rows = two_process_census(max_depth=args.max_depth, workers=args.workers)
    print(render_census(rows))
    agreements = sum(1 for row in rows if row.oracle_agrees)
    print(f"{agreements}/{len(rows)} rows agree with the literature oracle: "
          f"{'True' if agreements == len(rows) else 'False'}")
    return 0 if agreements == len(rows) else 1


def _add_family_arguments(parser: argparse.ArgumentParser) -> None:
    """Scenario-family options shared by ``sweep`` and ``fleet run``."""
    parser.add_argument("--family", choices=["two-process", "rooted", "sw"],
                        default=None,
                        help="scenario family (default two-process)")
    parser.add_argument("--seed", type=int, default=0,
                        help="PRNG seed for sampled families")
    parser.add_argument("--n", type=int, default=3,
                        help="processes for rooted/sw families")
    parser.add_argument("--samples", type=int, default=25,
                        help="sample count for the rooted family")
    parser.add_argument("--sizes", type=int, nargs="+", default=[1, 2, 3],
                        help="alphabet sizes for the rooted family")
    parser.add_argument("--losses", type=int, default=1,
                        help="max losses for the Santoro-Widmayer family")


def _sweep_specs(args: argparse.Namespace) -> list:
    """The CLI family as serializable specs (manifest-ready jobs)."""
    from repro.adversaries import two_process_oblivious_family
    from repro.specs import AdversarySpec, random_rooted_specs

    family = args.family or "two-process"
    if family == "two-process":
        return [
            AdversarySpec("two-process", {"index": index})
            for index in range(len(two_process_oblivious_family()))
        ]
    if family == "rooted":
        return random_rooted_specs(
            args.seed, args.n, args.samples, sizes=tuple(args.sizes)
        )
    # sw
    return [
        AdversarySpec("santoro-widmayer", {"n": args.n, "losses": losses})
        for losses in range(1, args.losses + 1)
    ]


def _sweep_backend(args: argparse.Namespace):
    """Resolve --backend/--workers into a backend (None = worker default)."""
    from pathlib import Path

    from repro.backends import ManifestBackend, ProcessBackend, SerialBackend

    record_timing = not args.no_timing
    if args.backend == "serial":
        return SerialBackend(record_timing=record_timing)
    if args.backend == "process":
        return ProcessBackend(max(args.workers, 1), record_timing=record_timing)
    if args.backend == "manifest":
        workdir = args.manifest_dir
        if workdir is None:
            workdir = (
                Path(args.out).parent / "shards" if args.out else Path("sweep-shards")
            )
        return ManifestBackend(
            workdir, shards=max(args.workers, 1), record_timing=record_timing
        )
    if args.no_timing:
        # No explicit backend: mirror run_sweep's worker-count default but
        # thread record_timing through, which run_sweep cannot do itself.
        if args.workers <= 1:
            return SerialBackend(record_timing=False)
        return ProcessBackend(args.workers, record_timing=False)
    return None


def _parse_sweep_depth(args: argparse.Namespace) -> tuple[int | None, int | None]:
    """Resolve ``--max-depth`` into ``(absolute, extra)``.

    A leading ``+`` means "deepen relative to each retried record's old
    budget" and is only meaningful with ``--retry``; a bare integer is an
    absolute budget.  Defaults: 6 for fresh sweeps, ``+2`` for retries.
    """
    value = args.max_depth
    if value is None:
        return (6, None) if not args.retry else (None, 2)
    value = value.strip()
    if value.startswith("+"):
        if not args.retry:
            raise SystemExit("--max-depth +N is only valid with --retry")
        try:
            extra = int(value[1:])
        except ValueError:
            raise SystemExit(f"invalid --max-depth {value!r}")
        if extra <= 0:
            raise SystemExit("--max-depth +N must deepen the budget (N >= 1)")
        return None, extra
    try:
        return int(value), None
    except ValueError:
        raise SystemExit(f"invalid --max-depth {value!r}")


def _print_sweep_records(records, workers: int, out) -> None:
    """The sweep subcommand's classification table + summary footer."""
    header = (
        f"{'#':>3s} {'adversary':32s} {'status':11s} {'certificate':28s} "
        f"{'time':>9s} {'shard':>5s}"
    )
    print(header)
    print("-" * len(header))
    for record in records:
        print(
            f"{record.index:>3d} {record.adversary:32s} "
            f"{record.status.upper():11s} {record.certificate:28s} "
            f"{record.elapsed_s * 1e3:>7.1f}ms {record.shard:>5d}"
        )
    by_status = Counter(record.status for record in records)
    summary = ", ".join(
        f"{count} {status}" for status, count in sorted(by_status.items())
    )
    workers = max(1, min(workers, len(records)))
    print("-" * len(header))
    print(
        f"{len(records)} jobs on {workers} worker(s): {summary}; "
        f"total checker time {sum(r.elapsed_s for r in records):.3f}s"
    )
    if out:
        print(f"records written to {out}")


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sweep import jobs_for, run_manifest, run_sweep

    if args.manifest:
        # Shard-runner mode: execute one serialized manifest and exit.
        # This is the subprocess entry point of ManifestBackend — and of
        # any external runner that distributes shard files.
        from pathlib import Path

        records = run_manifest(args.manifest, out=args.out)
        by_status = Counter(record.status for record in records)
        summary = ", ".join(
            f"{count} {status}" for status, count in sorted(by_status.items())
        )
        # Mirror run_manifest's default output path exactly.
        out = args.out or Path(args.manifest).with_suffix(".jsonl")
        print(f"manifest {args.manifest}: {len(records)} jobs ({summary}) -> {out}")
        return 0

    absolute, extra = _parse_sweep_depth(args)
    if args.retry:
        # Re-queue the undecided frontier of an earlier sweep at a deeper
        # budget; everything decided stays decided and is not re-run.
        from repro.sweep import read_jsonl, retry_jobs

        if args.family is not None:
            # The retried records define the family; a combined
            # --family/--retry invocation would silently drop one of them.
            raise SystemExit(
                "--retry re-runs the records' own specs; "
                "it cannot be combined with --family"
            )
        jobs, skipped = retry_jobs(
            read_jsonl(args.retry), extra_depth=extra, max_depth=absolute
        )
        if skipped:
            print(
                f"note: {len(skipped)} undecided record(s) skipped "
                "(no serialized spec, or the new budget is not deeper "
                "than the original)"
            )
        if not jobs:
            print(f"{args.retry}: no undecided records to retry")
            return 0
    else:
        jobs = jobs_for(
            _sweep_specs(args),
            max_depth=absolute,
            tags={"family": args.family or "two-process", "seed": args.seed},
        )
    records = run_sweep(
        jobs,
        workers=args.workers,
        jsonl_path=args.out,
        backend=_sweep_backend(args),
        store=args.store,
    )
    _print_sweep_records(records, args.workers, args.out)
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    import json

    from repro.errors import ReproError
    from repro.store import ResultStore

    store = ResultStore(args.store)
    try:
        if args.cache_command == "stats":
            report = store.stats()
        elif args.cache_command == "verify":
            report = store.verify()
        else:
            report = store.gc(
                max_objects=args.max_objects, max_bytes=args.max_bytes
            )
    except ReproError as exc:
        print(f"cache {args.cache_command} failed: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(report, indent=2, sort_keys=True))
    if args.cache_command == "verify" and not report["ok"]:
        return 1
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import QueryService
    from repro.store import ResultStore

    async def _serve() -> None:
        service = QueryService(
            ResultStore(args.store),
            workers=args.workers,
            queue_limit=args.queue_limit,
        )
        host, port = await service.start(args.host, args.port)
        # The ready line the smoke tests and orchestrators wait for.
        print(f"repro-consensus serving on {host}:{port}", flush=True)
        try:
            await service.serve_forever()
        finally:
            await service.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("repro-consensus serve: shut down")
    return 0


def cmd_load_test(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.consensus.solvability import CheckOptions
    from repro.service import QueryService, run_load_test
    from repro.store import ResultStore

    if (args.store is None) == (args.connect is None):
        print("load-test needs exactly one of --store or --connect",
              file=sys.stderr)
        return 2
    options = CheckOptions(max_depth=args.max_depth)

    async def _run() -> dict:
        if args.connect:
            host, _, port = args.connect.rpartition(":")
            report = await run_load_test(
                host or "127.0.0.1",
                int(port),
                total=args.total,
                cold_stride=args.cold_stride,
                connections=args.connections,
                options=options,
            )
            return report.to_dict()
        # Self-hosted mode: spin a server over the given store in this
        # process, on an ephemeral port, and drive it.
        service = QueryService(
            ResultStore(args.store),
            workers=args.workers,
            queue_limit=args.queue_limit,
        )
        host, port = await service.start()
        try:
            report = await run_load_test(
                host,
                port,
                total=args.total,
                cold_stride=args.cold_stride,
                connections=args.connections,
                options=options,
            )
            result = report.to_dict()
            result["server_stats"] = service.stats()
            return result
        finally:
            await service.stop()

    result = asyncio.run(_run())
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0 if result["ok"] else 1


def _fleet_config(args: argparse.Namespace):
    from repro.fleet import ChaosSpec, FleetConfig

    chaos = ChaosSpec.parse(args.chaos) if args.chaos else None
    return FleetConfig(
        shards=args.shards,
        record_timing=not args.no_timing,
        lease_ttl_s=args.lease_ttl,
        heartbeat_s=args.heartbeat,
        max_attempts=args.max_attempts,
        backoff_base_s=args.backoff_base,
        backoff_cap_s=args.backoff_cap,
        poll_s=args.poll,
        seed=args.seed,
        chaos=chaos,
    )


def cmd_fleet_run(args: argparse.Namespace) -> int:
    from repro.backends import jobs_for
    from repro.errors import AnalysisError
    from repro.fleet import FleetRunner
    from repro.records import write_jsonl

    jobs = jobs_for(
        _sweep_specs(args),
        max_depth=args.max_depth,
        tags={"family": args.family or "two-process", "seed": args.seed},
    )
    runner = FleetRunner(args.dir)
    try:
        records = runner.run(
            jobs,
            config=_fleet_config(args),
            workers=args.workers,
            timeout_s=args.timeout,
        )
    except AnalysisError as exc:
        print(f"fleet run failed: {exc}", file=sys.stderr)
        return 1
    if args.out:
        write_jsonl(records, args.out)
    _print_sweep_records(records, args.workers, args.out)
    print(f"fleet state in {args.dir} (merged.jsonl is the record of truth)")
    return 0


def cmd_fleet_status(args: argparse.Namespace) -> int:
    import json

    from repro.analysis import json_report_jsonl
    from repro.errors import AnalysisError
    from repro.fleet.state import FleetPaths, snapshot

    try:
        snap = snapshot(args.dir)
    except AnalysisError as exc:
        print(f"fleet status failed: {exc}", file=sys.stderr)
        return 1
    if args.json:
        merged = FleetPaths(args.dir).merged
        if snap["counts"]["merged"] > 0 and merged.is_file():
            # Live mid-run reporting: the merged file only ever holds
            # validated whole shards, so the sweep report over it is
            # always well-formed — just partial until the fleet is done.
            snap["report"] = json.loads(json_report_jsonl(merged, top=args.top))
        print(json.dumps(snap, indent=2, sort_keys=True))
        return 0
    counts = snap["counts"]
    print(
        f"fleet {args.dir}: {counts['merged']}/{counts['shards']} shards "
        f"merged ({snap['records_merged']}/{snap['jobs']} records), "
        f"{counts['leased']} leased, {counts['pending']} pending, "
        f"{counts['poisoned']} poisoned"
    )
    for lease in snap["leases"]:
        holder = "alive" if lease["holder_alive"] else "DEAD"
        print(
            f"  shard {lease['shard']}: leased by {lease['worker']} "
            f"(attempt {lease['attempt']}, {holder}, "
            f"expires in {lease['expires_in_s']:.1f}s)"
        )
    for shard in snap["poisoned"]:
        print(f"  shard {shard}: POISONED")
    print("done" if snap["done"] else "in progress")
    return 0


def cmd_fleet_resume(args: argparse.Namespace) -> int:
    from repro.errors import AnalysisError
    from repro.fleet import FleetRunner
    from repro.records import write_jsonl

    runner = FleetRunner(args.dir)
    try:
        records = runner.resume(workers=args.workers, timeout_s=args.timeout)
    except AnalysisError as exc:
        print(f"fleet resume failed: {exc}", file=sys.stderr)
        return 1
    if args.out:
        write_jsonl(records, args.out)
    _print_sweep_records(records, args.workers, args.out)
    return 0


def cmd_fleet_work(args: argparse.Namespace) -> int:
    from repro.fleet import run_worker

    return run_worker(args.dir, args.worker)


def cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis import json_report_jsonl, report_jsonl

    if args.json:
        print(json_report_jsonl(args.records, top=args.top))
    else:
        print(report_jsonl(args.records, top=args.top))
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.consensus import check_consensus
    from repro.simulation import run_many

    adversary = _resolve(args.adversary)
    result = check_consensus(adversary, max_depth=args.max_depth)
    if not result.solvable:
        print(f"{adversary.name}: {result.status.name}; nothing to simulate")
        return 1
    algorithm = result.algorithm()
    rounds = (
        max(args.rounds, result.certified_depth)
        if result.certified_depth is not None
        else args.rounds
    )
    rng = random.Random(args.seed)
    stats = run_many(algorithm, adversary, rng, trials=args.trials, rounds=rounds)
    print(
        f"{adversary.name} x {algorithm.name}: {stats.runs} runs, "
        f"{stats.decided} decided, agreement failures "
        f"{stats.agreement_failures}, max decision round {stats.max_round}"
    )
    return 0


def cmd_kset(args: argparse.Namespace) -> int:
    from repro.consensus import check_kset_by_depth
    from repro.consensus.spec import ConsensusSpec

    adversary = _resolve(args.adversary)
    spec = ConsensusSpec(domain=tuple(range(args.values)))
    for depth in range(args.max_depth + 1):
        table = check_kset_by_depth(adversary, args.k, depth, spec=spec)
        if table is not None:
            print(
                f"{adversary.name}: {args.k}-set agreement solvable with "
                f"decisions by round {depth} ({len(table.assignment)} views)"
            )
            return 0
    print(
        f"{adversary.name}: no {args.k}-set certificate up to depth "
        f"{args.max_depth}"
    )
    return 1


def cmd_heardof(args: argparse.Namespace) -> int:
    from repro.adversaries.heardof import (
        min_degree_adversary,
        no_split_adversary,
        nonempty_kernel_adversary,
        rooted_adversary,
    )
    from repro.consensus import check_consensus

    factories = {
        "kernel": nonempty_kernel_adversary,
        "no-split": no_split_adversary,
        "rooted": rooted_adversary,
    }
    print(f"{'predicate':12s} {'|D|':>5s} {'verdict':11s}")
    for label, factory in factories.items():
        adversary = factory(args.n)
        result = check_consensus(adversary, max_depth=args.max_depth)
        print(f"{label:12s} {len(adversary.graphs):>5d} {result.status.name:11s}")
    complete = min_degree_adversary(args.n, args.n)
    result = check_consensus(complete, max_depth=args.max_depth)
    print(f"{'complete':12s} {len(complete.graphs):>5d} {result.status.name:11s}")
    return 0


def cmd_fair(args: argparse.Namespace) -> int:
    from repro.consensus import fair_sequence_candidates
    from repro.viz import render_word

    adversary = _resolve(args.adversary)
    candidates = fair_sequence_candidates(
        adversary, verify_depth=args.depth, limit=args.limit
    )
    if not candidates:
        print(
            f"{adversary.name}: no fair-sequence candidate survives depth "
            f"{args.depth} (evidence of solvability)"
        )
        return 0
    print(f"{adversary.name}: {len(candidates)} candidate(s) bivalent through depth {args.depth}")
    for candidate in candidates:
        sequence = candidate.sequence
        print(
            f"  inputs {sequence.inputs}, cycle [{render_word(sequence.cycle)}], "
            f"component sizes {candidate.component_sizes}"
        )
    return 0


def cmd_ptg(args: argparse.Namespace) -> int:
    from repro.core.ptg import PTGPrefix
    from repro.core.views import ViewInterner
    from repro.viz import render_ptg

    g1 = Digraph(3, [(0, 1), (2, 1)])
    g2 = Digraph(3, [(1, 0)])
    prefix = PTGPrefix(ViewInterner(3), (1, 0, 1), [g1, g2])
    print("Figure 2: process-time graph at t=2, n=3, x=(1,0,1)")
    print(render_ptg(prefix, highlight_process=args.process))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-consensus",
        description="Consensus under general message adversaries (PODC 2019 reproduction)",
        epilog=(
            "Installed as `repro-consensus` (see [project.scripts] in "
            "pyproject.toml); `python -m repro.cli` works from a source tree."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="run the solvability checker")
    check.add_argument("--adversary", required=True)
    check.add_argument("--max-depth", type=int, default=8)
    check.add_argument(
        "--stats", action="store_true",
        help="also print the view-table statistics of the run",
    )
    check.set_defaults(func=cmd_check)

    census = sub.add_parser("census", help="oblivious adversary census")
    census.add_argument("--max-depth", type=int, default=6)
    census.add_argument("--workers", type=int, default=1,
                        help="fan checker jobs across this many processes")
    census.add_argument("--rooted", action="store_true",
                        help="census random rooted adversaries instead of the "
                             "exhaustive two-process family")
    census.add_argument("--n", type=int, default=3, help="processes (--rooted)")
    census.add_argument("--samples", type=int, default=25,
                        help="sample count (--rooted)")
    census.add_argument("--seed", type=int, default=0,
                        help="PRNG seed for --rooted sampling")
    census.set_defaults(func=cmd_census)

    sweep = sub.add_parser(
        "sweep", help="sharded (adversary, depth) sweep with JSONL output"
    )
    _add_family_arguments(sweep)
    sweep.add_argument("--workers", type=int, default=1,
                       help="process/manifest shard count (ignored with "
                            "--backend serial)")
    sweep.add_argument("--backend", choices=["serial", "process", "manifest"],
                       help="sweep backend (default: serial for --workers 1, "
                            "process pool otherwise)")
    sweep.add_argument("--manifest",
                       help="run one serialized shard manifest and exit "
                            "(the ManifestBackend subprocess entry point)")
    sweep.add_argument("--manifest-dir",
                       help="shard file directory for --backend manifest")
    sweep.add_argument("--retry", metavar="RECORDS_JSONL",
                       help="re-queue only the undecided records of an "
                            "earlier sweep's JSONL at a deeper budget")
    sweep.add_argument("--max-depth", default=None,
                       help="depth budget: an integer (default 6), or +N "
                            "with --retry to deepen each retried record's "
                            "old budget by N (default +2)")
    sweep.add_argument("--out", help="write one JSON record per job to this file")
    sweep.add_argument("--no-timing", action="store_true",
                       help="zero the timing/observability fields so equal "
                            "sweeps are byte-identical across backends")
    sweep.add_argument("--store", metavar="DIR",
                       help="content-addressed result store: serve cached "
                            "verdicts as O(1) lookups and write computed "
                            "ones back (hits have zeroed timing)")
    sweep.set_defaults(func=cmd_sweep)

    cache = sub.add_parser(
        "cache", help="inspect/maintain a content-addressed result store"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    for name, help_text in (
        ("stats", "session-independent store counters, object count, bytes"),
        ("gc", "drop stale objects, optionally trim to a budget"),
        ("verify", "re-hash every object against its canonical payload"),
    ):
        cache_cmd = cache_sub.add_parser(name, help=help_text)
        cache_cmd.add_argument("--store", metavar="DIR", required=True,
                               help="store root directory")
        if name == "gc":
            cache_cmd.add_argument("--max-objects", type=int, default=None,
                                   help="keep at most this many objects "
                                        "(least recently put evicted first)")
            cache_cmd.add_argument("--max-bytes", type=int, default=None,
                                   help="trim the object payload to at most "
                                        "this many bytes")
        cache_cmd.set_defaults(func=cmd_cache)

    serve = sub.add_parser(
        "serve", help="asyncio consensus-query service over a result store"
    )
    serve.add_argument("--store", metavar="DIR", required=True,
                       help="result store backing the service")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (0 = ephemeral, printed on the "
                            "ready line)")
    serve.add_argument("--workers", type=int, default=2,
                       help="cold-query worker threads")
    serve.add_argument("--queue-limit", type=int, default=64,
                       help="max queued cold queries before rejection")
    serve.set_defaults(func=cmd_serve)

    load_test = sub.add_parser(
        "load-test",
        help="drive concurrent mixed hot/cold queries at a query service",
    )
    load_test.add_argument("--store", metavar="DIR",
                           help="self-host a server over this store on an "
                                "ephemeral port (default mode)")
    load_test.add_argument("--connect", metavar="HOST:PORT",
                           help="target an already-running server instead")
    load_test.add_argument("--total", type=int, default=1000,
                           help="total queries to issue")
    load_test.add_argument("--cold-stride", type=int, default=10,
                           help="every Nth query is cold (10 = 90/10 mix)")
    load_test.add_argument("--connections", type=int, default=50,
                           help="concurrent client connections")
    load_test.add_argument("--max-depth", type=int, default=2,
                           help="depth budget of the load-test queries")
    load_test.add_argument("--workers", type=int, default=2,
                           help="server worker threads (self-hosted mode)")
    load_test.add_argument("--queue-limit", type=int, default=256,
                           help="server queue limit (self-hosted mode)")
    load_test.set_defaults(func=cmd_load_test)

    fleet = sub.add_parser(
        "fleet",
        help="fault-tolerant distributed sweep (leases, retries, resume)",
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)

    fleet_run = fleet_sub.add_parser(
        "run", help="initialize a fleet directory and drive workers to done"
    )
    fleet_run.add_argument("--dir", required=True,
                           help="fleet state directory (must not already "
                                "hold a fleet)")
    _add_family_arguments(fleet_run)
    fleet_run.add_argument("--max-depth", type=int, default=6)
    fleet_run.add_argument("--shards", type=int, default=4,
                           help="work-queue shards (capped at the job count)")
    fleet_run.add_argument("--workers", type=int, default=2,
                           help="worker subprocesses to keep alive")
    fleet_run.add_argument("--chaos", default=None,
                           help="fault-injection schedule: inline JSON "
                                '{"events": [...]} or a path to one')
    fleet_run.add_argument("--no-timing", action="store_true",
                           help="zero timing fields (byte-identical to a "
                                "serial --no-timing sweep)")
    fleet_run.add_argument("--lease-ttl", type=float, default=15.0,
                           help="seconds before an unrenewed lease expires")
    fleet_run.add_argument("--heartbeat", type=float, default=3.0,
                           help="worker lease-renewal cadence in seconds")
    fleet_run.add_argument("--max-attempts", type=int, default=4,
                           help="attempts per shard before poisoning it")
    fleet_run.add_argument("--backoff-base", type=float, default=0.25,
                           help="base retry delay (doubles per failure)")
    fleet_run.add_argument("--backoff-cap", type=float, default=5.0,
                           help="retry delay ceiling in seconds")
    fleet_run.add_argument("--poll", type=float, default=0.2,
                           help="coordinator/worker poll interval in seconds")
    fleet_run.add_argument("--timeout", type=float, default=None,
                           help="abort the drive loop after this many seconds")
    fleet_run.add_argument("--out",
                           help="also copy the merged records to this file")
    fleet_run.set_defaults(func=cmd_fleet_run)

    fleet_status = fleet_sub.add_parser(
        "status", help="snapshot a fleet directory (live or finished)"
    )
    fleet_status.add_argument("--dir", required=True)
    fleet_status.add_argument("--json", action="store_true",
                              help="emit the repro.fleet-state/1 status "
                                   "document with an embedded sweep report "
                                   "over the merged-so-far records")
    fleet_status.add_argument("--top", type=int, default=5,
                              help="slowest-job count for the embedded report")
    fleet_status.set_defaults(func=cmd_fleet_status)

    fleet_resume = fleet_sub.add_parser(
        "resume", help="pick up an interrupted fleet exactly where it died"
    )
    fleet_resume.add_argument("--dir", required=True)
    fleet_resume.add_argument("--workers", type=int, default=2)
    fleet_resume.add_argument("--timeout", type=float, default=None)
    fleet_resume.add_argument("--out",
                              help="also copy the merged records to this file")
    fleet_resume.set_defaults(func=cmd_fleet_resume)

    fleet_work = fleet_sub.add_parser(
        "work", help="worker main loop (spawned by `fleet run`)"
    )
    fleet_work.add_argument("--dir", required=True)
    fleet_work.add_argument("--worker", required=True,
                            help="worker id stamped into leases and markers")
    fleet_work.set_defaults(func=cmd_fleet_work)

    report = sub.add_parser(
        "report", help="aggregate a sweep JSONL file into histograms/tables"
    )
    report.add_argument("records", help="sweep JSONL file (v1 or v2 schema)")
    report.add_argument("--top", type=int, default=5,
                        help="how many slowest jobs to list")
    report.add_argument("--json", action="store_true",
                        help="emit the machine-readable JSON report "
                             "(schema repro.sweep-report/1, incl. the "
                             "cross-validation sections) instead of text")
    report.set_defaults(func=cmd_report)

    simulate = sub.add_parser("simulate", help="simulate the certified algorithm")
    simulate.add_argument("--adversary", required=True)
    simulate.add_argument("--trials", type=int, default=50)
    simulate.add_argument("--rounds", type=int, default=8)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--max-depth", type=int, default=8)
    simulate.set_defaults(func=cmd_simulate)

    ptg = sub.add_parser("ptg", help="print the Figure 2 process-time graph")
    ptg.add_argument("--process", type=int, default=0)
    ptg.set_defaults(func=cmd_ptg)

    kset = sub.add_parser("kset", help="k-set agreement depth sweep")
    kset.add_argument("--adversary", required=True)
    kset.add_argument("--k", type=int, default=2)
    kset.add_argument("--values", type=int, default=2)
    kset.add_argument("--max-depth", type=int, default=3)
    kset.set_defaults(func=cmd_kset)

    heardof = sub.add_parser("heardof", help="classify Heard-Of predicate families")
    heardof.add_argument("--n", type=int, default=3)
    heardof.add_argument("--max-depth", type=int, default=3)
    heardof.set_defaults(func=cmd_heardof)

    fair = sub.add_parser("fair", help="extract fair-sequence candidates")
    fair.add_argument("--adversary", required=True)
    fair.add_argument("--depth", type=int, default=4)
    fair.add_argument("--limit", type=int, default=5)
    fair.set_defaults(func=cmd_fair)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
