"""Command-line interface: ``repro-cli``.

Subcommands:

* ``check`` — run the solvability checker on a named adversary;
* ``census`` — classify every two-process oblivious adversary;
* ``simulate`` — run the universal algorithm against sampled sequences;
* ``ptg`` — print the Figure 2 process-time graph.

Named adversaries (``--adversary``): ``lossy-full``, ``no-hub``,
``silence``, ``to-and-both``, ``only-to``, ``eventually-to``,
``eventually-to-full-base``, ``sw-n3-1``, ``sw-n3-2``, ``stars-n3``,
``stabilizing-w2``.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Callable

from repro.adversaries import (
    EventuallyForeverAdversary,
    ObliviousAdversary,
    StabilizingAdversary,
    eventually_one_direction,
    lossy_link_full,
    lossy_link_no_hub,
    lossy_link_with_silence,
    one_directional_and_both,
    directed_only,
    out_star_set,
    santoro_widmayer_family,
)
from repro.core.digraph import Digraph, arrow

ADVERSARIES: dict[str, Callable] = {
    "lossy-full": lossy_link_full,
    "no-hub": lossy_link_no_hub,
    "silence": lossy_link_with_silence,
    "to-and-both": lambda: one_directional_and_both("->"),
    "only-to": lambda: directed_only("->"),
    "eventually-to": lambda: eventually_one_direction("->"),
    "eventually-to-full-base": lambda: EventuallyForeverAdversary(
        2, [arrow("<-"), arrow("<->"), arrow("->")], [arrow("->")]
    ),
    "sw-n3-1": lambda: santoro_widmayer_family(3, 1),
    "sw-n3-2": lambda: santoro_widmayer_family(3, 2),
    "stars-n3": lambda: ObliviousAdversary(3, out_star_set(3)),
    "stabilizing-w2": lambda: StabilizingAdversary(
        2, [arrow("<-"), arrow("->")], window=2
    ),
}


def _resolve(name: str):
    try:
        return ADVERSARIES[name]()
    except KeyError:
        raise SystemExit(
            f"unknown adversary {name!r}; choose from {sorted(ADVERSARIES)}"
        )


def cmd_check(args: argparse.Namespace) -> int:
    from repro.consensus import check_consensus

    adversary = _resolve(args.adversary)
    result = check_consensus(adversary, max_depth=args.max_depth)
    print(result.explain())
    return 0


def cmd_census(args: argparse.Namespace) -> int:
    from repro.consensus.census import two_process_census
    from repro.viz import render_census

    rows = two_process_census(max_depth=args.max_depth)
    print(render_census(rows))
    agreements = sum(1 for row in rows if row.oracle_agrees)
    print(f"{agreements}/{len(rows)} rows agree with the literature oracle: "
          f"{'True' if agreements == len(rows) else 'False'}")
    return 0 if agreements == len(rows) else 1


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.consensus import check_consensus
    from repro.simulation import run_many

    adversary = _resolve(args.adversary)
    result = check_consensus(adversary, max_depth=args.max_depth)
    if not result.solvable:
        print(f"{adversary.name}: {result.status.name}; nothing to simulate")
        return 1
    algorithm = result.algorithm()
    rounds = (
        max(args.rounds, result.certified_depth)
        if result.certified_depth is not None
        else args.rounds
    )
    rng = random.Random(args.seed)
    stats = run_many(algorithm, adversary, rng, trials=args.trials, rounds=rounds)
    print(
        f"{adversary.name} x {algorithm.name}: {stats.runs} runs, "
        f"{stats.decided} decided, agreement failures "
        f"{stats.agreement_failures}, max decision round {stats.max_round}"
    )
    return 0


def cmd_kset(args: argparse.Namespace) -> int:
    from repro.consensus import check_kset_by_depth
    from repro.consensus.spec import ConsensusSpec

    adversary = _resolve(args.adversary)
    spec = ConsensusSpec(domain=tuple(range(args.values)))
    for depth in range(args.max_depth + 1):
        table = check_kset_by_depth(adversary, args.k, depth, spec=spec)
        if table is not None:
            print(
                f"{adversary.name}: {args.k}-set agreement solvable with "
                f"decisions by round {depth} ({len(table.assignment)} views)"
            )
            return 0
    print(
        f"{adversary.name}: no {args.k}-set certificate up to depth "
        f"{args.max_depth}"
    )
    return 1


def cmd_heardof(args: argparse.Namespace) -> int:
    from repro.adversaries.heardof import (
        min_degree_adversary,
        no_split_adversary,
        nonempty_kernel_adversary,
        rooted_adversary,
    )
    from repro.consensus import check_consensus

    factories = {
        "kernel": nonempty_kernel_adversary,
        "no-split": no_split_adversary,
        "rooted": rooted_adversary,
    }
    print(f"{'predicate':12s} {'|D|':>5s} {'verdict':11s}")
    for label, factory in factories.items():
        adversary = factory(args.n)
        result = check_consensus(adversary, max_depth=args.max_depth)
        print(f"{label:12s} {len(adversary.graphs):>5d} {result.status.name:11s}")
    complete = min_degree_adversary(args.n, args.n)
    result = check_consensus(complete, max_depth=args.max_depth)
    print(f"{'complete':12s} {len(complete.graphs):>5d} {result.status.name:11s}")
    return 0


def cmd_fair(args: argparse.Namespace) -> int:
    from repro.consensus import fair_sequence_candidates
    from repro.viz import render_word

    adversary = _resolve(args.adversary)
    candidates = fair_sequence_candidates(
        adversary, verify_depth=args.depth, limit=args.limit
    )
    if not candidates:
        print(
            f"{adversary.name}: no fair-sequence candidate survives depth "
            f"{args.depth} (evidence of solvability)"
        )
        return 0
    print(f"{adversary.name}: {len(candidates)} candidate(s) bivalent through depth {args.depth}")
    for candidate in candidates:
        sequence = candidate.sequence
        print(
            f"  inputs {sequence.inputs}, cycle [{render_word(sequence.cycle)}], "
            f"component sizes {candidate.component_sizes}"
        )
    return 0


def cmd_ptg(args: argparse.Namespace) -> int:
    from repro.core.ptg import PTGPrefix
    from repro.core.views import ViewInterner
    from repro.viz import render_ptg

    g1 = Digraph(3, [(0, 1), (2, 1)])
    g2 = Digraph(3, [(1, 0)])
    prefix = PTGPrefix(ViewInterner(3), (1, 0, 1), [g1, g2])
    print("Figure 2: process-time graph at t=2, n=3, x=(1,0,1)")
    print(render_ptg(prefix, highlight_process=args.process))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-cli",
        description="Consensus under general message adversaries (PODC 2019 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="run the solvability checker")
    check.add_argument("--adversary", required=True)
    check.add_argument("--max-depth", type=int, default=8)
    check.set_defaults(func=cmd_check)

    census = sub.add_parser("census", help="two-process oblivious census")
    census.add_argument("--max-depth", type=int, default=6)
    census.set_defaults(func=cmd_census)

    simulate = sub.add_parser("simulate", help="simulate the certified algorithm")
    simulate.add_argument("--adversary", required=True)
    simulate.add_argument("--trials", type=int, default=50)
    simulate.add_argument("--rounds", type=int, default=8)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--max-depth", type=int, default=8)
    simulate.set_defaults(func=cmd_simulate)

    ptg = sub.add_parser("ptg", help="print the Figure 2 process-time graph")
    ptg.add_argument("--process", type=int, default=0)
    ptg.set_defaults(func=cmd_ptg)

    kset = sub.add_parser("kset", help="k-set agreement depth sweep")
    kset.add_argument("--adversary", required=True)
    kset.add_argument("--k", type=int, default=2)
    kset.add_argument("--values", type=int, default=2)
    kset.add_argument("--max-depth", type=int, default=3)
    kset.set_defaults(func=cmd_kset)

    heardof = sub.add_parser("heardof", help="classify Heard-Of predicate families")
    heardof.add_argument("--n", type=int, default=3)
    heardof.add_argument("--max-depth", type=int, default=3)
    heardof.set_defaults(func=cmd_heardof)

    fair = sub.add_parser("fair", help="extract fair-sequence candidates")
    fair.add_argument("--adversary", required=True)
    fair.add_argument("--depth", type=int, default=4)
    fair.add_argument("--limit", type=int, default=5)
    fair.set_defaults(func=cmd_fair)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
