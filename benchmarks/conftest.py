"""Shared helpers for the benchmark harness.

Each ``bench_*`` module regenerates one artifact of the paper (a figure, a
worked example, or a claim) and times its computational kernel with
pytest-benchmark.  The regenerated artifact is printed through
:func:`emit`, so running ``pytest benchmarks/ --benchmark-only -s`` shows
the reproduced figures next to the timings, and is also attached to the
benchmark's ``extra_info`` so it lands in JSON exports.
"""

from __future__ import annotations


def emit(benchmark, title: str, lines) -> None:
    """Print an artifact block and attach it to the benchmark record."""
    text = "\n".join(lines) if not isinstance(lines, str) else lines
    print(f"\n----- {title} -----")
    print(text)
    if benchmark is not None:
        benchmark.extra_info["artifact"] = text
