"""Shared benchmark recording / regression-gating helper.

Runs one or more ``bench_*.py`` modules under pytest-benchmark, distills
the raw report into a compact ``BENCH_<suite>.json`` (per-test mean/min
seconds plus environment metadata), and optionally compares the fresh run
against a committed baseline, failing on regressions beyond a tolerance.

Usage
-----
Record a suite (quick mode skips the ``bench_deep``-marked scenarios)::

    python benchmarks/_record.py --suite scaling_checker --out BENCH_scaling_checker.json

Gate against a committed baseline (CI smoke job)::

    python benchmarks/_record.py --suite scaling_checker --quick \
        --out bench-out/BENCH_scaling_checker.json \
        --compare benchmarks/BENCH_scaling_checker.json --tolerance 0.30

The committed ``benchmarks/BENCH_*.json`` files double as the PR's speedup
evidence: each entry carries the historical means (``seed_mean_s``,
``pr3_mean_s``, ``pr4_mean_s``, ... — measured on the corresponding trees)
next to the current mean and the resulting speedups.  Re-recording with
``--carry OLD_BASELINE.json`` copies those annotations forward and
recomputes every ``speedup_vs_*`` against the fresh means, so the whole
performance trajectory stays reconstructable from one file.  Each record
also notes ``peak_rss_kb`` — the high-water resident set of the benchmark
subprocess — so memory trends are tracked alongside wall-clock.
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import subprocess
import sys
import tempfile
from pathlib import Path

try:  # POSIX-only; the recorder still works (without RSS) elsewhere.
    import resource
except ImportError:  # pragma: no cover - Windows
    resource = None

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent


def calibrate() -> float:
    """Best-of-five timing of a fixed pure-Python workload, in seconds.

    The committed baselines were recorded on a different machine than the
    CI runners; scaling every baseline mean by the ratio of calibration
    times turns the absolute gate into a machine-relative one.  The
    workload deliberately exercises nothing from this repository, so code
    changes cannot shift the calibration.
    """
    import time

    best = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        x = 0
        for i in range(200_000):
            x = (x * 1103515245 + i) & 0xFFFFFFFF
        best = min(best, time.perf_counter() - start)
    return best

#: Suite name -> benchmark modules it runs.
SUITES = {
    "scaling_checker": ["bench_scaling_checker.py"],
    "fig2_ptg": ["bench_fig2_ptg.py"],
    "census": ["bench_census.py"],
    "service": ["bench_service.py"],
    "figures": [
        "bench_fig1_spaces.py",
        "bench_fig2_ptg.py",
        "bench_fig3_distances.py",
        "bench_fig4_compact_components.py",
        "bench_fig5_noncompact.py",
    ],
}


def run_suite(
    suite: str,
    quick: bool = False,
    extra_args: list[str] | None = None,
    keyword: str | None = None,
) -> dict:
    """Run a suite under pytest-benchmark and return the distilled record."""
    modules = SUITES[suite]
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        raw_path = Path(handle.name)
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        *[str(BENCH_DIR / module) for module in modules],
        "--benchmark-only",
        "-q",
        "-p",
        "no:cacheprovider",
        f"--benchmark-json={raw_path}",
    ]
    if quick:
        cmd += ["-m", "not bench_deep"]
    if keyword:
        cmd += ["-k", keyword]
    if extra_args:
        cmd += extra_args
    result = subprocess.run(cmd, cwd=REPO_ROOT)
    if result.returncode != 0:
        raise SystemExit(f"benchmark run failed with exit code {result.returncode}")
    # High-water resident set of the benchmark subprocess.  ru_maxrss is
    # KiB on Linux but *bytes* on macOS; normalize to KiB (None where the
    # resource module is unavailable).  A max over all children of this
    # recorder process, which is exactly the benchmark run it just spawned.
    if resource is None:  # pragma: no cover - Windows
        peak_rss_kb = None
    else:
        peak_rss_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
        if sys.platform == "darwin":  # pragma: no cover
            peak_rss_kb //= 1024
    raw = json.loads(raw_path.read_text())
    raw_path.unlink(missing_ok=True)
    benchmarks = {
        bench["name"]: {
            "mean_s": bench["stats"]["mean"],
            "min_s": bench["stats"]["min"],
            "rounds": bench["stats"]["rounds"],
            # Worker count of the sharded extension kernel (1 = serial);
            # scenarios declare it via ``benchmark.extra_info``.
            "extension_workers": bench.get("extra_info", {}).get(
                "extension_workers", 1
            ),
        }
        for bench in raw["benchmarks"]
    }
    return {
        "suite": suite,
        "quick": quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "calibration_s": calibrate(),
        "peak_rss_kb": peak_rss_kb,
        "benchmarks": benchmarks,
    }


#: Per-entry keys produced by the run itself; everything else in a baseline
#: entry is an annotation eligible for carry-forward.
_MEASURED_KEYS = {"mean_s", "min_s", "rounds", "extension_workers"}


def carry_annotations(record: dict, baseline: dict) -> int:
    """Copy historical annotations from ``baseline`` into ``record``.

    For every benchmark present in both files, annotation keys (anything
    beyond the freshly measured ``mean_s``/``min_s``/``rounds``, except the
    stale ``speedup_vs_*`` ratios) are carried forward, and every carried
    ``<era>_mean_s`` gets its ``speedup_vs_<era>`` recomputed against the
    fresh mean — so re-recording never loses the seed/PR-N trajectory.
    Returns the number of entries that received annotations.
    """
    carried = 0
    for name, stats in record["benchmarks"].items():
        base = baseline["benchmarks"].get(name)
        if base is None:
            continue
        annotations = {
            key: value
            for key, value in base.items()
            if key not in _MEASURED_KEYS and not key.startswith("speedup_vs_")
        }
        if not annotations:
            continue
        stats.update(annotations)
        for key, value in annotations.items():
            if key.endswith("_mean_s") and value and stats["mean_s"] > 0:
                era = key[: -len("_mean_s")]
                stats[f"speedup_vs_{era}"] = round(value / stats["mean_s"], 2)
        carried += 1
    for key in ("seed_commit", "aggregate_note", "note"):
        if key in baseline and key not in record:
            record[key] = baseline[key]
    # Refresh the aggregate headline from the carried seed annotations so
    # the whole trajectory really does survive a re-recording.
    seed_speedups = [
        stats["speedup_vs_seed"]
        for stats in record["benchmarks"].values()
        if stats.get("speedup_vs_seed")
    ]
    if seed_speedups:
        record["aggregate_speedup_vs_seed"] = round(
            math.exp(sum(math.log(r) for r in seed_speedups) / len(seed_speedups)),
            2,
        )
    return carried


def compare(record: dict, baseline_path: Path, tolerance: float) -> list[str]:
    """Regressions of ``record`` against a baseline file, as messages.

    A test regresses when its fresh mean exceeds the (machine-normalized)
    baseline mean by more than ``tolerance`` (relative).  Tests present on
    only one side are reported informationally but are not failures.
    """
    baseline = json.loads(baseline_path.read_text())
    base_benchmarks = baseline["benchmarks"]
    scale = 1.0
    base_calibration = baseline.get("calibration_s")
    if base_calibration:
        scale = record["calibration_s"] / base_calibration
        print(f"machine calibration scale vs baseline: {scale:.2f}x")
    failures = []
    for name, stats in record["benchmarks"].items():
        base = base_benchmarks.get(name)
        if base is None:
            print(f"note: no baseline for {name}")
            continue
        # Gate on the per-round minimum: means of microsecond kernels are
        # dominated by scheduler noise, minima are stable.
        budget = base["min_s"] * scale * (1.0 + tolerance)
        if stats["min_s"] > budget:
            failures.append(
                f"{name}: min {stats['min_s'] * 1e6:.1f} us exceeds baseline "
                f"{base['min_s'] * 1e6:.1f} us by more than {tolerance:.0%}"
            )
    for name in base_benchmarks:
        if name not in record["benchmarks"]:
            print(f"note: baseline entry {name} not exercised in this run")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--suite", required=True, choices=sorted(SUITES))
    parser.add_argument("--out", type=Path, required=True, help="distilled JSON output path")
    parser.add_argument("--quick", action="store_true", help="skip bench_deep-marked scenarios")
    parser.add_argument(
        "--filter",
        dest="keyword",
        help="pytest -k expression restricting which benchmarks run "
        "(e.g. \"python\" on the without-numpy CI leg, where only the "
        "backend=python params are comparable to the committed baselines)",
    )
    parser.add_argument(
        "--carry",
        type=Path,
        help="previous BENCH_*.json whose per-entry annotations "
        "(seed/pr3/pr4 means etc.) are carried into --out with speedups "
        "recomputed against the fresh means",
    )
    parser.add_argument("--compare", type=Path, help="baseline BENCH_*.json to gate against")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed relative slowdown vs the baseline (default 0.30)",
    )
    args = parser.parse_args(argv)

    record = run_suite(args.suite, quick=args.quick, keyword=args.keyword)
    if args.carry:
        carried = carry_annotations(record, json.loads(args.carry.read_text()))
        print(f"carried annotations for {carried} entries from {args.carry}")
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out} ({len(record['benchmarks'])} benchmarks)")

    if args.compare:
        failures = compare(record, args.compare, args.tolerance)
        if failures:
            for message in failures:
                print(f"REGRESSION: {message}", file=sys.stderr)
            return 1
        print(f"no regressions beyond {args.tolerance:.0%} vs {args.compare}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
