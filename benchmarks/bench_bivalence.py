"""Section 6.1: bivalence arguments as limits — forever-bivalent runs.

The paper reinterprets the classic Santoro–Widmayer impossibility: the
forever bivalent run constructed inductively is the common limit of runs
from both decision sets.  We regenerate the executable form: for the lossy
link {←, ↔, →} a run exists whose every prefix lies in a bivalent
component (and the whole layer remains one component!), while for the
solvable {←, →} bivalence dies at depth 1.
"""

from conftest import emit

from repro.adversaries import lossy_link_full, lossy_link_no_hub
from repro.consensus import bivalence_history, forever_bivalent_run
from repro.viz import render_word

DEPTH = 5


def test_bivalence_forever_for_lossy_link(benchmark):
    run = benchmark(lambda: forever_bivalent_run(lossy_link_full(), DEPTH))

    history_full = bivalence_history(lossy_link_full(), max_depth=DEPTH)
    history_nohub = bivalence_history(lossy_link_no_hub(), max_depth=DEPTH)

    lines = [
        f"lossy link {{<-,<->,->}} bivalent components per depth: {history_full}",
        f"lossy link {{<-,->}}     bivalent components per depth: {history_nohub}",
        "",
        f"forever-bivalent witness (depth {DEPTH}):",
        f"  inputs {run.inputs}, word [{render_word(run.node.prefix.word)}]",
        f"  component sizes along the run: {run.component_sizes}",
        "paper shape: the bivalence tree is infinite for the impossible",
        "adversary (its branch is the fair-sequence limit of Definition 5.16)",
        "and dies at the separation depth for the solvable one",
    ]
    emit(benchmark, "Section 6.1 (bivalence-based impossibility)", lines)

    assert run is not None
    assert all(count >= 1 for count in history_full)
    assert history_nohub[1:] == [0] * DEPTH
    assert forever_bivalent_run(lossy_link_no_hub(), 2) is None
