"""Scaling study: checker cost vs depth, alphabet size, and process count.

Not a figure of the paper, but the data a downstream user needs: how the
prefix space, the component analysis, and the full solvability check scale.
Workload sizes are chosen to finish in seconds while exposing the
exponential layer growth ``|V|^n · |D|^t``.
"""

import random

import pytest
from conftest import emit

from repro.adversaries import (
    ObliviousAdversary,
    lossy_link_full,
    lossy_link_no_hub,
    out_star_set,
    random_oblivious_adversary,
    santoro_widmayer_family,
)
from repro.consensus import check_consensus
from repro.consensus.decision import build_decision_table
from repro.consensus.solvability import (
    CheckOptions,
    check_consensus_with_options,
)
from repro.consensus.spec import ConsensusSpec
from repro.core.views import numpy_available
from repro.topology.components import ComponentAnalysis
from repro.topology.prefixspace import PrefixSpace

#: Layer-kernel backends measurable in this environment; the numpy leg is
#: skipped (not failed) where numpy is absent.
KERNEL_BACKENDS = [
    "python",
    pytest.param(
        "numpy",
        marks=pytest.mark.skipif(
            not numpy_available(), reason="numpy not installed"
        ),
    ),
]


@pytest.mark.parametrize("depth", [2, 4, 6])
def test_scaling_layer_construction_depth(benchmark, depth):
    def kernel():
        space = PrefixSpace(lossy_link_full())
        space.ensure_depth(depth)
        return len(space.layer(depth))

    size = benchmark(kernel)
    emit(
        benchmark,
        f"scaling: layer construction, depth={depth}",
        [f"|layer {depth}| = {size} prefixes (4 * 3^{depth})"],
    )
    assert size == 4 * 3**depth


@pytest.mark.parametrize("depth", [2, 4, 6])
def test_scaling_component_analysis(benchmark, depth):
    space = PrefixSpace(lossy_link_no_hub())
    space.ensure_depth(depth)

    analysis = benchmark(lambda: ComponentAnalysis(space, depth))
    emit(
        benchmark,
        f"scaling: component analysis, depth={depth}",
        [repr(analysis.summary())],
    )


@pytest.mark.parametrize(
    "label, factory",
    [
        ("n=2 |D|=2", lossy_link_no_hub),
        ("n=2 |D|=3", lossy_link_full),
        ("n=3 |D|=3", lambda: ObliviousAdversary(3, out_star_set(3))),
        ("n=3 |D|=7", lambda: santoro_widmayer_family(3, 1)),
        ("n=4 |D|=13", lambda: santoro_widmayer_family(4, 1)),
        ("n=4 |D|=299", lambda: santoro_widmayer_family(4, 3)),
    ],
)
def test_scaling_full_check(benchmark, label, factory):
    result = benchmark(lambda: check_consensus(factory(), max_depth=4))
    emit(
        benchmark,
        f"scaling: full check, {label}",
        [f"{result.status.name}, certified depth {result.certified_depth}"],
    )


def test_scaling_view_interning(benchmark):
    """Throughput of the hash-consing view store on a deep layer.

    The kernel builds the whole space (interner included) from scratch, so
    every round measures the same full workload.
    """

    def kernel():
        space = PrefixSpace(lossy_link_no_hub())
        space.ensure_depth(9)
        return space.interner.stats()

    stats = benchmark(kernel)
    emit(
        benchmark,
        "scaling: view interning",
        [
            f"interned views after depth-9 space: {stats.total}",
            f"table geometry: {stats.rows} child rows, "
            f"~{stats.approx_bytes / 1024:.0f} KiB resident",
        ],
    )


# --------------------------------------------------------------------- #
# Scenarios unlocked by the bitmask kernel (impractical on the seed)
# --------------------------------------------------------------------- #


@pytest.mark.bench_deep
def test_scaling_layer_construction_deep(benchmark):
    """Depth-8 sweep of the full lossy link: 4 * 3^8 = 26244 prefixes."""

    def kernel():
        space = PrefixSpace(lossy_link_full())
        space.ensure_depth(8)
        return len(space.layer(8))

    size = benchmark.pedantic(kernel, rounds=3, iterations=1)
    emit(
        benchmark,
        "scaling: layer construction, depth=8 (new scenario)",
        [f"|layer 8| = {size} prefixes (4 * 3^8)"],
    )
    assert size == 4 * 3**8


@pytest.mark.bench_deep
def test_scaling_full_check_n5_sw(benchmark):
    """Full check of the n=5 Santoro-Widmayer family with one loss.

    |D| = 21 rooted graphs over 32 input assignments; certification at
    depth 2 walks a layer of 32 * 21^2 = 14112 five-process prefixes.  On
    the seed representation this ran for ~0.4 s per round — far outside the
    suite's per-round budget; the bitmask kernel brings it into range.
    """
    result = benchmark.pedantic(
        lambda: check_consensus(santoro_widmayer_family(5, 1), max_depth=3),
        rounds=3,
        iterations=1,
    )
    emit(
        benchmark,
        "scaling: full check, n=5 |D|=21 (new scenario)",
        [f"{result.status.name}, certified depth {result.certified_depth}"],
    )


@pytest.mark.bench_deep
def test_scaling_layer_construction_depth10_streaming(benchmark):
    """Depth-10 lossy link streamed frontier-by-frontier: 4 * 3^10 prefixes.

    ``retain="frontier"`` evicts historical layers as ``iter_layers``
    advances, so the run holds one 236k-prefix frontier plus the interner —
    the scenario the array-backed view tables and the streaming engine were
    built for (impractical before: the seed representation held every layer
    and every PrefixNode wrapper).
    """

    def kernel():
        space = PrefixSpace(lossy_link_full(), retain="frontier")
        for depth, store in space.iter_layers(max_depth=10):
            pass
        return len(store), space.interner.stats()

    size, stats = benchmark.pedantic(kernel, rounds=3, iterations=1)
    emit(
        benchmark,
        "scaling: streaming layer construction, depth=10 (new scenario)",
        [
            f"|layer 10| = {size} prefixes (4 * 3^10)",
            f"interner: {stats.total} views, {stats.rows} child rows, "
            f"~{stats.approx_bytes / 1e6:.1f} MB resident",
        ],
    )
    assert size == 4 * 3**10


@pytest.mark.bench_deep
def test_scaling_full_check_n6_sw(benchmark):
    """Full check of the n=6 Santoro-Widmayer family with one loss.

    |D| = 31 rooted graphs over 64 input assignments; certification at
    depth 2 walks a layer of 64 * 31^2 = 61504 six-process prefixes.  The
    first n=6 scenario inside the suite's budget.
    """
    result = benchmark.pedantic(
        lambda: check_consensus(santoro_widmayer_family(6, 1), max_depth=2),
        rounds=3,
        iterations=1,
    )
    emit(
        benchmark,
        "scaling: full check, n=6 |D|=31 (new scenario)",
        [f"{result.status.name}, certified depth {result.certified_depth}"],
    )
    assert result.status.name == "SOLVABLE"


# --------------------------------------------------------------------- #
# Whole-layer extension kernel scenarios (PR 4)
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", KERNEL_BACKENDS)
def test_scaling_layer_kernel_quick(benchmark, backend):
    """Smoke-gate kernel scenario: depth-6 streaming on each backend.

    Small enough for the CI quick run, large enough that the whole-layer
    batch (not per-call overhead) dominates — this is the entry that keeps
    both kernel backends honest between full re-recordings.
    """

    def kernel():
        space = PrefixSpace(
            lossy_link_full(), retain="frontier", layer_backend=backend
        )
        for depth, store in space.iter_layers(max_depth=6):
            pass
        return len(store)

    size = benchmark(kernel)
    emit(
        benchmark,
        f"scaling: layer kernel smoke, depth=6, backend={backend}",
        [f"|layer 6| = {size} prefixes (4 * 3^6)"],
    )
    assert size == 4 * 3**6


@pytest.mark.bench_deep
@pytest.mark.parametrize("backend", KERNEL_BACKENDS)
def test_scaling_layer_construction_depth12_streaming(benchmark, backend):
    """Depth-12 lossy link streamed: 4 * 3^12 = 2125764 prefixes.

    The scenario the whole-layer kernel was built for — one layer beyond
    the PR-2/PR-3 interactive ceiling (the per-parent path needed ~13 s
    here; see ``pr3_mean_s`` in the committed baseline).  ``max_nodes`` is
    raised above the 2M default, which the final layer alone exceeds.
    """

    def kernel():
        space = PrefixSpace(
            lossy_link_full(),
            retain="frontier",
            max_nodes=4_000_000,
            layer_backend=backend,
        )
        for depth, store in space.iter_layers(max_depth=12):
            pass
        return len(store), space.interner.stats()

    size, stats = benchmark.pedantic(kernel, rounds=2, iterations=1)
    emit(
        benchmark,
        f"scaling: streaming layer construction, depth=12, backend={backend}",
        [
            f"|layer 12| = {size} prefixes (4 * 3^12)",
            f"interner: {stats.total} views, {stats.rows} child rows, "
            f"~{stats.approx_bytes / 1e6:.1f} MB resident",
        ],
    )
    assert size == 4 * 3**12


@pytest.mark.bench_deep
@pytest.mark.parametrize("backend", KERNEL_BACKENDS)
def test_scaling_n7_rooted_space(benchmark, backend):
    """Depth-3 streaming space of a random rooted n=7 oblivious adversary.

    128 input assignments x |D|=8 rooted graphs: 65536 seven-process
    prefixes at depth 3 — the first n=7 layer workload inside the suite's
    budget (recorded on both kernel backends).
    """
    rng = random.Random(2026)
    adversary = random_oblivious_adversary(rng, 7, size=8, rooted_only=True)

    def kernel():
        space = PrefixSpace(
            adversary, retain="frontier", layer_backend=backend
        )
        space.ensure_depth(3)
        return len(space.layer_store(3)), space.interner.stats()

    size, stats = benchmark.pedantic(kernel, rounds=3, iterations=1)
    emit(
        benchmark,
        f"scaling: n=7 rooted |D|=8 depth-3 space, backend={backend}",
        [
            f"|layer 3| = {size} prefixes (128 * 8^3)",
            f"interner: {stats.total} views interned",
        ],
    )
    assert size == 128 * 8**3


@pytest.mark.bench_deep
def test_scaling_full_check_n7_sw(benchmark):
    """Full check of the n=7 Santoro-Widmayer family with one loss.

    |D| = 43 rooted graphs over 128 input assignments, certified at depth
    2 through a layer of 128 * 43^2 = 236672 seven-process prefixes — the
    first full n=7 classification inside the suite's budget.
    """
    result = benchmark.pedantic(
        lambda: check_consensus(santoro_widmayer_family(7, 1), max_depth=2),
        rounds=3,
        iterations=1,
    )
    emit(
        benchmark,
        "scaling: full check, n=7 |D|=43 (new scenario)",
        [f"{result.status.name}, certified depth {result.certified_depth}"],
    )
    assert result.status.name == "SOLVABLE"


# --------------------------------------------------------------------- #
# Columnar-pipeline scenarios (PR 5)
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", KERNEL_BACKENDS)
def test_scaling_components_quick(benchmark, backend):
    """Smoke-gate columnar-components scenario: depth-6 layer, each backend.

    Small enough for the CI quick run on both the with-numpy and the
    without-numpy leg (the numpy param skips there), large enough that the
    component pass — not fixture setup — dominates; this is the entry
    that keeps the columnar ``ComponentAnalysis`` honest between full
    re-recordings.
    """
    space = PrefixSpace(lossy_link_full(), layer_backend=backend)
    space.ensure_depth(6)

    analysis = benchmark(lambda: ComponentAnalysis(space, 6))
    emit(
        benchmark,
        f"scaling: columnar components, depth=6, backend={backend}",
        [repr(analysis.summary())],
    )
    assert len(analysis.components) == 1


@pytest.mark.bench_deep
@pytest.mark.parametrize("backend", KERNEL_BACKENDS)
def test_scaling_checker_pipeline_depth10(benchmark, backend):
    """Full ``check_consensus`` walking every depth through 10.

    Impossibility provers and the broadcaster certificate are disabled, so
    the checker runs the whole columnar pipeline — layer extension plus
    component analysis — on every layer of the full lossy link up to the
    236k-prefix depth-10 layer before returning UNDECIDED.  This is the
    depth-10 acceptance scenario of the columnar refactor.
    """
    options = CheckOptions(
        max_depth=10,
        use_impossibility_provers=False,
        use_broadcaster_certificate=False,
        layer_backend=backend,
    )
    result = benchmark.pedantic(
        lambda: check_consensus_with_options(lossy_link_full(), options),
        rounds=3,
        iterations=1,
    )
    emit(
        benchmark,
        f"scaling: checker pipeline, depth=10, backend={backend}",
        [f"{result.status.name} after exploring depth {result.history[-1].depth}"],
    )
    assert result.status.name == "UNDECIDED"
    assert result.history[-1].prefixes == 4 * 3**10


@pytest.mark.bench_deep
@pytest.mark.parametrize("backend", KERNEL_BACKENDS)
def test_scaling_checker_pipeline_depth12(benchmark, backend):
    """Full ``check_consensus`` through the 2.1M-prefix depth-12 layer.

    The depth-12 acceptance scenario: extension + components at every
    depth, retained columnar layers throughout (``max_nodes`` raised above
    the final layer's size).
    """
    options = CheckOptions(
        max_depth=12,
        max_nodes=8_000_000,
        use_impossibility_provers=False,
        use_broadcaster_certificate=False,
        layer_backend=backend,
    )
    result = benchmark.pedantic(
        lambda: check_consensus_with_options(lossy_link_full(), options),
        rounds=2,
        iterations=1,
    )
    emit(
        benchmark,
        f"scaling: checker pipeline, depth=12, backend={backend}",
        [f"{result.status.name} after exploring depth {result.history[-1].depth}"],
    )
    assert result.history[-1].prefixes == 4 * 3**12


@pytest.mark.bench_deep
@pytest.mark.parametrize("backend", KERNEL_BACKENDS)
def test_scaling_decision_pipeline_n3(benchmark, backend):
    """Components + decision table at depth 8 of the n=3 out-star space.

    52488 three-process prefixes; building (and validating) the decision
    table at depth 8 exercises the columnar final/early-map folds over
    all nine layers — the decision-stage workload of the pipeline.
    """

    def kernel():
        adversary = ObliviousAdversary(3, out_star_set(3))
        space = PrefixSpace(adversary, layer_backend=backend)
        space.ensure_depth(8)
        analysis = ComponentAnalysis(space, 8)
        return build_decision_table(analysis, ConsensusSpec())

    table = benchmark.pedantic(kernel, rounds=3, iterations=1)
    emit(
        benchmark,
        f"scaling: decision pipeline, n=3 depth=8, backend={backend}",
        [f"decision table over {len(table.assignment)} components, "
         f"{len(table.early)} decided views"],
    )


@pytest.mark.bench_deep
@pytest.mark.parametrize("backend", KERNEL_BACKENDS)
def test_scaling_layer_construction_depth14_streaming(benchmark, backend):
    """Depth-14 lossy link streamed: 4 * 3^14 = 19131876 prefixes.

    The scenario the array-native layer format was built for — two layers
    beyond the PR-4 ceiling.  One frontier of 19.1M prefixes is a flat
    306MB id column (plus the interner's arena); the per-child tuple
    representation it replaced held this layer in tens of GB of Python
    objects.  Recorded on both backends, one round (the run is minutes of
    work on the pure-Python kernel).
    """

    def kernel():
        space = PrefixSpace(
            lossy_link_full(),
            retain="frontier",
            max_nodes=20_000_000,
            layer_backend=backend,
        )
        for depth, store in space.iter_layers(max_depth=14):
            pass
        return len(store), space.interner.stats()

    size, stats = benchmark.pedantic(kernel, rounds=1, iterations=1)
    emit(
        benchmark,
        f"scaling: streaming layer construction, depth=14, backend={backend}",
        [
            f"|layer 14| = {size} prefixes (4 * 3^14)",
            f"interner: {stats.total} views, {stats.rows} child rows, "
            f"~{stats.approx_bytes / 1e6:.0f} MB resident",
        ],
    )
    assert size == 4 * 3**14


@pytest.mark.bench_deep
@pytest.mark.parametrize("backend", KERNEL_BACKENDS)
def test_scaling_n7_rooted_space_depth4(benchmark, backend):
    """Depth-4 streaming space of a random rooted n=7 oblivious adversary.

    128 input assignments x |D|=8 rooted graphs: 524288 seven-process
    prefixes at depth 4 — one layer deeper than the PR-4 n=7 scenario,
    recorded on both kernel backends.
    """
    rng = random.Random(2026)
    adversary = random_oblivious_adversary(rng, 7, size=8, rooted_only=True)

    def kernel():
        space = PrefixSpace(
            adversary, retain="frontier", layer_backend=backend
        )
        space.ensure_depth(4)
        return len(space.layer_store(4)), space.interner.stats()

    size, stats = benchmark.pedantic(kernel, rounds=2, iterations=1)
    emit(
        benchmark,
        f"scaling: n=7 rooted |D|=8 depth-4 space, backend={backend}",
        [
            f"|layer 4| = {size} prefixes (128 * 8^4)",
            f"interner: {stats.total} views interned",
        ],
    )
    assert size == 128 * 8**4


@pytest.mark.bench_deep
def test_scaling_full_check_n5_rooted(benchmark):
    """Iterative deepening over a random rooted oblivious adversary on n=5."""
    rng = random.Random(2026)
    adversary = random_oblivious_adversary(rng, 5, size=4, rooted_only=True)

    result = benchmark.pedantic(
        lambda: check_consensus(adversary, max_depth=3), rounds=3, iterations=1
    )
    emit(
        benchmark,
        "scaling: full check, n=5 |D|=4 rooted (new scenario)",
        [f"{result.status.name}, certified depth {result.certified_depth}"],
    )


# --------------------------------------------------------------------- #
# Sharded-extension scenarios (PR 6)
# --------------------------------------------------------------------- #

NUMPY_ONLY = pytest.mark.skipif(
    not numpy_available(), reason="sharded extension requires numpy"
)


@NUMPY_ONLY
def test_scaling_sharded_smoke_depth10(benchmark):
    """Smoke-gate sharded scenario: depth-10 streaming with two workers.

    The deepest layers of the run clear ``_MP_MIN_CELLS``, so the
    shared-memory shard path really dispatches (asserted below) while the
    shallow layers exercise the serial fallback — the entry that keeps the
    worker pool honest in the CI quick run.  The scenario id avoids the
    substring "python" on purpose: the without-numpy CI leg filters on it.
    """
    benchmark.extra_info["extension_workers"] = 2

    def kernel():
        space = PrefixSpace(
            lossy_link_full(),
            retain="frontier",
            layer_backend="numpy",
            extension_workers=2,
        )
        for depth, store in space.iter_layers(max_depth=10):
            pass
        return len(store), space.interner._mp_dispatches

    # The warmup round absorbs the one-time worker-pool spawn (the pool
    # persists process-wide), so the gated rounds time only the steady
    # per-layer shm dispatch — without it the min is scheduler noise on
    # small hosts.
    size, dispatches = benchmark.pedantic(
        kernel, rounds=5, iterations=1, warmup_rounds=1
    )
    emit(
        benchmark,
        "scaling: sharded extension smoke, depth=10, workers=2",
        [
            f"|layer 10| = {size} prefixes (4 * 3^10)",
            f"{dispatches} sharded layer dispatches",
        ],
    )
    assert size == 4 * 3**10
    assert dispatches > 0


@pytest.mark.bench_deep
@NUMPY_ONLY
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_scaling_sharded_checker_depth12(benchmark, workers):
    """Full depth-12 check at 1/2/4 extension workers.

    The worker-scaling acceptance scenario of the sharded kernel: same
    workload as the depth-12 checker pipeline above, swept over the
    ``extension_workers`` knob.  The bit-identical merge means all three
    rows certify the same result; only the wall-clock moves.
    """
    benchmark.extra_info["extension_workers"] = workers
    options = CheckOptions(
        max_depth=12,
        max_nodes=8_000_000,
        use_impossibility_provers=False,
        use_broadcaster_certificate=False,
        layer_backend="numpy",
        extension_workers=workers,
    )
    result = benchmark.pedantic(
        lambda: check_consensus_with_options(lossy_link_full(), options),
        rounds=2,
        iterations=1,
    )
    emit(
        benchmark,
        f"scaling: sharded checker, depth=12, workers={workers}",
        [f"{result.status.name} after exploring depth {result.history[-1].depth}"],
    )
    assert result.history[-1].prefixes == 4 * 3**12


@pytest.mark.bench_deep
@NUMPY_ONLY
def test_scaling_sharded_depth16_streaming(benchmark):
    """Depth-16 lossy link streamed: 4 * 3^16 = 172186884 prefixes.

    The headline scenario of the sharded kernel — two layers beyond the
    PR-5 ceiling.  The final frontier's id column alone is a 1.4 GB int64
    array; the sharded extension runs the dedup of each 57M-parent step
    across worker processes over shared memory.  One round: the run is
    minutes of work even on the numpy kernel.
    """
    benchmark.extra_info["extension_workers"] = 2

    def kernel():
        space = PrefixSpace(
            lossy_link_full(),
            retain="frontier",
            max_nodes=200_000_000,
            layer_backend="numpy",
            extension_workers=2,
        )
        for depth, store in space.iter_layers(max_depth=16):
            pass
        return len(store), space.interner.stats()

    size, stats = benchmark.pedantic(kernel, rounds=1, iterations=1)
    emit(
        benchmark,
        "scaling: streaming layer construction, depth=16, workers=2",
        [
            f"|layer 16| = {size} prefixes (4 * 3^16)",
            f"interner: {stats.total} views, {stats.rows} child rows, "
            f"~{stats.approx_bytes / 1e6:.0f} MB resident",
        ],
    )
    assert size == 4 * 3**16


@pytest.mark.bench_deep
@pytest.mark.parametrize("backend", KERNEL_BACKENDS)
def test_scaling_n9_rooted_space(benchmark, backend):
    """Depth-3 streaming space of a random rooted n=9 oblivious adversary.

    512 input assignments x |D|=8 rooted graphs: 262144 nine-process
    prefixes at depth 3 — the first workload past the old ``n <= 8``
    interning wall, recorded on both the lifted-cap numpy kernel and the
    pure-Python reference path.
    """
    rng = random.Random(2026)
    adversary = random_oblivious_adversary(rng, 9, size=8, rooted_only=True)

    def kernel():
        space = PrefixSpace(
            adversary, retain="frontier", layer_backend=backend
        )
        space.ensure_depth(3)
        return len(space.layer_store(3)), space.interner.stats()

    size, stats = benchmark.pedantic(kernel, rounds=2, iterations=1)
    emit(
        benchmark,
        f"scaling: n=9 rooted |D|=8 depth-3 space, backend={backend}",
        [
            f"|layer 3| = {size} prefixes (512 * 8^3)",
            f"interner: {stats.total} views interned",
        ],
    )
    assert size == 512 * 8**3
