"""Scaling study: checker cost vs depth, alphabet size, and process count.

Not a figure of the paper, but the data a downstream user needs: how the
prefix space, the component analysis, and the full solvability check scale.
Workload sizes are chosen to finish in seconds while exposing the
exponential layer growth ``|V|^n · |D|^t``.
"""

import pytest
from conftest import emit

from repro.adversaries import (
    ObliviousAdversary,
    lossy_link_full,
    lossy_link_no_hub,
    out_star_set,
    santoro_widmayer_family,
)
from repro.consensus import check_consensus
from repro.topology.components import ComponentAnalysis
from repro.topology.prefixspace import PrefixSpace


@pytest.mark.parametrize("depth", [2, 4, 6])
def test_scaling_layer_construction_depth(benchmark, depth):
    def kernel():
        space = PrefixSpace(lossy_link_full())
        space.ensure_depth(depth)
        return len(space.layer(depth))

    size = benchmark(kernel)
    emit(
        benchmark,
        f"scaling: layer construction, depth={depth}",
        [f"|layer {depth}| = {size} prefixes (4 * 3^{depth})"],
    )
    assert size == 4 * 3**depth


@pytest.mark.parametrize("depth", [2, 4, 6])
def test_scaling_component_analysis(benchmark, depth):
    space = PrefixSpace(lossy_link_no_hub())
    space.ensure_depth(depth)

    analysis = benchmark(lambda: ComponentAnalysis(space, depth))
    emit(
        benchmark,
        f"scaling: component analysis, depth={depth}",
        [repr(analysis.summary())],
    )


@pytest.mark.parametrize(
    "label, factory",
    [
        ("n=2 |D|=2", lossy_link_no_hub),
        ("n=2 |D|=3", lossy_link_full),
        ("n=3 |D|=3", lambda: ObliviousAdversary(3, out_star_set(3))),
        ("n=3 |D|=7", lambda: santoro_widmayer_family(3, 1)),
        ("n=4 |D|=13", lambda: santoro_widmayer_family(4, 1)),
        ("n=4 |D|=299", lambda: santoro_widmayer_family(4, 3)),
    ],
)
def test_scaling_full_check(benchmark, label, factory):
    result = benchmark(lambda: check_consensus(factory(), max_depth=4))
    emit(
        benchmark,
        f"scaling: full check, {label}",
        [f"{result.status.name}, certified depth {result.certified_depth}"],
    )


def test_scaling_view_interning(benchmark):
    """Throughput of the hash-consing view store on a deep layer."""
    space = PrefixSpace(lossy_link_no_hub())

    def kernel():
        space.ensure_depth(9)
        return space.interner.stats().total

    total = benchmark.pedantic(kernel, rounds=1, iterations=1)
    emit(
        benchmark,
        "scaling: view interning",
        [f"interned views after depth-9 space: {total}"],
    )
