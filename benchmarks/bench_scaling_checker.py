"""Scaling study: checker cost vs depth, alphabet size, and process count.

Not a figure of the paper, but the data a downstream user needs: how the
prefix space, the component analysis, and the full solvability check scale.
Workload sizes are chosen to finish in seconds while exposing the
exponential layer growth ``|V|^n · |D|^t``.
"""

import random

import pytest
from conftest import emit

from repro.adversaries import (
    ObliviousAdversary,
    lossy_link_full,
    lossy_link_no_hub,
    out_star_set,
    random_oblivious_adversary,
    santoro_widmayer_family,
)
from repro.consensus import check_consensus
from repro.core.views import numpy_available
from repro.topology.components import ComponentAnalysis
from repro.topology.prefixspace import PrefixSpace

#: Layer-kernel backends measurable in this environment; the numpy leg is
#: skipped (not failed) where numpy is absent.
KERNEL_BACKENDS = [
    "python",
    pytest.param(
        "numpy",
        marks=pytest.mark.skipif(
            not numpy_available(), reason="numpy not installed"
        ),
    ),
]


@pytest.mark.parametrize("depth", [2, 4, 6])
def test_scaling_layer_construction_depth(benchmark, depth):
    def kernel():
        space = PrefixSpace(lossy_link_full())
        space.ensure_depth(depth)
        return len(space.layer(depth))

    size = benchmark(kernel)
    emit(
        benchmark,
        f"scaling: layer construction, depth={depth}",
        [f"|layer {depth}| = {size} prefixes (4 * 3^{depth})"],
    )
    assert size == 4 * 3**depth


@pytest.mark.parametrize("depth", [2, 4, 6])
def test_scaling_component_analysis(benchmark, depth):
    space = PrefixSpace(lossy_link_no_hub())
    space.ensure_depth(depth)

    analysis = benchmark(lambda: ComponentAnalysis(space, depth))
    emit(
        benchmark,
        f"scaling: component analysis, depth={depth}",
        [repr(analysis.summary())],
    )


@pytest.mark.parametrize(
    "label, factory",
    [
        ("n=2 |D|=2", lossy_link_no_hub),
        ("n=2 |D|=3", lossy_link_full),
        ("n=3 |D|=3", lambda: ObliviousAdversary(3, out_star_set(3))),
        ("n=3 |D|=7", lambda: santoro_widmayer_family(3, 1)),
        ("n=4 |D|=13", lambda: santoro_widmayer_family(4, 1)),
        ("n=4 |D|=299", lambda: santoro_widmayer_family(4, 3)),
    ],
)
def test_scaling_full_check(benchmark, label, factory):
    result = benchmark(lambda: check_consensus(factory(), max_depth=4))
    emit(
        benchmark,
        f"scaling: full check, {label}",
        [f"{result.status.name}, certified depth {result.certified_depth}"],
    )


def test_scaling_view_interning(benchmark):
    """Throughput of the hash-consing view store on a deep layer.

    The kernel builds the whole space (interner included) from scratch, so
    every round measures the same full workload.
    """

    def kernel():
        space = PrefixSpace(lossy_link_no_hub())
        space.ensure_depth(9)
        return space.interner.stats()

    stats = benchmark(kernel)
    emit(
        benchmark,
        "scaling: view interning",
        [
            f"interned views after depth-9 space: {stats.total}",
            f"table geometry: {stats.rows} child rows, "
            f"~{stats.approx_bytes / 1024:.0f} KiB resident",
        ],
    )


# --------------------------------------------------------------------- #
# Scenarios unlocked by the bitmask kernel (impractical on the seed)
# --------------------------------------------------------------------- #


@pytest.mark.bench_deep
def test_scaling_layer_construction_deep(benchmark):
    """Depth-8 sweep of the full lossy link: 4 * 3^8 = 26244 prefixes."""

    def kernel():
        space = PrefixSpace(lossy_link_full())
        space.ensure_depth(8)
        return len(space.layer(8))

    size = benchmark.pedantic(kernel, rounds=3, iterations=1)
    emit(
        benchmark,
        "scaling: layer construction, depth=8 (new scenario)",
        [f"|layer 8| = {size} prefixes (4 * 3^8)"],
    )
    assert size == 4 * 3**8


@pytest.mark.bench_deep
def test_scaling_full_check_n5_sw(benchmark):
    """Full check of the n=5 Santoro-Widmayer family with one loss.

    |D| = 21 rooted graphs over 32 input assignments; certification at
    depth 2 walks a layer of 32 * 21^2 = 14112 five-process prefixes.  On
    the seed representation this ran for ~0.4 s per round — far outside the
    suite's per-round budget; the bitmask kernel brings it into range.
    """
    result = benchmark.pedantic(
        lambda: check_consensus(santoro_widmayer_family(5, 1), max_depth=3),
        rounds=3,
        iterations=1,
    )
    emit(
        benchmark,
        "scaling: full check, n=5 |D|=21 (new scenario)",
        [f"{result.status.name}, certified depth {result.certified_depth}"],
    )


@pytest.mark.bench_deep
def test_scaling_layer_construction_depth10_streaming(benchmark):
    """Depth-10 lossy link streamed frontier-by-frontier: 4 * 3^10 prefixes.

    ``retain="frontier"`` evicts historical layers as ``iter_layers``
    advances, so the run holds one 236k-prefix frontier plus the interner —
    the scenario the array-backed view tables and the streaming engine were
    built for (impractical before: the seed representation held every layer
    and every PrefixNode wrapper).
    """

    def kernel():
        space = PrefixSpace(lossy_link_full(), retain="frontier")
        for depth, store in space.iter_layers(max_depth=10):
            pass
        return len(store), space.interner.stats()

    size, stats = benchmark.pedantic(kernel, rounds=3, iterations=1)
    emit(
        benchmark,
        "scaling: streaming layer construction, depth=10 (new scenario)",
        [
            f"|layer 10| = {size} prefixes (4 * 3^10)",
            f"interner: {stats.total} views, {stats.rows} child rows, "
            f"~{stats.approx_bytes / 1e6:.1f} MB resident",
        ],
    )
    assert size == 4 * 3**10


@pytest.mark.bench_deep
def test_scaling_full_check_n6_sw(benchmark):
    """Full check of the n=6 Santoro-Widmayer family with one loss.

    |D| = 31 rooted graphs over 64 input assignments; certification at
    depth 2 walks a layer of 64 * 31^2 = 61504 six-process prefixes.  The
    first n=6 scenario inside the suite's budget.
    """
    result = benchmark.pedantic(
        lambda: check_consensus(santoro_widmayer_family(6, 1), max_depth=2),
        rounds=3,
        iterations=1,
    )
    emit(
        benchmark,
        "scaling: full check, n=6 |D|=31 (new scenario)",
        [f"{result.status.name}, certified depth {result.certified_depth}"],
    )
    assert result.status.name == "SOLVABLE"


# --------------------------------------------------------------------- #
# Whole-layer extension kernel scenarios (PR 4)
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", KERNEL_BACKENDS)
def test_scaling_layer_kernel_quick(benchmark, backend):
    """Smoke-gate kernel scenario: depth-6 streaming on each backend.

    Small enough for the CI quick run, large enough that the whole-layer
    batch (not per-call overhead) dominates — this is the entry that keeps
    both kernel backends honest between full re-recordings.
    """

    def kernel():
        space = PrefixSpace(
            lossy_link_full(), retain="frontier", layer_backend=backend
        )
        for depth, store in space.iter_layers(max_depth=6):
            pass
        return len(store)

    size = benchmark(kernel)
    emit(
        benchmark,
        f"scaling: layer kernel smoke, depth=6, backend={backend}",
        [f"|layer 6| = {size} prefixes (4 * 3^6)"],
    )
    assert size == 4 * 3**6


@pytest.mark.bench_deep
@pytest.mark.parametrize("backend", KERNEL_BACKENDS)
def test_scaling_layer_construction_depth12_streaming(benchmark, backend):
    """Depth-12 lossy link streamed: 4 * 3^12 = 2125764 prefixes.

    The scenario the whole-layer kernel was built for — one layer beyond
    the PR-2/PR-3 interactive ceiling (the per-parent path needed ~13 s
    here; see ``pr3_mean_s`` in the committed baseline).  ``max_nodes`` is
    raised above the 2M default, which the final layer alone exceeds.
    """

    def kernel():
        space = PrefixSpace(
            lossy_link_full(),
            retain="frontier",
            max_nodes=4_000_000,
            layer_backend=backend,
        )
        for depth, store in space.iter_layers(max_depth=12):
            pass
        return len(store), space.interner.stats()

    size, stats = benchmark.pedantic(kernel, rounds=2, iterations=1)
    emit(
        benchmark,
        f"scaling: streaming layer construction, depth=12, backend={backend}",
        [
            f"|layer 12| = {size} prefixes (4 * 3^12)",
            f"interner: {stats.total} views, {stats.rows} child rows, "
            f"~{stats.approx_bytes / 1e6:.1f} MB resident",
        ],
    )
    assert size == 4 * 3**12


@pytest.mark.bench_deep
@pytest.mark.parametrize("backend", KERNEL_BACKENDS)
def test_scaling_n7_rooted_space(benchmark, backend):
    """Depth-3 streaming space of a random rooted n=7 oblivious adversary.

    128 input assignments x |D|=8 rooted graphs: 65536 seven-process
    prefixes at depth 3 — the first n=7 layer workload inside the suite's
    budget (recorded on both kernel backends).
    """
    rng = random.Random(2026)
    adversary = random_oblivious_adversary(rng, 7, size=8, rooted_only=True)

    def kernel():
        space = PrefixSpace(
            adversary, retain="frontier", layer_backend=backend
        )
        space.ensure_depth(3)
        return len(space.layer_store(3)), space.interner.stats()

    size, stats = benchmark.pedantic(kernel, rounds=3, iterations=1)
    emit(
        benchmark,
        f"scaling: n=7 rooted |D|=8 depth-3 space, backend={backend}",
        [
            f"|layer 3| = {size} prefixes (128 * 8^3)",
            f"interner: {stats.total} views interned",
        ],
    )
    assert size == 128 * 8**3


@pytest.mark.bench_deep
def test_scaling_full_check_n7_sw(benchmark):
    """Full check of the n=7 Santoro-Widmayer family with one loss.

    |D| = 43 rooted graphs over 128 input assignments, certified at depth
    2 through a layer of 128 * 43^2 = 236672 seven-process prefixes — the
    first full n=7 classification inside the suite's budget.
    """
    result = benchmark.pedantic(
        lambda: check_consensus(santoro_widmayer_family(7, 1), max_depth=2),
        rounds=3,
        iterations=1,
    )
    emit(
        benchmark,
        "scaling: full check, n=7 |D|=43 (new scenario)",
        [f"{result.status.name}, certified depth {result.certified_depth}"],
    )
    assert result.status.name == "SOLVABLE"


@pytest.mark.bench_deep
def test_scaling_full_check_n5_rooted(benchmark):
    """Iterative deepening over a random rooted oblivious adversary on n=5."""
    rng = random.Random(2026)
    adversary = random_oblivious_adversary(rng, 5, size=4, rooted_only=True)

    result = benchmark.pedantic(
        lambda: check_consensus(adversary, max_depth=3), rounds=3, iterations=1
    )
    emit(
        benchmark,
        "scaling: full check, n=5 |D|=4 rooted (new scenario)",
        [f"{result.status.name}, certified depth {result.certified_depth}"],
    )
