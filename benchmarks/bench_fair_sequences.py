"""Definition 5.16: periodic fair-sequence candidates, extracted.

For the impossible lossy link every admissible lasso stays in a bivalent
component forever (the layer is one component); for solvable adversaries
the extraction comes back empty past the separation depth.  The benchmark
times the full extraction (prefix space + per-depth component analyses +
lasso verification).
"""

from conftest import emit

from repro.adversaries import lossy_link_full, lossy_link_no_hub
from repro.consensus import fair_sequence_candidates
from repro.viz import render_word

DEPTH = 4


def test_fair_sequence_extraction(benchmark):
    candidates = benchmark(
        lambda: fair_sequence_candidates(
            lossy_link_full(), verify_depth=DEPTH, limit=5
        )
    )
    none_for_solvable = fair_sequence_candidates(
        lossy_link_no_hub(), verify_depth=DEPTH, limit=5
    )

    lines = [f"lossy link {{<-,<->,->}}: {len(candidates)} candidates (limit 5)"]
    for candidate in candidates:
        sequence = candidate.sequence
        lines.append(
            f"  inputs {sequence.inputs}, cycle "
            f"[{render_word(sequence.cycle)}], bivalent component sizes "
            f"{candidate.component_sizes}"
        )
    lines += [
        f"lossy link {{<-,->}}: {len(none_for_solvable)} candidates",
        "paper shape: fair sequences (forever-bivalent limits) exist exactly",
        "for the impossible adversary (Definition 5.16 / Corollary 5.19)",
    ]
    emit(benchmark, "fair-sequence candidates", lines)

    assert len(candidates) == 5
    assert none_for_solvable == []
