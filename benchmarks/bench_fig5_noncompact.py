"""Figure 5: decision sets of a non-compact adversary touch (distance 0).

For "transiently {←, →}, eventually → forever" the runs

    a_k = (0,1)·←^k·→^ω   (decide 0: process 0 broadcasts)
    b_k = (1,1)·←^k·→^ω   (decide 1)

are admissible with d_min(a_k, b_k) = 2^{-(k+1)} -> 0, while their limits
(0,1)·←^ω and (1,1)·←^ω form an unfair pair (Definition 5.16) at exact
``d_min`` distance 0 that the adversary *excludes* — the '×' marks of the
figure.  The benchmark times the exact lasso-distance kernel.
"""

from conftest import emit

from repro.adversaries import eventually_one_direction
from repro.core.digraph import arrow
from repro.topology.limits import (
    UltimatelyPeriodic,
    check_unfair_pair,
    d_min_periodic,
    is_excluded_limit,
)

TO, FRO = arrow("->"), arrow("<-")


def test_fig5_decision_sets_touch(benchmark):
    adversary = eventually_one_direction("->")
    left_limit = UltimatelyPeriodic((0, 1), [], [FRO])
    right_limit = UltimatelyPeriodic((1, 1), [], [FRO])

    def kernel():
        distances = []
        for k in range(1, 9):
            a = left_limit.pumped(k, [TO])
            b = right_limit.pumped(k, [TO])
            distances.append(d_min_periodic(a, b))
        return distances

    distances = benchmark(kernel)

    lines = ["k   d_min((0,1)<-^k ->^ω, (1,1)<-^k ->^ω)"]
    for k, distance in enumerate(distances, start=1):
        lines.append(f"{k:<3} {distance}")
        assert distance == 2.0 ** -(k + 1)
        # Both approaching runs are admissible for the adversary.
        a = left_limit.pumped(k, [TO])
        assert adversary.admits_lasso(a.stem, a.cycle)

    report = check_unfair_pair(adversary, left_limit, right_limit)
    lines += [
        "",
        f"unfair-pair limits: d_min = {report.distance} (exact, Eq-set automaton)",
        f"  (0,1)<-^ω admissible: {report.left_admissible}, excluded limit: "
        f"{report.left_excluded_limit}",
        f"  (1,1)<-^ω admissible: {report.right_admissible}, excluded limit: "
        f"{report.right_excluded_limit}",
        "paper shape: inf distance of decision sets = 0; the connecting",
        "limits (x in the figure) are excluded by the non-compact adversary",
    ]
    emit(benchmark, "Figure 5 (non-compact decision sets at distance 0)", lines)

    assert report.distance == 0.0
    assert report.left_excluded_limit and report.right_excluded_limit


def test_fig5_finite_depth_distances_decay(benchmark):
    """The same phenomenon measured on finite prefix layers."""
    from repro.core.distances import d_min as d_min_prefix
    from repro.core.views import ViewInterner

    left_limit = UltimatelyPeriodic((0, 1), [], [FRO])
    right_limit = UltimatelyPeriodic((1, 1), [], [FRO])

    def kernel():
        interner = ViewInterner(2)
        rows = []
        for k in range(1, 7):
            a = left_limit.pumped(k, [TO]).ptg_prefix(interner, 10)
            b = right_limit.pumped(k, [TO]).ptg_prefix(interner, 10)
            rows.append(d_min_prefix(a, b))
        return rows

    rows = benchmark(kernel)
    emit(
        benchmark,
        "Figure 5 (finite-prefix view of the decaying distances)",
        [f"k={k}: d_min on depth-10 prefixes = {v}" for k, v in enumerate(rows, 1)],
    )
    assert rows == [2.0 ** -(k + 1) for k in range(1, 7)]
