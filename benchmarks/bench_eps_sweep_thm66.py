"""Theorem 6.6: the ε-approximation sweep for compact adversaries.

For each compact adversary we sweep ``ε = 2^{-t}`` and report the smallest
depth at which (a) every component is broadcastable and (b) no component is
bivalent.  Theorem 6.6 predicts: consensus solvable iff some finite depth
achieves (a) — and on all the paper's examples the two depths coincide,
making the broadcastability reformulation executable.
"""

from conftest import emit

from repro.adversaries import (
    ObliviousAdversary,
    lossy_link_full,
    lossy_link_no_hub,
    one_directional_and_both,
    out_star_set,
    santoro_widmayer_family,
)
from repro.consensus import minimal_broadcast_depth, minimal_separation_depth
from repro.core.digraph import arrow

CASES = [
    ("{<-,->}", lossy_link_no_hub, True),
    ("{->,<->}", lambda: one_directional_and_both("->"), True),
    ("{<->}", lambda: ObliviousAdversary(2, [arrow("<->")]), True),
    ("SW n=3 <=1 loss", lambda: santoro_widmayer_family(3, 1), True),
    ("out-stars n=3", lambda: ObliviousAdversary(3, out_star_set(3)), True),
    ("{<-,<->,->}", lossy_link_full, False),
]

MAX_DEPTH = 4


def sweep():
    rows = []
    for label, factory, solvable in CASES:
        adversary = factory()
        broadcast = minimal_broadcast_depth(adversary, max_depth=MAX_DEPTH)
        separation = minimal_separation_depth(adversary, max_depth=MAX_DEPTH)
        rows.append((label, solvable, broadcast, separation))
    return rows


def test_thm66_eps_sweep(benchmark):
    rows = benchmark(sweep)

    lines = [
        f"{'adversary':18s} {'solvable':9s} {'min t: broadcastable':21s} "
        f"{'min t: separated':17s}  (eps = 2^-t)"
    ]
    for label, solvable, broadcast, separation in rows:
        lines.append(
            f"{label:18s} {str(solvable):9s} {str(broadcast):21s} "
            f"{str(separation):17s}"
        )
        if solvable:
            assert broadcast is not None and separation is not None
            assert broadcast == separation  # executable Theorem 6.6
        else:
            assert broadcast is None and separation is None
    lines.append(
        "paper shape: finite eps exists iff solvable; broadcastability and"
    )
    lines.append("valence separation certify at the same depth")
    emit(benchmark, "Theorem 6.6 (eps-approximation sweep)", lines)
