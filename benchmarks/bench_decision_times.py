"""Decision-time distributions of the universal algorithm.

An extension study connecting to the follow-up literature on the time
complexity of consensus under oblivious message adversaries: the certified
depth is the worst case, but the paper's decision rule (decide as soon as
the ε-ball fits one decision set) often fires earlier.  We regenerate the
per-adversary histograms and the exact worst cases.
"""

from conftest import emit

from repro.adversaries import (
    ObliviousAdversary,
    lossy_link_no_hub,
    one_directional_and_both,
    out_star_set,
    santoro_widmayer_family,
)
from repro.consensus import (
    check_consensus,
    decision_round_histogram,
    earliest_possible_round,
    worst_case_decision_round,
)

CASES = [
    ("{<-,->}", lossy_link_no_hub),
    ("{->,<->}", lambda: one_directional_and_both("->")),
    ("out-stars n=3", lambda: ObliviousAdversary(3, out_star_set(3))),
    ("SW n=3 <=1 loss", lambda: santoro_widmayer_family(3, 1)),
]


def compute_profiles():
    rows = []
    for label, factory in CASES:
        result = check_consensus(factory(), max_depth=4)
        table = result.decision_table
        rows.append(
            (
                label,
                result.certified_depth,
                decision_round_histogram(table),
                worst_case_decision_round(table),
                earliest_possible_round(table),
            )
        )
    return rows


def test_decision_time_profiles(benchmark):
    rows = benchmark(compute_profiles)

    lines = [
        f"{'adversary':16s} {'cert depth':>10s} {'worst':>6s} {'earliest':>9s}  histogram {{round: prefixes}}"
    ]
    for label, depth, histogram, worst, earliest in rows:
        lines.append(
            f"{label:16s} {depth:>10d} {worst:>6d} {earliest:>9d}  {histogram}"
        )
        assert worst <= depth
        assert earliest <= worst
    lines.append(
        "shape: worst-case decision round = certification depth; mixed-loss"
    )
    lines.append("families show genuine early decisions (SW n=3)")
    emit(benchmark, "decision-time profiles (extension study)", lines)
