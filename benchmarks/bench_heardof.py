"""Heard-Of predicate families ([7], related-work bridge) classified.

The classic per-round HO communication predicates — nonempty kernel,
no-split, rootedness — translate to oblivious adversaries.  None of them
alone makes consensus solvable (stability across rounds is the missing
ingredient, cf. [23]); the checker certifies each impossibility with the
single-component induction.  The benchmark times the classification of the
whole family table.
"""

from conftest import emit

from repro.adversaries.heardof import (
    min_degree_adversary,
    no_split_adversary,
    nonempty_kernel_adversary,
    rooted_adversary,
)
from repro.consensus import SolvabilityStatus, check_consensus

CASES = [
    ("nonempty kernel, n=2", lambda: nonempty_kernel_adversary(2), False),
    ("no-split, n=2", lambda: no_split_adversary(2), False),
    ("rooted, n=2", lambda: rooted_adversary(2), False),
    ("complete (deg n), n=2", lambda: min_degree_adversary(2, 2), True),
    ("nonempty kernel, n=3", lambda: nonempty_kernel_adversary(3), False),
    ("no-split, n=3", lambda: no_split_adversary(3), False),
    ("rooted, n=3", lambda: rooted_adversary(3), False),
    ("complete (deg n), n=3", lambda: min_degree_adversary(3, 3), True),
]


def classify():
    rows = []
    for label, factory, expected in CASES:
        adversary = factory()
        result = check_consensus(adversary, max_depth=3)
        rows.append((label, len(adversary.graphs), result, expected))
    return rows


def test_heardof_predicate_table(benchmark):
    rows = benchmark(classify)

    lines = [f"{'HO predicate':24s} {'|D|':>4s} {'verdict':11s} {'certificate':28s}"]
    for label, size, result, expected in rows:
        certificate = (
            f"decision-table@{result.certified_depth}"
            if result.decision_table
            else (result.impossibility.kind if result.impossibility else "-")
        )
        lines.append(
            f"{label:24s} {size:>4d} {result.status.name:11s} {certificate:28s}"
        )
        assert result.status is not SolvabilityStatus.UNDECIDED
        assert result.solvable == expected
    lines += [
        "literature shape: per-round kernel/no-split/rootedness predicates",
        "do not suffice for consensus; only degree-n (lockstep broadcast)",
        "does — the missing ingredient is cross-round stability [23]",
    ]
    emit(benchmark, "Heard-Of predicate families", lines)
