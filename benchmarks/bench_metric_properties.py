"""Theorem 4.3 / Lemma 4.8: the metric toolbox, measured.

Verifies on a randomized sample (and times) the pseudo-metric properties:
symmetry, triangle inequality for ``d_P``, monotonicity in ``P``,
``d_{[n]} = d_max``, the min-formula for ``d_min``, and the documented
*failure* of the triangle inequality for ``d_min`` (it is only a
pseudo-semi-metric).
"""

import random

from conftest import emit

from repro.core.digraph import arrow
from repro.core.distances import d_max, d_min, d_p, d_view
from repro.core.ptg import PTGPrefix
from repro.core.views import ViewInterner

GRAPHS = [arrow(name) for name in ("->", "<-", "<->", "none")]


def build_sample(count=24, depth=5, seed=7):
    rng = random.Random(seed)
    interner = ViewInterner(2)
    sample = []
    for _ in range(count):
        inputs = (rng.randint(0, 1), rng.randint(0, 1))
        word = [rng.choice(GRAPHS) for _ in range(depth)]
        sample.append(PTGPrefix(interner, inputs, word))
    return sample


def test_theorem_43_properties(benchmark):
    sample = build_sample()

    def kernel():
        symmetry = triangle = monotone = common = min_formula = 0
        for a in sample:
            for b in sample:
                assert d_max(a, b) == d_max(b, a)
                symmetry += 1
                assert d_view(a, b, (0,)) <= d_view(a, b, (0, 1))
                monotone += 1
                assert d_view(a, b, (0, 1)) == d_max(a, b)
                common += 1
                assert d_min(a, b) == min(d_p(a, b, p) for p in range(2))
                min_formula += 1
        for a in sample[:10]:
            for b in sample[:10]:
                for c in sample[:10]:
                    for p in range(2):
                        assert d_p(a, c, p) <= d_p(a, b, p) + d_p(b, c, p) + 1e-12
                        triangle += 1
        return symmetry, triangle, monotone, common, min_formula

    counts = benchmark(kernel)

    # The documented counterexample: d_min violates the triangle inequality.
    interner = ViewInterner(2)
    a = PTGPrefix(interner, (0, 0), [arrow("->")] * 3)
    b = PTGPrefix(interner, (0, 1), [arrow("->")] * 3)
    b2 = PTGPrefix(interner, (0, 1), [arrow("<-")] * 3)
    c = PTGPrefix(interner, (1, 1), [arrow("<-")] * 3)

    lines = [
        f"checked: symmetry x{counts[0]}, triangle(d_p) x{counts[1]}, "
        f"monotonicity x{counts[2]}, d_[n]=d_max x{counts[3]}, "
        f"min-formula x{counts[4]} — all hold",
        "",
        "pseudo-semi-metric failure for d_min (Section 4.2):",
        f"  d_min((0,0)->^3, (0,1)->^3) = {d_min(a, b)}",
        f"  d_min((0,1)<-^3, (1,1)<-^3) = {d_min(b2, c)}",
        f"  d_min((0,0)->^3, (1,1)<-^3) = {d_min(a, c)}  (> 0: triangle fails)",
    ]
    emit(benchmark, "Theorem 4.3 / Lemma 4.8 (metric properties)", lines)
    assert d_min(a, c) > d_min(a, b) + d_min(b2, c)
