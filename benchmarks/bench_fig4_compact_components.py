"""Figure 4: decision-set components of a compact message adversary.

For the solvable oblivious adversary D = {←, →} the decision sets are
closed and at *positive* ``d_min`` distance (Corollary 6.1 / Theorem 5.13).
We regenerate the figure's content quantitatively: group the depth-``t``
components into the decision sets PS(0) / PS(1) produced by the
meta-procedure, and show their pairwise distance stays bounded away from 0
as ``t`` grows (it is exactly 1/2 here), unlike the non-compact Figure 5.
"""

import pytest
from conftest import emit

from repro.adversaries import lossy_link_no_hub
from repro.consensus import check_consensus
from repro.topology.components import ComponentAnalysis
from repro.topology.prefixspace import PrefixSpace
from repro.topology.separation import node_set_diameter, node_set_distance

DEPTHS = (1, 2, 3, 4)


def decision_sets(space: PrefixSpace, depth: int, table):
    """Group depth-``depth`` prefixes by the certified algorithm's decision.

    These are (the depth-``depth`` skeletons of) the paper's decision sets
    ``PS(v) = (Δ∘τ)^{-1}[{v}]`` for the *fixed* universal algorithm of the
    certificate — Corollary 6.1 speaks about one algorithm's decision sets,
    so the grouping must be consistent across depths.
    """
    groups: dict = {}
    for node in space.layer(depth):
        value = table.decision_for_view(node.prefix.view(0, table.depth))
        groups.setdefault(value, []).append(node)
    return groups


@pytest.mark.parametrize("depth", [3])
def test_fig4_distance_kernel(benchmark, depth):
    certified = check_consensus(lossy_link_no_hub())
    table = certified.decision_table
    space = table.space
    space.ensure_depth(max(DEPTHS))

    groups = decision_sets(space, depth, table)
    result = benchmark(
        lambda: node_set_distance(groups[0], groups[1])
    )

    lines = ["depth  |PS(0)|  |PS(1)|  components  d_min(PS(0),PS(1))  max diam"]
    for t in DEPTHS:
        analysis_t = ComponentAnalysis(space, t)
        groups_t = decision_sets(space, t, table)
        distance = node_set_distance(groups_t[0], groups_t[1])
        diameter = max(
            node_set_diameter(list(c.members()))
            for c in analysis_t.components
        )
        lines.append(
            f"{t:>5}  {len(groups_t[0]):>7}  {len(groups_t[1]):>7}  "
            f"{len(analysis_t.components):>10}  {distance:>18}  {diameter:>8}"
        )
        assert distance >= 0.5  # positive separation at every depth
        assert diameter <= 0.5  # Theorem 5.9: broadcastable components
    lines.append(
        "paper shape: compact adversary => decision sets closed, distance > 0"
    )
    emit(benchmark, "Figure 4 (compact decision sets separated)", lines)
    assert result >= 0.5


def test_fig4_components_are_closed_under_limits(benchmark):
    """Compactness: admissible lassos with admissible prefixes stay inside.

    For the oblivious adversary every ultimately periodic sequence over D
    is admissible — there are no excluded limits (contrast Figure 5).
    """
    from repro.adversaries.compactness import find_limit_violation

    adversary = lossy_link_no_hub()
    violation = benchmark(lambda: find_limit_violation(adversary, 2, 2))
    emit(
        benchmark,
        "Figure 4 (limit-closedness check)",
        [f"excluded-limit witness: {violation} (None = compact, as the paper assumes)"],
    )
    assert violation is None
