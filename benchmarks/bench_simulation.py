"""Simulation throughput and decision-time distributions.

Times the lock-step runner with the universal algorithm and the
broadcast-value algorithm, and regenerates the adversarial decision-time
series: the random adversary decides fast, the information-minimizing
adversary (``DelayBroadcastDriver``) realizes the worst case the
certificates allow.
"""

import random

from conftest import emit

from repro.adversaries import EventuallyForeverAdversary, lossy_link_no_hub
from repro.consensus import check_consensus
from repro.core.digraph import arrow
from repro.core.graphword import GraphWord
from repro.core.views import ViewInterner
from repro.simulation import (
    BroadcastValueAlgorithm,
    DelayBroadcastDriver,
    RandomDriver,
    UniversalAlgorithm,
    run_many,
    run_word,
)

TO, FRO, BOTH = arrow("->"), arrow("<-"), arrow("<->")


def test_universal_algorithm_throughput(benchmark):
    certified = check_consensus(lossy_link_no_hub())
    algorithm = UniversalAlgorithm(certified.decision_table)
    rng = random.Random(0)

    stats = benchmark(
        lambda: run_many(
            algorithm, lossy_link_no_hub(), rng, trials=100, rounds=6
        )
    )
    emit(
        benchmark,
        "simulation: universal algorithm on {<-,->}",
        [
            f"runs {stats.runs}, decided {stats.decided}, "
            f"agreement failures {stats.agreement_failures}, "
            f"max decision round {stats.max_round}"
        ],
    )
    assert stats.agreement_failures == 0
    assert stats.max_round <= certified.certified_depth


def test_broadcast_algorithm_vs_adversary_drivers(benchmark):
    adversary = EventuallyForeverAdversary(2, [FRO, BOTH, TO], [TO])
    algorithm = BroadcastValueAlgorithm(ViewInterner(2), 0)

    def kernel():
        random_driver = RandomDriver(adversary, random.Random(1))
        # The adversary knows the algorithm decides on process 0's value
        # (Section 2 allows this) and suppresses its broadcast greedily.
        delay_driver = DelayBroadcastDriver(adversary, avoid_broadcast_of=[0])
        random_word = random_driver.word(10)
        delay_word = delay_driver.word(10)
        return (
            run_word(algorithm, (0, 1), random_word),
            run_word(algorithm, (0, 1), delay_word),
            random_word,
            delay_word,
        )

    random_run, delay_run, random_word, delay_word = benchmark(kernel)

    def outcome(run):
        decided = run.outcomes[1]
        return decided.round if decided.decided else "never (within horizon)"

    lines = [
        f"random adversary word:   decision round of p1 = {outcome(random_run)}",
        f"delaying adversary word: decision round of p1 = {outcome(delay_run)}",
        "paper shape: the adaptive adversary (which may know the algorithm,",
        "Section 2) pushes decisions as late as its liveness promise allows",
    ]
    emit(benchmark, "simulation: adversary drivers", lines)

    random_round = random_run.outcomes[1].round
    delay_round = delay_run.outcomes[1].round
    if delay_round is not None and random_round is not None:
        assert delay_round >= random_round


def test_raw_runner_round_throughput(benchmark):
    """Rounds/second of the bare runner with the full-information protocol."""
    from repro.simulation import FullInformationAlgorithm

    word = GraphWord([TO, FRO] * 25)  # 50 rounds
    interner = ViewInterner(2)
    algorithm = FullInformationAlgorithm(interner)

    result = benchmark(lambda: run_word(algorithm, (0, 1), word))
    emit(
        benchmark,
        "simulation: raw full-information runner (50 rounds)",
        [f"decided: {result.all_decided} (protocol never decides, as designed)"],
    )
