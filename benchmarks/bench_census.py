"""The complete two-process census as a benchmark artifact.

Section 6.1/6.2's two-process discussion is exhaustively checkable: 15
nonempty oblivious adversaries over {→, ←, ↔, ∅}.  The harness regenerates
the full classification table with certificates and cross-checks every row
against the exact literature oracle ([21], [8], [9]) and the CGP
reconstruction.
"""

from conftest import emit

from repro.consensus.census import two_process_census
from repro.viz import render_census


def test_two_process_census_table(benchmark):
    rows = benchmark(lambda: two_process_census(max_depth=6))

    lines = [render_census(rows)]
    solvable = sum(1 for row in rows if row.checker_solvable)
    lines.append(
        f"totals: {solvable} solvable, {len(rows) - solvable} impossible; "
        "oracle and CGP agree on every row"
    )
    emit(benchmark, "two-process census (exhaustive)", lines)

    assert len(rows) == 15
    assert solvable == 6
    for row in rows:
        assert row.oracle_agrees is True
        assert row.cgp_agrees is True
